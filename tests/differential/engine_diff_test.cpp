// Differential certification harness for the SessionEngine fast paths.
//
// DESIGN §6 promises that the devirtualized download path, the stateful
// trace cursors and the arena-merging parallel engine change *nothing* about
// results — not approximately, bitwise. golden_metrics pins a handful of
// headline numbers; this harness pins everything: for every scenario in the
// matrix (solo / stepped-throughput / link-fault / sensor-fault / trivial-CDN
// / faulty-CDN / shared-link) it runs the engine once in reference_mode
// (original virtual-dispatch, binary-search-per-lookup code) and once with
// the fast paths engaged, serialises the full PlaybackResult as C99 hex
// floats (%a — every bit of every double) plus the complete event-timeline
// CSV, and EXPECT_EQs the dumps. A jobs {1,2,8} axis re-runs the scenario
// matrix through util::parallel_map to certify the arena merge on top.

#include <gtest/gtest.h>

#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <vector>

#include "eacs/abr/bba.h"
#include "eacs/abr/festive.h"
#include "eacs/abr/fixed.h"
#include "eacs/core/decision_cache.h"
#include "eacs/core/horizon.h"
#include "eacs/core/online.h"
#include "eacs/net/fault_injector.h"
#include "eacs/net/segment_source.h"
#include "eacs/player/session_engine.h"
#include "eacs/sensors/sensor_faults.h"
#include "eacs/trace/trace_io.h"
#include "eacs/util/thread_pool.h"
#include "../test_helpers.h"

namespace eacs::player {
namespace {

using eacs::testing::make_manifest;
using eacs::testing::make_session;
using eacs::testing::make_step_session;

std::string hex(double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%a", v);
  return buffer;
}

// Every field of every task and every session total, hex-exact.
std::string serialize(const std::vector<PlaybackResult>& results) {
  std::ostringstream out;
  for (const PlaybackResult& r : results) {
    out << "result"
        << " startup=" << hex(r.startup_delay_s)
        << " rebuffer=" << hex(r.total_rebuffer_s)
        << " rebuffer_events=" << r.rebuffer_events
        << " switches=" << r.switch_count
        << " end=" << hex(r.session_end_s)
        << " retries=" << r.total_retries
        << " abandoned=" << r.abandoned_segments
        << " wasted_mb=" << hex(r.total_wasted_mb)
        << " backoff=" << hex(r.total_backoff_s)
        << " hedges=" << r.total_hedges
        << " failovers=" << r.total_failovers
        << " breaker=" << r.breaker_transitions
        << " handoffs=" << r.cell_handoffs << "\n";
    for (const TaskRecord& t : r.tasks) {
      out << "task " << t.segment_index << " level=" << t.level
          << " bitrate=" << hex(t.bitrate_mbps)
          << " size=" << hex(t.size_mb)
          << " duration=" << hex(t.duration_s)
          << " dl_start=" << hex(t.download_start_s)
          << " dl_end=" << hex(t.download_end_s)
          << " tput=" << hex(t.throughput_mbps)
          << " signal=" << hex(t.signal_dbm)
          << " vib=" << hex(t.vibration)
          << " pvib=" << hex(t.perceived_vibration)
          << " buf=" << hex(t.buffer_before_s)
          << " stall=" << hex(t.rebuffer_s)
          << " startup=" << t.startup
          << " retries=" << t.retries
          << " abandoned=" << t.abandoned
          << " wasted_mb=" << hex(t.wasted_mb)
          << " wasted_s=" << hex(t.wasted_download_s)
          << " wasted_sig=" << hex(t.wasted_signal_dbm)
          << " backoff=" << hex(t.backoff_s)
          << " source=" << t.source
          << " hedges=" << t.hedges << "\n";
    }
  }
  return out.str();
}

struct RunOutput {
  std::string result;
  std::string timeline;

  bool operator==(const RunOutput&) const = default;
};

RunOutput run_clients(bool reference_mode, std::span<const SessionClient> clients,
                      const LinkModel& link) {
  SessionEngineConfig config;
  config.reference_mode = reference_mode;
  const SessionEngine engine(config);
  SessionTimeline timeline;
  const auto results = engine.run(clients, link, &timeline);
  std::ostringstream csv;
  timeline.write_csv(csv);
  return {serialize(results), csv.str()};
}

RunOutput run_single(bool reference_mode, const media::VideoManifest& manifest,
                     const trace::SessionTraces& session, AbrPolicy& policy,
                     const LinkModel& link,
                     const sensors::SensorFaultInjector* sensor_faults = nullptr) {
  std::vector<SessionClient> clients = {
      {&manifest, &policy, &session, 0.0, sensor_faults}};
  return run_clients(reference_mode, clients, link);
}

// --- the scenario matrix ----------------------------------------------------
// Each scenario is a pure function of reference_mode: it builds its own
// sessions, policies and link, so it can run from any worker thread (the
// DESIGN §6 purity contract the jobs-matrix test leans on).

RunOutput scenario_solo(bool reference_mode) {
  const auto manifest = make_manifest(60.0, 2.0);
  const auto session = make_session(60.0, 8.0, -95.0, 2.0);
  abr::Festive policy;
  const SoloLinkModel link(session.throughput_mbps);
  return run_single(reference_mode, manifest, session, policy, link);
}

RunOutput scenario_solo_step(bool reference_mode) {
  const auto manifest = make_manifest(90.0, 2.0);
  const auto session = make_step_session(90.0, 12.0, 2.5, 40.0, -102.0, 4.0);
  abr::Bba policy(5.0, 30.0);
  const SoloLinkModel link(session.throughput_mbps);
  return run_single(reference_mode, manifest, session, policy, link);
}

RunOutput scenario_link_faults(bool reference_mode) {
  const auto manifest = make_manifest(60.0, 2.0);
  const auto session = make_session(60.0, 6.0, -106.0, 3.0);
  net::FaultSpec spec;
  spec.outages.push_back({12.0, 20.0});
  spec.outage_rate_per_min = 1.0;
  spec.failure_prob = 0.08;
  spec.signal_failure_per_db = 0.01;
  spec.stall_prob = 0.05;
  const net::FaultInjector injector(session.throughput_mbps, spec,
                                    &session.signal_dbm);
  abr::Bba policy(5.0, 30.0);
  const FaultLinkModel link(injector);
  return run_single(reference_mode, manifest, session, policy, link);
}

RunOutput scenario_inactive_faults(bool reference_mode) {
  // Disabled injector: unreliable() is false, so the engine takes the
  // devirtualized path through the injector's own downloader.
  const auto manifest = make_manifest(60.0, 2.0);
  const auto session = make_session(60.0, 8.0, -95.0, 2.0);
  const net::FaultInjector injector(session.throughput_mbps, net::FaultSpec{},
                                    &session.signal_dbm);
  abr::Festive policy;
  const FaultLinkModel link(injector);
  return run_single(reference_mode, manifest, session, policy, link);
}

RunOutput scenario_sensor_faults(bool reference_mode) {
  const auto manifest = make_manifest(60.0, 2.0);
  const auto session = make_session(60.0, 8.0, -85.0, 3.0);
  sensors::SensorFaultSpec spec;
  spec.accel_episode_rate_per_min = 4.0;
  spec.signal_dropout_rate_per_min = 2.0;
  const sensors::SensorFaultInjector injector(
      session.accel, trace::signal_samples(session.signal_dbm), spec);
  abr::Festive policy;
  const SoloLinkModel link(session.throughput_mbps);
  return run_single(reference_mode, manifest, session, policy, link, &injector);
}

std::vector<net::SegmentSource> make_sources(const trace::SessionTraces& session,
                                             std::size_t count,
                                             const net::CdnFaultSpec& origin_faults) {
  std::vector<net::SegmentSource> sources;
  sources.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    net::CdnSourceConfig config;
    config.name = i == 0 ? "origin" : "edge-" + std::to_string(i);
    config.id = i;
    if (i == 0) {
      config.faults = origin_faults;
    } else {
      config.throughput_scale = 1.0 - 0.15 * static_cast<double>(i);
      config.base_rtt_s = 0.03 * static_cast<double>(i);
    }
    sources.emplace_back(session.throughput_mbps, config, &session.signal_dbm);
  }
  return sources;
}

RunOutput scenario_cdn_trivial(bool reference_mode) {
  const auto manifest = make_manifest(60.0, 2.0);
  const auto session = make_session(60.0, 8.0, -95.0, 2.0);
  const auto sources = make_sources(session, 1, net::CdnFaultSpec{});
  abr::Festive policy;
  const CdnLinkModel link{std::span<const net::SegmentSource>(sources)};
  return run_single(reference_mode, manifest, session, policy, link);
}

RunOutput scenario_cdn_faulty(bool reference_mode) {
  const auto manifest = make_manifest(60.0, 2.0);
  const auto session = make_session(60.0, 6.0, -100.0, 2.0);
  net::CdnFaultSpec spec;
  spec.outages = {{20.0, 70.0}};
  const auto sources = make_sources(session, 3, spec);
  abr::Bba policy(5.0, 30.0);
  const CdnLinkModel link{std::span<const net::SegmentSource>(sources)};
  return run_single(reference_mode, manifest, session, policy, link);
}

RunOutput scenario_shared(bool reference_mode) {
  const auto manifest = make_manifest(60.0, 2.0);
  const auto capacity_owner = make_session(60.0, 14.0);
  const auto session_a = make_session(60.0, 8.0, -95.0, 2.0);
  const auto session_b = make_session(60.0, 8.0, -105.0, 4.0);
  const auto session_c = make_session(60.0, 8.0, -88.0, 0.5);
  abr::Bba policy_a(5.0, 30.0);
  abr::Festive policy_b;
  abr::FixedBitrate policy_c(3, "fixed3");
  const SharedLinkModel link(capacity_owner.throughput_mbps);
  std::vector<SessionClient> clients = {
      {&manifest, &policy_a, &session_a, 0.0},
      {&manifest, &policy_b, &session_b, 5.0},
      {&manifest, &policy_c, &session_c, 12.0}};
  return run_clients(reference_mode, clients, link);
}

// Single-cell fleet of `n` clients over one shared bottleneck. In reference
// mode this runs the preserved pre-refactor loop; with the fast paths on it
// runs the cellular event-heap engine — so these scenarios certify the
// fleet-scale refactor at sizes 1/2/4/8 (staggered joins, mixed policies).
RunOutput scenario_fleet(bool reference_mode, std::size_t n) {
  const auto manifest = make_manifest(60.0, 2.0);
  const auto capacity_owner = make_session(60.0, 6.0 * static_cast<double>(n));
  std::vector<trace::SessionTraces> sessions;
  std::vector<std::unique_ptr<AbrPolicy>> policies;
  for (std::size_t c = 0; c < n; ++c) {
    sessions.push_back(make_session(60.0, 8.0, -90.0 - static_cast<double>(c) * 4.0,
                                    0.5 * static_cast<double>(c)));
    switch (c % 3) {
      case 0: policies.push_back(std::make_unique<abr::Bba>(5.0, 30.0)); break;
      case 1: policies.push_back(std::make_unique<abr::Festive>()); break;
      default:
        policies.push_back(std::make_unique<abr::FixedBitrate>(4, "fixed4"));
        break;
    }
  }
  const SharedLinkModel link(capacity_owner.throughput_mbps);
  std::vector<SessionClient> clients;
  for (std::size_t c = 0; c < n; ++c) {
    clients.push_back({&manifest, policies[c].get(), &sessions[c],
                       1.5 * static_cast<double>(c)});
  }
  return run_clients(reference_mode, clients, link);
}

using Scenario = std::function<RunOutput(bool)>;

const std::vector<std::pair<const char*, Scenario>>& scenarios() {
  static const std::vector<std::pair<const char*, Scenario>> all = {
      {"solo", scenario_solo},
      {"solo_step", scenario_solo_step},
      {"link_faults", scenario_link_faults},
      {"inactive_faults", scenario_inactive_faults},
      {"sensor_faults", scenario_sensor_faults},
      {"cdn_trivial", scenario_cdn_trivial},
      {"cdn_faulty", scenario_cdn_faulty},
      {"shared", scenario_shared},
      {"fleet1", [](bool ref) { return scenario_fleet(ref, 1); }},
      {"fleet2", [](bool ref) { return scenario_fleet(ref, 2); }},
      {"fleet4", [](bool ref) { return scenario_fleet(ref, 4); }},
      {"fleet8", [](bool ref) { return scenario_fleet(ref, 8); }},
  };
  return all;
}

// --- the certification ------------------------------------------------------

TEST(EngineDifferentialTest, FastPathBitIdenticalToReferenceEverywhere) {
  for (const auto& [name, scenario] : scenarios()) {
    const RunOutput reference = scenario(true);
    const RunOutput fast = scenario(false);
    EXPECT_EQ(reference.result, fast.result) << "scenario " << name;
    EXPECT_EQ(reference.timeline, fast.timeline) << "scenario " << name;
    // Sanity: the dumps carry real content, not an accidentally empty run.
    EXPECT_NE(reference.result.find("task"), std::string::npos)
        << "scenario " << name;
  }
}

TEST(EngineDifferentialTest, ExactKeyCachedSelectorsBitIdenticalToUncached) {
  // The DecisionCache's rich-engine default (exact keys): caching must be
  // pure memoization — a cached selector's full hex-float playback dump
  // equals the uncached selector's, at a comfortable capacity AND through a
  // 1-slot cache whose every collision evicts.
  const auto manifest = make_manifest(60.0, 2.0);
  const auto session = make_session(60.0, 8.0, -95.0, 2.0);
  const SoloLinkModel link(session.throughput_mbps);
  const core::Objective objective(qoe::QoeModel{}, power::PowerModel{});

  for (const std::size_t capacity : {std::size_t{4096}, std::size_t{1}}) {
    core::DecisionCacheConfig config;  // exact mode
    config.capacity = capacity;

    core::OnlineBitrateSelector online_uncached(objective);
    const RunOutput online_base =
        run_single(false, manifest, session, online_uncached, link);
    const auto online_cache = std::make_shared<core::DecisionCache>(config);
    core::OnlineBitrateSelector online_cached(objective,
                                              {.cache = online_cache});
    EXPECT_EQ(run_single(false, manifest, session, online_cached, link),
              online_base)
        << "online, capacity " << capacity;
    EXPECT_GT(online_cache->stats().lookups(), 0u);

    core::RollingHorizonSelector horizon_uncached(objective);
    const RunOutput horizon_base =
        run_single(false, manifest, session, horizon_uncached, link);
    const auto horizon_cache = std::make_shared<core::DecisionCache>(config);
    core::RollingHorizonSelector horizon_cached(objective,
                                                {.cache = horizon_cache});
    EXPECT_EQ(run_single(false, manifest, session, horizon_cached, link),
              horizon_base)
        << "horizon, capacity " << capacity;
    EXPECT_GT(horizon_cache->stats().lookups(), 0u);
  }
}

TEST(EngineDifferentialTest, QuantizedCacheStorageNeverChangesDecisions) {
  // Quantized mode certification: capacity 0 (canonicalize every snapshot,
  // solve every time, store nothing) is the reference; any real capacity
  // must reproduce its playback bitwise — storage and eviction can only
  // save solves, never change them. Unlike the exact-key test this run has
  // genuine coalescing, so the capacity-4096 cache must also HIT.
  const auto manifest = make_manifest(90.0, 2.0);
  const auto session = make_step_session(90.0, 12.0, 2.5, 40.0, -102.0, 4.0);
  const SoloLinkModel link(session.throughput_mbps);
  const core::Objective objective(qoe::QoeModel{}, power::PowerModel{});

  core::DecisionCacheConfig quantized;
  quantized.exact = false;
  quantized.prev_level_bucket = 2;

  quantized.capacity = 0;
  const auto reference_cache =
      std::make_shared<core::DecisionCache>(quantized);
  core::OnlineBitrateSelector reference(objective, {.cache = reference_cache});
  const RunOutput base = run_single(false, manifest, session, reference, link);
  EXPECT_EQ(reference_cache->stats().hits, 0u);

  for (const std::size_t capacity : {std::size_t{4096}, std::size_t{1}}) {
    quantized.capacity = capacity;
    const auto cache = std::make_shared<core::DecisionCache>(quantized);
    core::OnlineBitrateSelector cached(objective, {.cache = cache});
    EXPECT_EQ(run_single(false, manifest, session, cached, link), base)
        << "capacity " << capacity;
    EXPECT_EQ(cache->stats().lookups(), reference_cache->stats().lookups());
    if (capacity >= 4096) EXPECT_GT(cache->stats().hits, 0u);
  }
}

TEST(EngineDifferentialTest, TrivialCdnSourceEqualsSoloLink) {
  // The certified no-op: one trivial source must reproduce the solo link
  // over the same trace bit-for-bit (the sim baselines rely on it).
  EXPECT_EQ(scenario_cdn_trivial(false).result, scenario_solo(false).result);
  EXPECT_EQ(scenario_cdn_trivial(true).result, scenario_solo(true).result);
}

TEST(EngineDifferentialTest, ScenarioMatrixBitIdenticalAcrossJobCounts) {
  // Flatten (scenario × mode) into one work list and fan it out through the
  // arena-merging parallel engine at several job counts. Everything must
  // equal the serial reference — this certifies the arena merge and the
  // thread-safety of the shared immutable inputs at once.
  const auto& matrix = scenarios();
  const std::size_t n = matrix.size() * 2;
  std::vector<RunOutput> reference(n);
  for (std::size_t i = 0; i < n; ++i) {
    reference[i] = matrix[i / 2].second(i % 2 == 0);
  }
  for (const std::size_t jobs : {1U, 2U, 8U}) {
    const auto outputs = util::parallel_map(jobs, n, [&](std::size_t i) {
      return matrix[i / 2].second(i % 2 == 0);
    });
    ASSERT_EQ(outputs.size(), n) << "jobs=" << jobs;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(outputs[i].result, reference[i].result)
          << "jobs=" << jobs << " scenario " << matrix[i / 2].first
          << (i % 2 == 0 ? " (reference_mode)" : " (fast)");
      EXPECT_EQ(outputs[i].timeline, reference[i].timeline)
          << "jobs=" << jobs << " scenario " << matrix[i / 2].first;
    }
  }
}

TEST(EngineDifferentialTest, SingleCellCellularLinkEqualsSharedLink) {
  // A one-cell CellularLinkModel must be indistinguishable from the
  // SharedLinkModel over the same capacity trace — same engine path, same
  // bits — at every fleet size the matrix covers.
  const auto manifest = make_manifest(60.0, 2.0);
  const auto capacity_owner = make_session(60.0, 18.0);
  for (const std::size_t n : {1U, 2U, 4U, 8U}) {
    std::vector<trace::SessionTraces> sessions;
    std::vector<std::unique_ptr<AbrPolicy>> shared_policies;
    std::vector<std::unique_ptr<AbrPolicy>> cell_policies;
    for (std::size_t c = 0; c < n; ++c) {
      sessions.push_back(make_session(60.0, 8.0, -92.0, 1.0));
      shared_policies.push_back(std::make_unique<abr::Bba>(5.0, 30.0));
      cell_policies.push_back(std::make_unique<abr::Bba>(5.0, 30.0));
    }
    std::vector<SessionClient> shared_clients;
    std::vector<SessionClient> cell_clients;
    for (std::size_t c = 0; c < n; ++c) {
      shared_clients.push_back({&manifest, shared_policies[c].get(),
                                &sessions[c], static_cast<double>(c)});
      cell_clients.push_back({&manifest, cell_policies[c].get(), &sessions[c],
                              static_cast<double>(c)});
    }
    const SharedLinkModel shared(capacity_owner.throughput_mbps);
    const trace::TimeSeries* cells[] = {&capacity_owner.throughput_mbps};
    const CellularLinkModel cellular(cells);
    const RunOutput a = run_clients(false, shared_clients, shared);
    const RunOutput b = run_clients(false, cell_clients, cellular);
    EXPECT_EQ(a.result, b.result) << "n=" << n;
    EXPECT_EQ(a.timeline, b.timeline) << "n=" << n;
  }
}

TEST(EngineDifferentialTest, ReferenceModeDefaultsOff) {
  // The fast paths are the production configuration; reference_mode exists
  // only for this harness.
  EXPECT_FALSE(SessionEngineConfig{}.reference_mode);
}

}  // namespace
}  // namespace eacs::player
