#pragma once
// Shared fixtures for player/abr/core/sim tests: hand-built sessions with
// controlled network and vibration conditions.

#include <cmath>

#include "eacs/media/manifest.h"
#include "eacs/trace/session.h"

namespace eacs::testing {

/// A session with constant throughput/signal and a constant-amplitude
/// vibration waveform (amplitude chosen so the estimator reads ~`vibration`).
inline trace::SessionTraces make_session(double duration_s, double throughput_mbps,
                                         double signal_dbm = -90.0,
                                         double vibration = 0.0,
                                         double margin_s = 200.0) {
  trace::SessionTraces session;
  session.spec.id = 99;
  session.spec.length_s = duration_s;
  session.spec.avg_vibration = vibration;
  const double total = duration_s + margin_s;

  for (double t = 0.0; t <= total; t += 0.5) {
    session.signal_dbm.append(t, signal_dbm);
    session.throughput_mbps.append(t, throughput_mbps);
  }

  constexpr double kPi = 3.14159265358979323846;
  const double amplitude = vibration * std::sqrt(2.0);
  const double dt = 1.0 / 50.0;
  for (double t = 0.0; t <= total; t += dt) {
    session.accel.push_back(
        {t, 0.0, 0.0, 9.80665 + amplitude * std::sin(2.0 * kPi * 5.0 * t)});
  }
  return session;
}

/// Step-throughput session: `first_mbps` until `switch_at_s`, then
/// `second_mbps`.
inline trace::SessionTraces make_step_session(double duration_s, double first_mbps,
                                              double second_mbps, double switch_at_s,
                                              double signal_dbm = -90.0,
                                              double vibration = 0.0) {
  trace::SessionTraces session = make_session(duration_s, first_mbps, signal_dbm,
                                              vibration);
  trace::TimeSeries stepped;
  for (const auto& point : session.throughput_mbps.samples()) {
    stepped.append(point.t_s, point.t_s < switch_at_s ? first_mbps : second_mbps);
  }
  session.throughput_mbps = std::move(stepped);
  return session;
}

/// A small CBR manifest on the paper's 14-rate evaluation ladder.
inline media::VideoManifest make_manifest(double duration_s = 60.0,
                                          double segment_s = 2.0) {
  return media::VideoManifest("test-video", duration_s, segment_s,
                              media::BitrateLadder::evaluation14());
}

}  // namespace eacs::testing
