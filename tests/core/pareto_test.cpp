#include "eacs/core/pareto.h"

#include <gtest/gtest.h>

#include "eacs/util/rng.h"

namespace eacs::core {
namespace {

std::vector<TaskEnvironment> make_tasks(std::size_t n, std::uint64_t seed,
                                        double vibration) {
  eacs::Rng rng(seed);
  const auto ladder = media::BitrateLadder::evaluation14();
  std::vector<TaskEnvironment> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    TaskEnvironment env;
    env.index = i;
    env.duration_s = 2.0;
    env.signal_dbm = rng.uniform(-110.0, -90.0);
    env.vibration = vibration;
    env.bandwidth_mbps = rng.uniform(8.0, 25.0);
    for (std::size_t level = 0; level < ladder.size(); ++level) {
      env.size_megabits.push_back(ladder.bitrate(level) * 2.0);
    }
    tasks.push_back(std::move(env));
  }
  return tasks;
}

TEST(ParetoTest, InvalidInputsThrow) {
  const qoe::QoeModel qoe_model;
  const power::PowerModel power_model;
  EXPECT_THROW(compute_pareto_front({}, qoe_model, power_model),
               std::invalid_argument);
  const auto tasks = make_tasks(5, 1, 3.0);
  EXPECT_THROW(compute_pareto_front(tasks, qoe_model, power_model, 1),
               std::invalid_argument);
  EXPECT_THROW(price_plan(tasks, {0, 1}, qoe_model, power_model),
               std::invalid_argument);
}

TEST(ParetoTest, FrontIsNonDominatedAndMonotone) {
  const auto tasks = make_tasks(30, 7, 4.0);
  const qoe::QoeModel qoe_model;
  const power::PowerModel power_model;
  const auto front = compute_pareto_front(tasks, qoe_model, power_model, 11);
  ASSERT_GE(front.points.size(), 3U);
  for (std::size_t i = 1; i < front.points.size(); ++i) {
    // Ascending alpha => energy non-increasing, QoE non-increasing.
    EXPECT_GE(front.points[i - 1].energy_j, front.points[i].energy_j - 1e-6);
    EXPECT_GE(front.points[i - 1].mean_qoe, front.points[i].mean_qoe - 1e-9);
  }
  // No point dominates another.
  for (const auto& a : front.points) {
    for (const auto& b : front.points) {
      EXPECT_FALSE(a.energy_j < b.energy_j - 1e-9 &&
                   a.mean_qoe > b.mean_qoe + 1e-9);
    }
  }
}

TEST(ParetoTest, EndpointsMatchPureObjectives) {
  const auto tasks = make_tasks(20, 9, 2.0);
  const qoe::QoeModel qoe_model;
  const power::PowerModel power_model;
  const auto front = compute_pareto_front(tasks, qoe_model, power_model, 11);
  // alpha = 1 endpoint: the all-lowest plan (minimum energy).
  const auto& battery_saver = front.points.back();
  for (std::size_t level : battery_saver.levels) EXPECT_EQ(level, 0U);
  // alpha = 0 endpoint has the highest QoE on the front.
  for (const auto& point : front.points) {
    EXPECT_LE(point.mean_qoe, front.points.front().mean_qoe + 1e-9);
  }
}

TEST(ParetoTest, KneeIsInterior) {
  const auto tasks = make_tasks(30, 11, 5.0);
  const auto front =
      compute_pareto_front(tasks, qoe::QoeModel{}, power::PowerModel{}, 21);
  ASSERT_GE(front.points.size(), 3U);
  EXPECT_GT(front.knee_index, 0U);
  EXPECT_LT(front.knee_index, front.points.size() - 1);
}

TEST(ParetoTest, VibrationShiftsFrontDown) {
  // Under heavy vibration the achievable QoE ceiling drops: the alpha = 0
  // endpoint of the shaky front sits below the quiet one.
  const auto quiet_tasks = make_tasks(20, 13, 0.0);
  const auto shaky_tasks = make_tasks(20, 13, 7.0);
  const qoe::QoeModel qoe_model;
  const power::PowerModel power_model;
  const auto quiet = compute_pareto_front(quiet_tasks, qoe_model, power_model, 9);
  const auto shaky = compute_pareto_front(shaky_tasks, qoe_model, power_model, 9);
  EXPECT_GT(quiet.points.front().mean_qoe, shaky.points.front().mean_qoe + 0.2);
}

TEST(ParetoTest, PricePlanMatchesManualAccounting) {
  const auto tasks = make_tasks(3, 17, 2.0);
  const qoe::QoeModel qoe_model;
  const power::PowerModel power_model;
  const std::vector<std::size_t> plan = {3, 3, 3};
  const auto point = price_plan(tasks, plan, qoe_model, power_model);
  // All same level, ample bandwidth: energy is the sum of three task
  // energies with no stalls.
  double expected_energy = 0.0;
  for (const auto& env : tasks) {
    power::TaskEnergyInput input;
    input.size_mb = env.size_megabits[3] / 8.0;
    input.bitrate_mbps = env.size_megabits[3] / env.duration_s;
    input.signal_dbm = env.signal_dbm;
    input.play_s = env.duration_s;
    expected_energy += power_model.task_energy(input);
  }
  EXPECT_NEAR(point.energy_j, expected_energy, 1e-9);
  EXPECT_GT(point.mean_qoe, 1.0);
}

}  // namespace
}  // namespace eacs::core
