#include "eacs/core/graph.h"

#include <gtest/gtest.h>

#include "eacs/core/optimal.h"
#include "eacs/util/rng.h"

namespace eacs::core {
namespace {

Objective make_objective(double alpha = 0.5) {
  ObjectiveConfig config;
  config.alpha = alpha;
  return Objective(qoe::QoeModel{}, power::PowerModel{}, config);
}

std::vector<TaskEnvironment> random_tasks(std::size_t n, std::size_t m,
                                          std::uint64_t seed) {
  eacs::Rng rng(seed);
  const auto ladder = media::BitrateLadder::evaluation14();
  std::vector<TaskEnvironment> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    TaskEnvironment env;
    env.index = i;
    env.duration_s = 2.0;
    env.signal_dbm = rng.uniform(-115.0, -85.0);
    env.vibration = rng.uniform(0.0, 7.0);
    env.bandwidth_mbps = rng.uniform(2.0, 30.0);
    for (std::size_t level = 0; level < m; ++level) {
      env.size_megabits.push_back(ladder.bitrate(level) * 2.0);
    }
    tasks.push_back(std::move(env));
  }
  return tasks;
}

TEST(SelectionGraphTest, Fig4Shape) {
  // N tasks x M bitrates: 2 + N*M nodes; M + (N-1)*M^2 + M edges.
  const auto objective = make_objective();
  const auto tasks = random_tasks(3, 4, 1);
  const auto graph = build_selection_graph(objective, tasks);
  EXPECT_EQ(graph.nodes.size(), 2U + 3U * 4U);
  EXPECT_EQ(graph.edges.size(), 4U + 2U * 16U + 4U);
  EXPECT_TRUE(graph.nodes[graph.source].is_terminal);
  EXPECT_TRUE(graph.nodes[graph.sink].is_terminal);
  EXPECT_EQ(graph.nodes[graph.source].label, "S");
  EXPECT_EQ(graph.nodes[graph.sink].label, "D");
  // Sink edges carry weight 0 (the paper's construction).
  for (const auto& edge : graph.edges) {
    if (edge.to == graph.sink) {
      EXPECT_DOUBLE_EQ(edge.weight, 0.0);
    }
  }
}

TEST(SelectionGraphTest, EmptyOrRaggedThrows) {
  const auto objective = make_objective();
  EXPECT_THROW(build_selection_graph(objective, {}), std::invalid_argument);
  auto tasks = random_tasks(2, 4, 2);
  tasks[1].size_megabits.pop_back();
  EXPECT_THROW(build_selection_graph(objective, tasks), std::invalid_argument);
}

TEST(SelectionGraphTest, DotRenderingContainsStructure) {
  const auto objective = make_objective();
  const auto tasks = random_tasks(2, 3, 3);
  const auto dot = build_selection_graph(objective, tasks).to_dot();
  EXPECT_NE(dot.find("digraph selection"), std::string::npos);
  EXPECT_NE(dot.find("\"S\""), std::string::npos);
  EXPECT_NE(dot.find("\"D\""), std::string::npos);
  EXPECT_NE(dot.find("\"T1R1\""), std::string::npos);
  EXPECT_NE(dot.find("\"T2R3\""), std::string::npos);
  EXPECT_NE(dot.find("rank=same"), std::string::npos);
}

TEST(SelectionGraphTest, BellmanFordMatchesBothPlanners) {
  for (std::uint64_t seed = 10; seed < 16; ++seed) {
    const auto objective = make_objective(seed % 2 == 0 ? 0.5 : 0.3);
    const auto tasks = random_tasks(12, 14, seed);
    const auto graph = build_selection_graph(objective, tasks);
    const auto graph_path = bellman_ford_shortest_path(graph);

    OptimalPlanner planner(objective);
    const auto dp = planner.plan(tasks, PlannerMethod::kDagDp);
    const auto dijkstra = planner.plan(tasks, PlannerMethod::kDijkstra);

    EXPECT_NEAR(graph_path.total_cost, dp.total_cost, 1e-9) << "seed " << seed;
    EXPECT_NEAR(graph_path.total_cost, dijkstra.total_cost, 1e-6) << "seed " << seed;
    // All three solvers share one tie-break rule (lowest predecessor index),
    // so the reconstructed plans are identical, not merely cost-equal.
    EXPECT_EQ(graph_path.levels, dp.levels) << "seed " << seed;
    EXPECT_EQ(graph_path.levels, dijkstra.levels) << "seed " << seed;
  }
}

TEST(SelectionGraphTest, EmptyLadderThrows) {
  // Regression: tasks whose size_megabits is empty used to build a graph
  // with m == 0 and hit undefined behaviour downstream.
  const auto objective = make_objective();
  std::vector<TaskEnvironment> tasks(2);
  for (auto& env : tasks) {
    env.duration_s = 2.0;
    env.bandwidth_mbps = 8.0;
  }
  EXPECT_THROW(build_selection_graph(objective, tasks), std::invalid_argument);
}

TEST(SelectionGraphTest, PathLevelsAreConsistentWithCost) {
  const auto objective = make_objective();
  const auto tasks = random_tasks(8, 6, 21);
  const auto graph = build_selection_graph(objective, tasks);
  const auto path = bellman_ford_shortest_path(graph);
  ASSERT_EQ(path.levels.size(), tasks.size());
  double recomputed = objective.task_cost(tasks[0], path.levels[0], std::nullopt, 30.0);
  for (std::size_t i = 1; i < tasks.size(); ++i) {
    recomputed += objective.task_cost(tasks[i], path.levels[i], path.levels[i - 1], 30.0);
  }
  EXPECT_NEAR(recomputed, path.total_cost, 1e-9);
}

}  // namespace
}  // namespace eacs::core
