// ContextMonitor edge cases: what the sensing façade reports when its inputs
// are missing, stale, or garbage. The contract (DESIGN.md "Sensor failure
// model & degraded-context operation"): unknown context is treated as the
// conservative vibrating-commute prior, never as a quiet room, and the
// snapshot's health fields always tell the selector how much to trust it.

#include "eacs/core/context_monitor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace eacs::core {
namespace {

using sensors::ContextHealth;

void feed_quiet(ContextMonitor& monitor, double from_s, double to_s) {
  for (double t = from_s; t < to_s; t += 0.02) {
    monitor.update_accel({t, 0.0, 0.0, sensors::kGravity});
  }
}

TEST(ContextMonitorTest, FreshInputsGradeHealthy) {
  ContextMonitor monitor;
  feed_quiet(monitor, 0.0, 10.0);
  monitor.observe_signal(-75.0);
  monitor.observe_throughput(8.0);
  const auto snap = monitor.snapshot();
  EXPECT_EQ(snap.vibration_health, ContextHealth::kHealthy);
  EXPECT_EQ(snap.signal_health, ContextHealth::kHealthy);
  EXPECT_NEAR(snap.vibration_confidence, 1.0, 0.05);
  EXPECT_NEAR(snap.vibration, 0.0, 0.1);  // quiet room, fresh stream: raw level
  EXPECT_FALSE(snap.vibrating_environment);
  EXPECT_DOUBLE_EQ(snap.signal_dbm, -75.0);
  EXPECT_DOUBLE_EQ(snap.bandwidth_mbps, 8.0);
}

TEST(ContextMonitorTest, NoDataReportsConservativePrior) {
  const ContextMonitor monitor;
  const auto snap = monitor.snapshot();
  EXPECT_EQ(snap.vibration_health, ContextHealth::kLost);
  EXPECT_EQ(snap.signal_health, ContextHealth::kLost);
  EXPECT_DOUBLE_EQ(snap.vibration_confidence, 0.0);
  EXPECT_DOUBLE_EQ(snap.vibration, sensors::VibrationConfig{}.prior_vibration);
  EXPECT_TRUE(snap.vibrating_environment);  // prior sits above the 2 m/s^2 bar
}

TEST(ContextMonitorTest, NanFloodGradesLostAndFallsBackToPrior) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  ContextMonitor monitor;
  for (double t = 0.0; t < 5.0; t += 0.02) {
    monitor.update_accel({t, nan, nan, nan});
  }
  const auto snap = monitor.snapshot();
  EXPECT_EQ(snap.vibration_health, ContextHealth::kLost);
  EXPECT_DOUBLE_EQ(snap.vibration_confidence, 0.0);
  EXPECT_TRUE(std::isfinite(snap.vibration));
  EXPECT_DOUBLE_EQ(snap.vibration, sensors::VibrationConfig{}.prior_vibration);
}

TEST(ContextMonitorTest, StaleAccelDecaysTowardPrior) {
  ContextMonitor monitor;
  feed_quiet(monitor, 0.0, 10.0);
  const double fresh = monitor.snapshot(10.0).vibration;
  EXPECT_NEAR(fresh, 0.0, 0.1);
  // 100 s of silence: past accel_lost_after_s, essentially the prior.
  const auto stale = monitor.snapshot(110.0);
  EXPECT_EQ(stale.vibration_health, ContextHealth::kLost);
  EXPECT_NEAR(stale.vibration, sensors::VibrationConfig{}.prior_vibration, 1e-3);
  // Part-way: strictly between the fresh level and the prior, graded degraded
  // or lost depending on the age, never healthy.
  const auto mid = monitor.snapshot(10.0 + 4.0);
  EXPECT_GT(mid.vibration, fresh);
  EXPECT_LT(mid.vibration, sensors::VibrationConfig{}.prior_vibration);
  EXPECT_NE(mid.vibration_health, ContextHealth::kHealthy);
}

TEST(ContextMonitorTest, UntimedSignalIsStampedWithTheAccelClock) {
  ContextMonitor monitor;
  feed_quiet(monitor, 0.0, 5.0);
  monitor.observe_signal(-70.0);
  const auto now = monitor.snapshot();
  EXPECT_DOUBLE_EQ(now.signal_dbm, -70.0);
  EXPECT_NEAR(now.signal_age_s, 0.0, 0.05);
  const auto later = monitor.snapshot(5.0 + 15.0);
  EXPECT_NEAR(later.signal_age_s, 15.0, 0.05);
  EXPECT_EQ(later.signal_health, ContextHealth::kDegraded);
}

TEST(ContextMonitorTest, NonFiniteSignalReadingsAreIgnored) {
  ContextMonitor monitor;
  feed_quiet(monitor, 0.0, 1.0);
  monitor.observe_signal(-70.0);
  monitor.observe_signal(std::numeric_limits<double>::quiet_NaN());
  monitor.observe_signal(-std::numeric_limits<double>::infinity());
  const auto snap = monitor.snapshot();
  EXPECT_DOUBLE_EQ(snap.signal_dbm, -70.0);
  EXPECT_TRUE(std::isfinite(snap.signal_dbm));
}

TEST(ContextMonitorTest, SnapshotDefaultsToTheInternalClock) {
  ContextMonitor monitor;
  feed_quiet(monitor, 0.0, 3.0);
  monitor.observe_signal(-80.0);
  const auto implicit = monitor.snapshot();
  const auto explicit_now = monitor.snapshot(3.0 - 0.02);
  EXPECT_DOUBLE_EQ(implicit.vibration, explicit_now.vibration);
  EXPECT_EQ(implicit.vibration_health, explicit_now.vibration_health);
  EXPECT_DOUBLE_EQ(implicit.signal_age_s, explicit_now.signal_age_s);
}

TEST(ContextMonitorTest, RecoveryAfterAnOutageRestoresHealth) {
  ContextMonitor monitor;
  feed_quiet(monitor, 0.0, 5.0);
  // Outage: nothing for 60 s, then the stream comes back.
  feed_quiet(monitor, 65.0, 75.0);
  monitor.observe_signal(-72.0);
  const auto snap = monitor.snapshot();
  EXPECT_EQ(snap.vibration_health, ContextHealth::kHealthy);
  EXPECT_GT(snap.vibration_confidence, 0.9);
  EXPECT_NEAR(snap.vibration, 0.0, 0.1);
}

}  // namespace
}  // namespace eacs::core
