// DecisionCache unit semantics: canonicalization math (linear / log /
// prev-rung buckets, exact-bit degradation for non-finite inputs),
// deterministic direct-mapped storage, exact hit/miss/eviction counting,
// CostStatsScope mirroring, and config validation. The cross-cutting
// claim — cache-on decisions bitwise equal cache-off decisions on the same
// quantized inputs — lives in tests/property/decision_cache_properties_test.
#include <cmath>
#include <limits>
#include <stdexcept>

#include <gtest/gtest.h>

#include "eacs/core/cost_stats.h"
#include "eacs/core/decision_cache.h"

namespace eacs::core {
namespace {

DecisionCacheConfig quantized_config(std::size_t capacity = 64) {
  DecisionCacheConfig config;
  config.exact = false;
  config.capacity = capacity;
  return config;
}

DecisionSnapshot sample_snapshot() {
  DecisionSnapshot snapshot;
  snapshot.buffer_s = 17.3;
  snapshot.bandwidth_mbps = 2.9;
  snapshot.vibration = 0.4;
  snapshot.confidence = 0.8;
  snapshot.signal_dbm = -97.0;
  snapshot.segments_remaining = 5;
  snapshot.prev_level = 3;
  snapshot.ladder_id = 42;
  snapshot.alpha = 0.5;
  return snapshot;
}

TEST(DecisionCacheConfigTest, RejectsNonPositiveBucketWidths) {
  for (auto mutate : {
           +[](DecisionCacheConfig& c) { c.buffer_bucket_s = 0.0; },
           +[](DecisionCacheConfig& c) { c.bandwidth_buckets_per_octave = -1.0; },
           +[](DecisionCacheConfig& c) { c.vibration_bucket = 0.0; },
           +[](DecisionCacheConfig& c) {
             c.confidence_bucket = std::numeric_limits<double>::quiet_NaN();
           },
           +[](DecisionCacheConfig& c) {
             c.signal_bucket_dbm = std::numeric_limits<double>::infinity();
           },
           +[](DecisionCacheConfig& c) { c.prev_level_bucket = 0; },
       }) {
    DecisionCacheConfig config = quantized_config();
    mutate(config);
    EXPECT_THROW(DecisionCache{config}, std::invalid_argument);
  }
  // The same degenerate widths are legal in exact mode: identity
  // canonicalization never reads them.
  DecisionCacheConfig exact;
  exact.buffer_bucket_s = 0.0;
  exact.prev_level_bucket = 0;
  EXPECT_NO_THROW(DecisionCache{exact});
}

TEST(DecisionCacheTest, ExactModeIsIdentityCanonicalization) {
  DecisionCache cache;  // default config: exact
  const DecisionSnapshot snapshot = sample_snapshot();
  const CanonicalDecision canonical = cache.canonicalize(snapshot);
  EXPECT_EQ(canonical.buffer_s, snapshot.buffer_s);
  EXPECT_EQ(canonical.bandwidth_mbps, snapshot.bandwidth_mbps);
  EXPECT_EQ(canonical.vibration, snapshot.vibration);
  EXPECT_EQ(canonical.confidence, snapshot.confidence);
  EXPECT_EQ(canonical.signal_dbm, snapshot.signal_dbm);
  EXPECT_EQ(canonical.prev_level, snapshot.prev_level);
  // Bitwise-distinct inputs get distinct keys.
  DecisionSnapshot nudged = snapshot;
  nudged.buffer_s = std::nextafter(snapshot.buffer_s, 1e9);
  EXPECT_FALSE(cache.canonicalize(nudged).key == canonical.key);
}

TEST(DecisionCacheTest, QuantizedBucketsUseMidpointRepresentatives) {
  const DecisionCacheConfig config = quantized_config();
  DecisionCache cache(config);
  DecisionSnapshot snapshot = sample_snapshot();
  const CanonicalDecision canonical = cache.canonicalize(snapshot);
  // Linear buckets: index = floor(v / w), representative = midpoint.
  EXPECT_EQ(canonical.key.buffer,
            static_cast<std::int64_t>(
                std::floor(snapshot.buffer_s / config.buffer_bucket_s)));
  EXPECT_DOUBLE_EQ(canonical.buffer_s,
                   (std::floor(snapshot.buffer_s / config.buffer_bucket_s) +
                    0.5) *
                       config.buffer_bucket_s);
  // Log buckets: index = floor(log2(v) * bpo), representative is the
  // geometric bucket centre.
  EXPECT_EQ(canonical.key.bandwidth,
            static_cast<std::int64_t>(
                std::floor(std::log2(snapshot.bandwidth_mbps) *
                           config.bandwidth_buckets_per_octave)));
  EXPECT_GT(canonical.bandwidth_mbps, 0.0);
  // Every raw value in a bucket shares the representative.
  DecisionSnapshot sibling = snapshot;
  sibling.buffer_s += 0.5 * config.buffer_bucket_s;  // same 4s bucket
  const CanonicalDecision sib = cache.canonicalize(sibling);
  EXPECT_EQ(sib.key, canonical.key);
  EXPECT_EQ(sib.buffer_s, canonical.buffer_s);
}

TEST(DecisionCacheTest, CanonicalizationIsIdempotent) {
  DecisionCache cache(quantized_config());
  const CanonicalDecision once = cache.canonicalize(sample_snapshot());
  DecisionSnapshot representative = sample_snapshot();
  representative.buffer_s = once.buffer_s;
  representative.bandwidth_mbps = once.bandwidth_mbps;
  representative.vibration = once.vibration;
  representative.confidence = once.confidence;
  representative.signal_dbm = once.signal_dbm;
  representative.prev_level = once.prev_level;
  const CanonicalDecision twice = cache.canonicalize(representative);
  EXPECT_EQ(twice.key, once.key);
  EXPECT_EQ(twice.buffer_s, once.buffer_s);
  EXPECT_EQ(twice.bandwidth_mbps, once.bandwidth_mbps);
}

TEST(DecisionCacheTest, KeyForMatchesCanonicalizeBitwise) {
  for (const bool exact : {true, false}) {
    DecisionCacheConfig config = quantized_config();
    config.exact = exact;
    config.prev_level_bucket = 2;
    DecisionCache cache(config);
    DecisionSnapshot snapshot = sample_snapshot();
    EXPECT_EQ(cache.key_for(snapshot), cache.canonicalize(snapshot).key);
    snapshot.bandwidth_mbps = 0.0;  // "no throughput" sentinel bucket
    snapshot.prev_level.reset();
    EXPECT_EQ(cache.key_for(snapshot), cache.canonicalize(snapshot).key);
    snapshot.signal_dbm = std::numeric_limits<double>::quiet_NaN();
    EXPECT_EQ(cache.key_for(snapshot), cache.canonicalize(snapshot).key);
  }
}

TEST(DecisionCacheTest, PrevLevelBucketsPairRungsWithFloorRepresentative) {
  DecisionCacheConfig config = quantized_config();
  config.prev_level_bucket = 2;
  DecisionCache cache(config);
  DecisionSnapshot snapshot = sample_snapshot();
  snapshot.prev_level = 7;
  const CanonicalDecision odd = cache.canonicalize(snapshot);
  ASSERT_TRUE(odd.prev_level.has_value());
  EXPECT_EQ(*odd.prev_level, 6u);  // floor to a real rung, never interpolate
  snapshot.prev_level = 6;
  EXPECT_EQ(cache.canonicalize(snapshot).key, odd.key);
  snapshot.prev_level = 5;
  EXPECT_FALSE(cache.canonicalize(snapshot).key == odd.key);
  // No previous rung stays its own key, distinct from any real rung.
  snapshot.prev_level.reset();
  const CanonicalDecision none = cache.canonicalize(snapshot);
  EXPECT_EQ(none.key.prev_level, DecisionKey::kNoPrevLevel);
  EXPECT_FALSE(none.prev_level.has_value());
}

TEST(DecisionCacheTest, NonFiniteInputsDegradeToExactBitKeys) {
  DecisionCache cache(quantized_config());
  DecisionSnapshot nan_snapshot = sample_snapshot();
  nan_snapshot.bandwidth_mbps = std::numeric_limits<double>::quiet_NaN();
  DecisionSnapshot inf_snapshot = sample_snapshot();
  inf_snapshot.bandwidth_mbps = std::numeric_limits<double>::infinity();
  const CanonicalDecision nan_c = cache.canonicalize(nan_snapshot);
  const CanonicalDecision inf_c = cache.canonicalize(inf_snapshot);
  EXPECT_FALSE(nan_c.key == inf_c.key);
  EXPECT_TRUE(std::isnan(nan_c.bandwidth_mbps));
  EXPECT_TRUE(std::isinf(inf_c.bandwidth_mbps));
  // Negative estimates collapse into the single "no throughput" bucket.
  DecisionSnapshot zero = sample_snapshot();
  zero.bandwidth_mbps = 0.0;
  DecisionSnapshot negative = sample_snapshot();
  negative.bandwidth_mbps = -3.0;
  EXPECT_EQ(cache.canonicalize(zero).key, cache.canonicalize(negative).key);
  EXPECT_EQ(cache.canonicalize(negative).bandwidth_mbps, 0.0);
}

TEST(DecisionCacheTest, CountsHitsMissesAndServesStoredLevel) {
  DecisionCache cache(quantized_config());
  const CanonicalDecision canonical = cache.canonicalize(sample_snapshot());
  EXPECT_EQ(cache.find(canonical.key), std::nullopt);
  cache.insert(canonical.key, 4);
  const auto hit = cache.find(canonical.key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 4u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.stats().lookups(), 2u);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.5);
  EXPECT_EQ(cache.entries(), 1u);

  int solves = 0;
  const auto level = cache.level_for(canonical, [&](const CanonicalDecision&) {
    ++solves;
    return std::size_t{9};
  });
  EXPECT_EQ(level, 4u);  // served from cache, solver not consulted
  EXPECT_EQ(solves, 0);

  cache.clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.stats().lookups(), 0u);
  EXPECT_EQ(cache.find(canonical.key), std::nullopt);
}

TEST(DecisionCacheTest, ExternalHitsCountAsCacheHits) {
  CostStats stats;
  DecisionCache cache(quantized_config());
  {
    CostStatsScope scope(stats);
    cache.count_external_hit();
    cache.count_external_hit();
  }
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(stats.cache_hits, 2u);
}

TEST(DecisionCacheTest, CapacityZeroNeverStores) {
  DecisionCache cache(quantized_config(0));
  const CanonicalDecision canonical = cache.canonicalize(sample_snapshot());
  int solves = 0;
  for (int i = 0; i < 3; ++i) {
    const auto level =
        cache.level_for(canonical, [&](const CanonicalDecision&) {
          ++solves;
          return std::size_t{2};
        });
    EXPECT_EQ(level, 2u);
  }
  EXPECT_EQ(solves, 3);  // every lookup misses, nothing is ever stored
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(DecisionCacheTest, CapacityOneThrashesDeterministically) {
  // A 1-slot direct map: alternating keys displace each other every insert,
  // and the eviction count is exact — one per displacement, none for
  // overwriting the same key.
  DecisionCache cache(quantized_config(1));
  DecisionSnapshot a = sample_snapshot();
  DecisionSnapshot b = sample_snapshot();
  b.buffer_s += 10.0 * cache.config().buffer_bucket_s;  // different bucket
  const DecisionKey key_a = cache.canonicalize(a).key;
  const DecisionKey key_b = cache.canonicalize(b).key;
  ASSERT_FALSE(key_a == key_b);

  cache.insert(key_a, 1);
  EXPECT_EQ(cache.stats().evictions, 0u);
  cache.insert(key_a, 1);  // same key: overwrite, not an eviction
  EXPECT_EQ(cache.stats().evictions, 0u);
  cache.insert(key_b, 2);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.find(key_a), std::nullopt);  // displaced
  cache.insert(key_a, 1);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.entries(), 1u);  // entries counts occupancy, not history
}

TEST(DecisionCacheTest, MirrorsCountersIntoCostStatsScope) {
  CostStats stats;
  DecisionCache cache(quantized_config(1));
  const DecisionKey key_a = cache.canonicalize(sample_snapshot()).key;
  DecisionSnapshot other = sample_snapshot();
  other.signal_dbm -= 100.0;
  const DecisionKey key_b = cache.canonicalize(other).key;
  {
    CostStatsScope scope(stats);
    cache.find(key_a);      // miss
    cache.insert(key_a, 0);
    cache.find(key_a);      // hit
    cache.insert(key_b, 1);  // eviction
  }
  cache.find(key_b);  // outside the scope: cache stats only
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_evictions, 1u);
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(DecisionCacheTest, TaskLadderHashSeparatesContentIdentities) {
  TaskEnvironment task;
  task.duration_s = 2.0;
  task.size_megabits = {1.0, 2.0, 4.0};
  TaskEnvironment other = task;
  other.size_megabits[2] = 4.5;
  const TaskEnvironment one_task[] = {task};
  const TaskEnvironment two_tasks[] = {task, task};
  const TaskEnvironment changed[] = {other};
  EXPECT_EQ(hash_task_ladder(one_task), hash_task_ladder(one_task));
  EXPECT_NE(hash_task_ladder(one_task), hash_task_ladder(two_tasks));
  EXPECT_NE(hash_task_ladder(one_task), hash_task_ladder(changed));
  // Context fields are NOT content: they enter the key through their own
  // dimensions, so the ladder hash must ignore them.
  TaskEnvironment noisy = task;
  noisy.vibration = 3.0;
  noisy.signal_dbm = -50.0;
  noisy.bandwidth_mbps = 9.0;
  const TaskEnvironment noisy_window[] = {noisy};
  EXPECT_EQ(hash_task_ladder(one_task), hash_task_ladder(noisy_window));
}

}  // namespace
}  // namespace eacs::core
