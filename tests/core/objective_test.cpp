#include "eacs/core/objective.h"

#include <gtest/gtest.h>

#include "eacs/core/task.h"
#include "../test_helpers.h"

namespace eacs::core {
namespace {

TaskEnvironment make_env(double bandwidth = 10.0, double vibration = 0.0,
                         double signal = -90.0) {
  TaskEnvironment env;
  env.index = 0;
  env.duration_s = 2.0;
  env.signal_dbm = signal;
  env.vibration = vibration;
  env.bandwidth_mbps = bandwidth;
  for (double r : media::BitrateLadder::evaluation14().bitrates()) {
    env.size_megabits.push_back(r * 2.0);
  }
  return env;
}

Objective make_objective(double alpha = 0.5, bool context_aware = true) {
  ObjectiveConfig config;
  config.alpha = alpha;
  config.context_aware = context_aware;
  return Objective(qoe::QoeModel{}, power::PowerModel{}, config);
}

TEST(ObjectiveTest, InvalidAlphaThrows) {
  ObjectiveConfig config;
  config.alpha = 1.5;
  EXPECT_THROW(Objective(qoe::QoeModel{}, power::PowerModel{}, config),
               std::invalid_argument);
  config.alpha = -0.1;
  EXPECT_THROW(Objective(qoe::QoeModel{}, power::PowerModel{}, config),
               std::invalid_argument);
}

TEST(ObjectiveTest, ExpectedRebuffer) {
  const auto objective = make_objective();
  // 11.6 megabits at 2 Mbps = 5.8 s download; 4 s buffered -> 1.8 s stall.
  EXPECT_NEAR(objective.expected_rebuffer_s(11.6, 2.0, 4.0), 1.8, 1e-9);
  EXPECT_DOUBLE_EQ(objective.expected_rebuffer_s(11.6, 20.0, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(objective.expected_rebuffer_s(0.0, 2.0, 4.0), 0.0);
  // Dead link charges the cap.
  EXPECT_DOUBLE_EQ(objective.expected_rebuffer_s(1.0, 0.0, 4.0), 30.0);
}

TEST(ObjectiveTest, EnergyMonotoneInLevel) {
  const auto objective = make_objective();
  const auto env = make_env();
  double prev = 0.0;
  for (std::size_t level = 0; level < 14; ++level) {
    const double energy = objective.task_energy(env, level, 30.0);
    EXPECT_GT(energy, prev);
    prev = energy;
  }
}

TEST(ObjectiveTest, EnergyHigherUnderWeakSignal) {
  const auto objective = make_objective();
  EXPECT_GT(objective.task_energy(make_env(10.0, 0.0, -110.0), 13, 30.0),
            objective.task_energy(make_env(10.0, 0.0, -90.0), 13, 30.0));
}

TEST(ObjectiveTest, QoeMonotoneInLevelWhenQuiet) {
  const auto objective = make_objective();
  const auto env = make_env(50.0, 0.0);
  for (std::size_t level = 1; level < 14; ++level) {
    EXPECT_GE(objective.task_qoe(env, level, std::nullopt, 30.0),
              objective.task_qoe(env, level - 1, std::nullopt, 30.0));
  }
}

TEST(ObjectiveTest, AlphaZeroMaximisesQoe) {
  // Pure QoE weighting in a quiet room with abundant bandwidth: the
  // reference level is the top of the ladder.
  const auto objective = make_objective(0.0);
  EXPECT_EQ(objective.reference_level(make_env(100.0, 0.0), 30.0), 13U);
}

TEST(ObjectiveTest, AlphaOneMinimisesEnergy) {
  const auto objective = make_objective(1.0);
  EXPECT_EQ(objective.reference_level(make_env(100.0, 0.0), 30.0), 0U);
}

TEST(ObjectiveTest, VibrationLowersReferenceLevel) {
  // The core context-aware behaviour: heavy vibration shifts the optimal
  // bitrate down because high-rate QoE gains evaporate.
  const auto objective = make_objective(0.5);
  const auto quiet_ref = objective.reference_level(make_env(100.0, 0.0), 30.0);
  const auto shaky_ref = objective.reference_level(make_env(100.0, 7.0), 30.0);
  EXPECT_LT(shaky_ref, quiet_ref);
}

TEST(ObjectiveTest, WeakSignalLowersReferenceLevel) {
  const auto objective = make_objective(0.5);
  const auto strong = objective.reference_level(make_env(100.0, 0.0, -90.0), 30.0);
  const auto weak = objective.reference_level(make_env(100.0, 0.0, -115.0), 30.0);
  EXPECT_LT(weak, strong);
}

TEST(ObjectiveTest, ContextAwareFlagDisablesVibrationTerm) {
  const auto aware = make_objective(0.5, true);
  const auto blind = make_objective(0.5, false);
  const auto env = make_env(100.0, 7.0);
  // The context-blind objective prices vibration at zero, so its QoE for the
  // top level is higher and its reference level at least as high.
  EXPECT_GT(blind.task_qoe(env, 13, std::nullopt, 30.0),
            aware.task_qoe(env, 13, std::nullopt, 30.0));
  EXPECT_GE(blind.reference_level(env, 30.0), aware.reference_level(env, 30.0));
}

TEST(ObjectiveTest, ScarceBandwidthPunishesHighLevels) {
  const auto objective = make_objective(0.5);
  // 1 Mbps link, 4 s of buffer: levels above 1.5 Mbps (2 s segments = 3+
  // megabits) would stall, so the reference stays at or below level 7
  // (exactly the 3-megabit segment that still fits the buffer).
  EXPECT_LE(objective.reference_level(make_env(1.0, 0.0), 4.0), 7U);
  // With almost no buffer, even mid levels stall: the reference drops hard.
  EXPECT_LE(objective.reference_level(make_env(1.0, 0.0), 0.5), 3U);
}

TEST(ObjectiveTest, SwitchTermPenalisesLevelJumps) {
  const auto objective = make_objective(0.0);
  const auto env = make_env(100.0, 0.0);
  const double stay = objective.task_cost(env, 10, 10U, 30.0);
  const double jump = objective.task_cost(env, 10, 0U, 30.0);
  EXPECT_LT(stay, jump);
}

}  // namespace
}  // namespace eacs::core
