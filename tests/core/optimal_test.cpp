#include "eacs/core/optimal.h"

#include <gtest/gtest.h>

#include <cmath>

#include "eacs/util/rng.h"
#include "../test_helpers.h"

namespace eacs::core {
namespace {

Objective make_objective(double alpha = 0.5) {
  ObjectiveConfig config;
  config.alpha = alpha;
  return Objective(qoe::QoeModel{}, power::PowerModel{}, config);
}

std::vector<TaskEnvironment> random_tasks(std::size_t n, std::size_t levels,
                                          std::uint64_t seed) {
  eacs::Rng rng(seed);
  const auto ladder = media::BitrateLadder::evaluation14();
  std::vector<TaskEnvironment> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    TaskEnvironment env;
    env.index = i;
    env.duration_s = 2.0;
    env.signal_dbm = rng.uniform(-115.0, -85.0);
    env.vibration = rng.uniform(0.0, 7.0);
    env.bandwidth_mbps = rng.uniform(1.0, 30.0);
    for (std::size_t level = 0; level < levels; ++level) {
      env.size_megabits.push_back(ladder.bitrate(level) * 2.0);
    }
    tasks.push_back(std::move(env));
  }
  return tasks;
}

/// Exhaustive reference: enumerate all level sequences (tiny instances only).
OptimalPlan brute_force(const Objective& objective,
                        const std::vector<TaskEnvironment>& tasks, double buffer_s) {
  const std::size_t n = tasks.size();
  const std::size_t m = tasks.front().size_megabits.size();
  std::vector<std::size_t> current(n, 0);
  OptimalPlan best;
  best.total_cost = 1e18;
  const auto total = static_cast<std::size_t>(std::pow(double(m), double(n)));
  for (std::size_t code = 0; code < total; ++code) {
    std::size_t rest = code;
    for (std::size_t i = 0; i < n; ++i) {
      current[i] = rest % m;
      rest /= m;
    }
    double cost = objective.task_cost(tasks[0], current[0], std::nullopt, buffer_s);
    for (std::size_t i = 1; i < n; ++i) {
      cost += objective.task_cost(tasks[i], current[i], current[i - 1], buffer_s);
    }
    if (cost < best.total_cost) {
      best.total_cost = cost;
      best.levels = current;
    }
  }
  return best;
}

TEST(OptimalPlannerTest, EmptyTasksGiveEmptyPlan) {
  OptimalPlanner planner(make_objective());
  const auto plan = planner.plan({});
  EXPECT_TRUE(plan.levels.empty());
}

TEST(OptimalPlannerTest, EmptyLadderThrows) {
  // Regression: a task with no candidate sizes used to index
  // size_megabits.front() with m == 0 undefined behaviour downstream.
  OptimalPlanner planner(make_objective());
  std::vector<TaskEnvironment> tasks(2);
  for (auto& env : tasks) {
    env.duration_s = 2.0;
    env.bandwidth_mbps = 8.0;
  }
  EXPECT_THROW(planner.plan(tasks, PlannerMethod::kDagDp), std::invalid_argument);
  EXPECT_THROW(planner.plan(tasks, PlannerMethod::kDijkstra), std::invalid_argument);
}

TEST(OptimalPlannerTest, SingleTaskPicksReferenceLevel) {
  const auto objective = make_objective();
  OptimalPlanner planner(objective);
  auto tasks = random_tasks(1, 14, 3);
  const auto plan = planner.plan(tasks);
  ASSERT_EQ(plan.levels.size(), 1U);
  EXPECT_EQ(plan.levels[0], objective.reference_level(tasks[0], 30.0));
}

TEST(OptimalPlannerTest, DpMatchesBruteForce) {
  const auto objective = make_objective();
  OptimalPlanner planner(objective);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto tasks = random_tasks(5, 4, seed);  // 4^5 = 1024 sequences
    const auto dp = planner.plan(tasks, PlannerMethod::kDagDp);
    const auto brute = brute_force(objective, tasks, 30.0);
    EXPECT_NEAR(dp.total_cost, brute.total_cost, 1e-9) << "seed " << seed;
    EXPECT_EQ(dp.levels, brute.levels) << "seed " << seed;
  }
}

TEST(OptimalPlannerTest, DijkstraMatchesDp) {
  const auto objective = make_objective();
  OptimalPlanner planner(objective);
  for (std::uint64_t seed = 10; seed <= 14; ++seed) {
    auto tasks = random_tasks(40, 14, seed);
    const auto dp = planner.plan(tasks, PlannerMethod::kDagDp);
    const auto dijkstra = planner.plan(tasks, PlannerMethod::kDijkstra);
    EXPECT_NEAR(dp.total_cost, dijkstra.total_cost, 1e-6) << "seed " << seed;
    // Plans may differ only on exact cost ties; verify by recosting.
    double dijkstra_cost =
        objective.task_cost(tasks[0], dijkstra.levels[0], std::nullopt, 30.0);
    for (std::size_t i = 1; i < tasks.size(); ++i) {
      dijkstra_cost += objective.task_cost(tasks[i], dijkstra.levels[i],
                                           dijkstra.levels[i - 1], 30.0);
    }
    EXPECT_NEAR(dijkstra_cost, dp.total_cost, 1e-6);
  }
}

TEST(OptimalPlannerTest, PlanCostIsSelfConsistent) {
  const auto objective = make_objective();
  OptimalPlanner planner(objective);
  auto tasks = random_tasks(30, 14, 77);
  const auto plan = planner.plan(tasks);
  double recomputed = objective.task_cost(tasks[0], plan.levels[0], std::nullopt, 30.0);
  for (std::size_t i = 1; i < tasks.size(); ++i) {
    recomputed +=
        objective.task_cost(tasks[i], plan.levels[i], plan.levels[i - 1], 30.0);
  }
  EXPECT_NEAR(recomputed, plan.total_cost, 1e-9);
}

TEST(OptimalPlannerTest, QuietStrongConditionsPlanHigh) {
  // alpha = 0 (pure QoE), quiet, fast, strong signal: plan the top level.
  OptimalPlanner planner(make_objective(0.0));
  auto tasks = random_tasks(10, 14, 5);
  for (auto& env : tasks) {
    env.vibration = 0.0;
    env.bandwidth_mbps = 100.0;
    env.signal_dbm = -85.0;
  }
  const auto plan = planner.plan(tasks);
  for (std::size_t level : plan.levels) EXPECT_GE(level, 12U);
}

TEST(OptimalPlannerTest, VibrationLowersPlannedLevels) {
  // The vibration term is decisive when the signal is strong (under weak
  // signal the energy term already pushes the plan down, so both plans
  // coincide); probe the strong-signal regime.
  OptimalPlanner planner(make_objective(0.5));
  auto quiet_tasks = random_tasks(20, 14, 6);
  for (auto& env : quiet_tasks) {
    env.signal_dbm = -85.0;
    env.bandwidth_mbps = 30.0;
  }
  auto shaky_tasks = quiet_tasks;
  for (auto& env : quiet_tasks) env.vibration = 0.0;
  for (auto& env : shaky_tasks) env.vibration = 7.0;
  const auto quiet_plan = planner.plan(quiet_tasks);
  const auto shaky_plan = planner.plan(shaky_tasks);
  double quiet_sum = 0.0;
  double shaky_sum = 0.0;
  for (std::size_t level : quiet_plan.levels) quiet_sum += double(level);
  for (std::size_t level : shaky_plan.levels) shaky_sum += double(level);
  EXPECT_LT(shaky_sum, quiet_sum);
}

TEST(OptimalPlannerTest, BuiltFromRealSessionTasks) {
  const auto manifest = eacs::testing::make_manifest(30.0, 2.0);
  const auto session = eacs::testing::make_session(30.0, 10.0, -100.0, 5.0);
  const auto tasks = build_task_environments(manifest, session);
  ASSERT_EQ(tasks.size(), manifest.num_segments());
  EXPECT_NEAR(tasks[5].bandwidth_mbps, 10.0, 0.5);
  EXPECT_NEAR(tasks[5].signal_dbm, -100.0, 0.5);
  OptimalPlanner planner(make_objective());
  const auto plan = planner.plan(tasks);
  EXPECT_EQ(plan.levels.size(), tasks.size());
}

TEST(PlannedPolicyTest, ReplaysPlanAndFloorsBeyondIt) {
  OptimalPlan plan;
  plan.levels = {3, 5, 7};
  PlannedPolicy policy(plan);
  const auto manifest = eacs::testing::make_manifest(60.0, 2.0);
  net::HarmonicMeanEstimator estimator(20);
  player::AbrContext ctx;
  ctx.manifest = &manifest;
  ctx.bandwidth = &estimator;
  ctx.segment_index = 1;
  EXPECT_EQ(policy.choose_level(ctx), 5U);
  ctx.segment_index = 10;  // past the plan
  EXPECT_EQ(policy.choose_level(ctx), 0U);
  EXPECT_EQ(policy.name(), "Optimal");
}

}  // namespace
}  // namespace eacs::core
