#include "eacs/core/horizon.h"

#include <gtest/gtest.h>

#include "eacs/core/online.h"
#include "eacs/player/player.h"
#include "eacs/sim/metrics.h"
#include "../test_helpers.h"

namespace eacs::core {
namespace {

using eacs::testing::make_manifest;
using eacs::testing::make_session;

Objective make_objective(double alpha = 0.5) {
  ObjectiveConfig config;
  config.alpha = alpha;
  return Objective(qoe::QoeModel{}, power::PowerModel{}, config);
}

TEST(RollingHorizonTest, InvalidHorizonThrows) {
  EXPECT_THROW(RollingHorizonSelector(make_objective(), {.horizon = 0}),
               std::invalid_argument);
}

TEST(RollingHorizonTest, StartupLevelBeforeThroughput) {
  RollingHorizonSelector policy(make_objective(), {.horizon = 5, .startup_level = 2});
  const auto manifest = make_manifest();
  net::HarmonicMeanEstimator estimator(20);
  player::AbrContext ctx;
  ctx.manifest = &manifest;
  ctx.bandwidth = &estimator;
  EXPECT_EQ(policy.choose_level(ctx), 2U);
  EXPECT_EQ(policy.name(), "Ours-RH");
}

TEST(RollingHorizonTest, HorizonOneMatchesReferenceLevelWithSwitchTerm) {
  // With horizon 1 the DP degenerates to a single argmin including the
  // switch coupling to prev_level.
  const Objective objective = make_objective();
  RollingHorizonSelector policy(objective, {.horizon = 1});
  const auto manifest = make_manifest(60.0, 2.0);
  net::HarmonicMeanEstimator estimator(20);
  for (int i = 0; i < 20; ++i) estimator.observe(20.0);
  player::AbrContext ctx;
  ctx.segment_index = 5;
  ctx.num_segments = manifest.num_segments();
  ctx.buffer_s = 25.0;
  ctx.prev_level = 7;
  ctx.manifest = &manifest;
  ctx.bandwidth = &estimator;
  ctx.vibration_level = 3.0;
  ctx.signal_dbm = -95.0;

  TaskEnvironment env;
  env.index = 5;
  env.duration_s = 2.0;
  env.signal_dbm = -95.0;
  env.vibration = 3.0;
  env.bandwidth_mbps = 20.0;
  for (std::size_t level = 0; level < manifest.ladder().size(); ++level) {
    env.size_megabits.push_back(manifest.segment_size_megabits(5, level));
  }
  std::size_t best = 0;
  double best_cost = objective.task_cost(env, 0, ctx.prev_level, ctx.buffer_s);
  for (std::size_t level = 1; level < manifest.ladder().size(); ++level) {
    const double cost = objective.task_cost(env, level, ctx.prev_level, ctx.buffer_s);
    if (cost < best_cost) {
      best_cost = cost;
      best = level;
    }
  }
  EXPECT_EQ(policy.choose_level(ctx), best);
}

TEST(RollingHorizonTest, NoRebufferingOnStableNetwork) {
  player::PlayerSimulator simulator(make_manifest(120.0, 2.0));
  RollingHorizonSelector policy(make_objective(), {.horizon = 5, .startup_level = 3});
  const auto result = simulator.run(policy, make_session(120.0, 12.0));
  EXPECT_DOUBLE_EQ(result.total_rebuffer_s, 0.0);
}

TEST(RollingHorizonTest, FewerSwitchesThanUnsmoothedOnline) {
  // The switch coupling inside the DP should keep the decision sequence at
  // least as stable as the jump-to-reference variant of Algorithm 1.
  const auto manifest = make_manifest(240.0, 2.0);
  player::PlayerSimulator simulator(manifest);
  const auto session = eacs::testing::make_step_session(240.0, 25.0, 6.0, 120.0,
                                                        -95.0, 4.0);
  RollingHorizonSelector horizon(make_objective(), {.horizon = 5, .startup_level = 3});
  OnlineBitrateSelector jumpy(make_objective(),
                              {.startup_level = 3, .smoothing = false});
  const auto horizon_result = simulator.run(horizon, session);
  const auto jumpy_result = simulator.run(jumpy, session);
  EXPECT_LE(horizon_result.switch_count, jumpy_result.switch_count);
}

TEST(RollingHorizonTest, VibrationLowersChosenBitrates) {
  player::PlayerSimulator simulator(make_manifest(180.0, 2.0));
  RollingHorizonSelector policy_a(make_objective());
  RollingHorizonSelector policy_b(make_objective());
  const auto quiet = simulator.run(policy_a, make_session(180.0, 30.0, -88.0, 0.0));
  const auto shaky = simulator.run(policy_b, make_session(180.0, 30.0, -88.0, 6.5));
  EXPECT_LT(shaky.mean_bitrate_mbps(), quiet.mean_bitrate_mbps());
}

TEST(RollingHorizonTest, ObjectiveNotWorseThanMyopicOnline) {
  // On the same session, the horizon-5 plan should achieve a weighted
  // objective (energy-and-QoE cost accounted post hoc) no worse than the
  // myopic online algorithm, modulo estimator noise; assert energy within a
  // small band rather than strict dominance.
  const auto manifest = make_manifest(240.0, 2.0);
  player::PlayerSimulator simulator(manifest);
  const auto session = make_session(240.0, 15.0, -100.0, 5.5);
  RollingHorizonSelector horizon(make_objective(), {.horizon = 5, .startup_level = 3});
  OnlineBitrateSelector online(make_objective(), {.startup_level = 3});
  const auto horizon_result = simulator.run(horizon, session);
  const auto online_result = simulator.run(online, session);
  const qoe::QoeModel qoe_model;
  const power::PowerModel power_model;
  const auto h = sim::compute_metrics("RH", 0, horizon_result, manifest, qoe_model,
                                      power_model);
  const auto o = sim::compute_metrics("OL", 0, online_result, manifest, qoe_model,
                                      power_model);
  EXPECT_LT(h.total_energy_j, o.total_energy_j * 1.10);
  EXPECT_GT(h.mean_qoe, o.mean_qoe - 0.3);
}

}  // namespace
}  // namespace eacs::core
