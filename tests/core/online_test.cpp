#include "eacs/core/online.h"

#include <gtest/gtest.h>

#include "eacs/core/context_monitor.h"
#include "eacs/player/player.h"
#include "../test_helpers.h"

namespace eacs::core {
namespace {

using eacs::testing::make_manifest;
using eacs::testing::make_session;

Objective make_objective(double alpha = 0.5) {
  ObjectiveConfig config;
  config.alpha = alpha;
  return Objective(qoe::QoeModel{}, power::PowerModel{}, config);
}

TaskEnvironment make_env() {
  TaskEnvironment env;
  env.duration_s = 2.0;
  for (double r : media::BitrateLadder::evaluation14().bitrates()) {
    env.size_megabits.push_back(r * 2.0);
  }
  return env;
}

TEST(SmoothingRuleTest, StepsUpOneLevel) {
  const auto env = make_env();
  EXPECT_EQ(OnlineBitrateSelector::smooth(10, 4, env, 10.0, 30.0), 5U);
  EXPECT_EQ(OnlineBitrateSelector::smooth(5, 4, env, 10.0, 30.0), 5U);
}

TEST(SmoothingRuleTest, HoldsWhenReferenceEqualsPrevious) {
  const auto env = make_env();
  EXPECT_EQ(OnlineBitrateSelector::smooth(6, 6, env, 10.0, 30.0), 6U);
}

TEST(SmoothingRuleTest, StepsDownToHighestFeasible) {
  const auto env = make_env();
  // Plenty of buffer: the first level below previous is feasible.
  EXPECT_EQ(OnlineBitrateSelector::smooth(2, 8, env, 10.0, 30.0), 7U);
}

TEST(SmoothingRuleTest, SkipsInfeasibleLevelsOnTheWayDown) {
  const auto env = make_env();
  // 0.5 Mbps bandwidth, 10 s of buffer: feasible levels need
  // size/bw = 2*rate/0.5 <= 10 -> rate <= 2.5 Mbps -> level <= 8 (2.3).
  EXPECT_EQ(OnlineBitrateSelector::smooth(2, 13, env, 0.5, 10.0), 8U);
}

TEST(SmoothingRuleTest, FallsToReferenceWhenNothingFits) {
  const auto env = make_env();
  // Nothing between reference and previous fits a tiny buffer.
  EXPECT_EQ(OnlineBitrateSelector::smooth(2, 13, env, 0.1, 0.5), 2U);
}

TEST(SmoothingRuleTest, ConsecutiveLowReferencesConvergeToReference) {
  const auto env = make_env();
  // Mid-bandwidth: walk down from 13 with repeated reference 2; it must
  // reach 2 in a bounded number of steps and stay there.
  std::size_t level = 13;
  for (int step = 0; step < 20; ++step) {
    level = OnlineBitrateSelector::smooth(2, level, env, 3.0, 10.0);
  }
  EXPECT_EQ(level, 2U);
}

TEST(SmoothingRuleTest, ConsecutiveHighReferencesRampToReference) {
  const auto env = make_env();
  std::size_t level = 0;
  for (int step = 0; step < 20; ++step) {
    if (level != 9) {
      level = OnlineBitrateSelector::smooth(9, level, env, 50.0, 30.0);
    }
  }
  EXPECT_EQ(level, 9U);
}

TEST(OnlineSelectorTest, StartupLevelBeforeAnyThroughput) {
  OnlineBitrateSelector policy(make_objective(), {.startup_level = 3});
  const auto manifest = make_manifest();
  net::HarmonicMeanEstimator estimator(20);
  player::AbrContext ctx;
  ctx.manifest = &manifest;
  ctx.bandwidth = &estimator;
  ctx.segment_index = 0;
  EXPECT_EQ(policy.choose_level(ctx), 3U);
  EXPECT_EQ(policy.name(), "Ours");
}

TEST(OnlineSelectorTest, QuietFastConditionsRampUp) {
  player::PlayerSimulator simulator(make_manifest(120.0, 2.0));
  OnlineBitrateSelector policy(make_objective(0.3), {.startup_level = 0});
  const auto session = make_session(120.0, 40.0, -85.0, 0.0);
  const auto result = simulator.run(policy, session);
  // With QoE-leaning alpha and perfect conditions, the tail of the session
  // should be at a high rung.
  EXPECT_GE(result.tasks.back().level, 9U);
}

TEST(OnlineSelectorTest, VibrationPullsBitrateDown) {
  player::PlayerSimulator simulator(make_manifest(180.0, 2.0));
  const auto quiet = make_session(180.0, 30.0, -90.0, 0.0);
  const auto shaky = make_session(180.0, 30.0, -90.0, 6.5);
  OnlineBitrateSelector policy_a(make_objective());
  OnlineBitrateSelector policy_b(make_objective());
  const auto quiet_result = simulator.run(policy_a, quiet);
  const auto shaky_result = simulator.run(policy_b, shaky);
  EXPECT_LT(shaky_result.mean_bitrate_mbps(), quiet_result.mean_bitrate_mbps());
  EXPECT_LT(shaky_result.total_downloaded_mb(), quiet_result.total_downloaded_mb());
}

TEST(OnlineSelectorTest, NoRebufferingOnStableNetwork) {
  player::PlayerSimulator simulator(make_manifest(120.0, 2.0));
  OnlineBitrateSelector policy(make_objective());
  const auto result = simulator.run(policy, make_session(120.0, 10.0));
  EXPECT_DOUBLE_EQ(result.total_rebuffer_s, 0.0);
}

TEST(OnlineSelectorTest, SmoothSwitchingBehaviour) {
  // No single-segment jumps of more than one level upward.
  player::PlayerSimulator simulator(make_manifest(120.0, 2.0));
  OnlineBitrateSelector policy(make_objective(0.3));
  const auto result = simulator.run(policy, make_session(120.0, 30.0));
  for (std::size_t i = 1; i < result.tasks.size(); ++i) {
    const long long delta = static_cast<long long>(result.tasks[i].level) -
                            static_cast<long long>(result.tasks[i - 1].level);
    EXPECT_LE(delta, 1) << "segment " << i;
  }
}

TEST(ContextMonitorTest, SnapshotAggregatesInputs) {
  ContextMonitor monitor;
  monitor.observe_signal(-101.0);
  monitor.observe_throughput(8.0);
  monitor.observe_throughput(4.0);
  for (int i = 0; i < 500; ++i) {
    const double t = i / 50.0;
    monitor.update_accel({t, 0.0, 0.0,
                          9.80665 + 4.0 * std::sin(2.0 * 3.14159 * 5.0 * t)});
  }
  const auto snap = monitor.snapshot();
  EXPECT_DOUBLE_EQ(snap.signal_dbm, -101.0);
  EXPECT_NEAR(snap.bandwidth_mbps, 2.0 / (1.0 / 8.0 + 1.0 / 4.0), 1e-9);
  EXPECT_GT(snap.vibration, 2.0);
  EXPECT_TRUE(snap.vibrating_environment);
}

TEST(ContextMonitorTest, ResetClears) {
  ContextMonitor monitor;
  monitor.observe_throughput(8.0);
  monitor.observe_signal(-111.0);
  monitor.reset();
  const auto snap = monitor.snapshot();
  EXPECT_DOUBLE_EQ(snap.bandwidth_mbps, 0.0);
  EXPECT_DOUBLE_EQ(snap.signal_dbm, -90.0);
  // With no accelerometer data at all, the context is unknown: the snapshot
  // reports the conservative vibrating-commute prior, graded kLost.
  EXPECT_DOUBLE_EQ(snap.vibration, sensors::VibrationConfig{}.prior_vibration);
  EXPECT_TRUE(snap.vibrating_environment);
  EXPECT_EQ(snap.vibration_health, sensors::ContextHealth::kLost);
  EXPECT_EQ(snap.signal_health, sensors::ContextHealth::kLost);
  EXPECT_DOUBLE_EQ(snap.vibration_confidence, 0.0);
}

}  // namespace
}  // namespace eacs::core
