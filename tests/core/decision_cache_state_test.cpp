// DecisionCache export_state/restore_state: the checkpoint side of the
// planner memoization layer (DESIGN §14). The contract is continuation
// equivalence — export mid-stream, restore into a fresh cache with the same
// config, keep consulting: every hit/miss/eviction and every returned level
// must match the never-exported cache exactly, because the restored table
// has the identical slot layout, not just the identical key set.
#include <cstdint>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "eacs/core/decision_cache.h"

namespace eacs::core {
namespace {

DecisionCacheConfig quantized_config(std::size_t capacity) {
  DecisionCacheConfig config;
  config.exact = false;
  config.capacity = capacity;
  return config;
}

DecisionSnapshot snapshot(int i) {
  DecisionSnapshot s;
  s.buffer_s = 3.0 * (i % 11);
  s.bandwidth_mbps = 0.4 + 0.9 * (i % 17);
  s.vibration = 0.3 * (i % 5);
  s.signal_dbm = -110.0 + 2.0 * (i % 23);
  s.segments_remaining = 1 + (i % 7);
  if (i % 3 != 0) s.prev_level = static_cast<std::size_t>(i % 4);
  s.ladder_id = 42;
  return s;
}

// A deterministic stand-in solver keyed on the canonical inputs.
std::size_t fake_solve(const CanonicalDecision& canonical) {
  return static_cast<std::size_t>(canonical.key.hash() % 5);
}

TEST(DecisionCacheStateTest, RoundTripPreservesContentsAndCounters) {
  DecisionCache cache(quantized_config(64));
  for (int i = 0; i < 500; ++i) {
    cache.level_for(cache.canonicalize(snapshot(i)),
                    [](const CanonicalDecision& c) { return fake_solve(c); });
  }
  const DecisionCacheState state = cache.export_state();
  EXPECT_EQ(state.stats.hits, cache.stats().hits);
  EXPECT_EQ(state.stats.misses, cache.stats().misses);
  EXPECT_EQ(state.stats.evictions, cache.stats().evictions);
  EXPECT_EQ(state.entries.size(), cache.entries());

  DecisionCache restored(quantized_config(64));
  restored.restore_state(state);
  EXPECT_EQ(restored.entries(), cache.entries());
  EXPECT_EQ(restored.stats().hits, cache.stats().hits);
  EXPECT_EQ(restored.stats().misses, cache.stats().misses);
  EXPECT_EQ(restored.stats().evictions, cache.stats().evictions);
  // Exporting the restored cache reproduces the state exactly.
  const DecisionCacheState re_exported = restored.export_state();
  EXPECT_EQ(re_exported.entries, state.entries);
}

TEST(DecisionCacheStateTest, RestoredCacheContinuesIdentically) {
  // Split the consultation stream: [0, 400) into the original, export,
  // restore, then [400, 1000) into both — hits, misses, evictions, and
  // levels must track bit-for-bit even through direct-mapped displacement.
  const auto config = quantized_config(32);  // small: force evictions
  DecisionCache uninterrupted(config);
  DecisionCache first(config);
  for (int i = 0; i < 400; ++i) {
    uninterrupted.level_for(
        uninterrupted.canonicalize(snapshot(i)),
        [](const CanonicalDecision& c) { return fake_solve(c); });
    first.level_for(first.canonicalize(snapshot(i)),
                    [](const CanonicalDecision& c) { return fake_solve(c); });
  }
  DecisionCache resumed(config);
  resumed.restore_state(first.export_state());
  for (int i = 400; i < 1000; ++i) {
    const std::size_t a = uninterrupted.level_for(
        uninterrupted.canonicalize(snapshot(i)),
        [](const CanonicalDecision& c) { return fake_solve(c); });
    const std::size_t b = resumed.level_for(
        resumed.canonicalize(snapshot(i)),
        [](const CanonicalDecision& c) { return fake_solve(c); });
    EXPECT_EQ(a, b);
  }
  EXPECT_EQ(resumed.stats().hits, uninterrupted.stats().hits);
  EXPECT_EQ(resumed.stats().misses, uninterrupted.stats().misses);
  EXPECT_EQ(resumed.stats().evictions, uninterrupted.stats().evictions);
  EXPECT_EQ(resumed.entries(), uninterrupted.entries());
}

TEST(DecisionCacheStateTest, RestoreReplacesExistingContents) {
  DecisionCache donor(quantized_config(16));
  donor.level_for(donor.canonicalize(snapshot(1)),
                  [](const CanonicalDecision& c) { return fake_solve(c); });
  const DecisionCacheState state = donor.export_state();

  DecisionCache target(quantized_config(16));
  for (int i = 0; i < 100; ++i) {
    target.level_for(target.canonicalize(snapshot(i)),
                     [](const CanonicalDecision& c) { return fake_solve(c); });
  }
  target.restore_state(state);
  EXPECT_EQ(target.entries(), donor.entries());
  EXPECT_EQ(target.stats().misses, donor.stats().misses);
  EXPECT_EQ(target.export_state().entries, state.entries);
}

TEST(DecisionCacheStateTest, EmptyAndZeroCapacityStates) {
  DecisionCache empty(quantized_config(16));
  const DecisionCacheState state = empty.export_state();
  EXPECT_TRUE(state.entries.empty());
  DecisionCache restored(quantized_config(16));
  restored.restore_state(state);
  EXPECT_EQ(restored.entries(), 0U);

  // capacity 0 (quantize-only) exports an empty table but real counters.
  DecisionCache uncached(quantized_config(0));
  uncached.level_for(uncached.canonicalize(snapshot(3)),
                     [](const CanonicalDecision& c) { return fake_solve(c); });
  const DecisionCacheState uncached_state = uncached.export_state();
  EXPECT_TRUE(uncached_state.entries.empty());
  EXPECT_EQ(uncached_state.stats.misses, 1U);
}

TEST(DecisionCacheStateTest, RestoreValidates) {
  DecisionCache cache(quantized_config(8));
  cache.level_for(cache.canonicalize(snapshot(1)),
                  [](const CanonicalDecision& c) { return fake_solve(c); });
  {
    DecisionCacheState state = cache.export_state();
    state.entries[0].slot = 8;  // outside capacity
    DecisionCache victim(quantized_config(8));
    EXPECT_THROW(victim.restore_state(state), std::invalid_argument);
  }
  {
    DecisionCacheState state = cache.export_state();
    state.entries.push_back(state.entries[0]);  // duplicate slot
    DecisionCache victim(quantized_config(8));
    EXPECT_THROW(victim.restore_state(state), std::invalid_argument);
  }
}

}  // namespace
}  // namespace eacs::core
