#include "eacs/core/prefetch.h"

#include <gtest/gtest.h>

#include "../test_helpers.h"

namespace eacs::core {
namespace {

/// A signal trace alternating strong/weak phases and a constant-rate link.
struct AlternatingFixture {
  media::VideoManifest manifest = eacs::testing::make_manifest(120.0, 2.0);
  trace::TimeSeries signal;
  trace::TimeSeries throughput;

  AlternatingFixture() {
    // 30 s strong (-85), 30 s weak (-115), repeating; plenty of bandwidth.
    for (double t = 0.0; t <= 400.0; t += 1.0) {
      const bool strong = static_cast<int>(t / 30.0) % 2 == 0;
      signal.append(t, strong ? -85.0 : -115.0);
      throughput.append(t, 20.0);
    }
  }

  std::vector<std::size_t> constant_plan(std::size_t level) const {
    return std::vector<std::size_t>(manifest.num_segments(), level);
  }
};

TEST(PrefetchTest, InvalidInputsThrow) {
  AlternatingFixture fixture;
  EXPECT_THROW(PrefetchScheduler(fixture.manifest, {0, 1},  // wrong length
                                 fixture.signal, fixture.throughput,
                                 power::PowerModel{}),
               std::invalid_argument);
  PrefetchConfig bad;
  bad.slot_s = 0.0;
  EXPECT_THROW(PrefetchScheduler(fixture.manifest, fixture.constant_plan(5),
                                 fixture.signal, fixture.throughput,
                                 power::PowerModel{}, bad),
               std::invalid_argument);
}

TEST(PrefetchTest, AsapIsFeasibleOnFastLink) {
  AlternatingFixture fixture;
  const power::PowerModel power_model;
  PrefetchScheduler scheduler(fixture.manifest, fixture.constant_plan(7),
                              fixture.signal, fixture.throughput, power_model);
  const auto plan = scheduler.asap();
  EXPECT_TRUE(plan.feasible());
  ASSERT_EQ(plan.downloads.size(), fixture.manifest.num_segments());
  // Sequential, deadline-respecting downloads.
  for (std::size_t i = 1; i < plan.downloads.size(); ++i) {
    EXPECT_GE(plan.downloads[i].start_s, plan.downloads[i - 1].end_s - 1e-9);
    EXPECT_LE(plan.downloads[i].end_s, plan.downloads[i].deadline_s + 1e-9);
  }
}

TEST(PrefetchTest, OptimizedNeverWorseThanAsap) {
  AlternatingFixture fixture;
  const power::PowerModel power_model;
  for (std::size_t level : {3UL, 7UL, 13UL}) {
    PrefetchScheduler scheduler(fixture.manifest, fixture.constant_plan(level),
                                fixture.signal, fixture.throughput, power_model);
    const auto asap = scheduler.asap();
    const auto optimized = scheduler.optimize();
    EXPECT_LE(optimized.radio_energy_j, asap.radio_energy_j + 1e-6)
        << "level " << level;
    EXPECT_TRUE(optimized.feasible());
  }
}

TEST(PrefetchTest, SchedulerExploitsStrongSignalWindows) {
  // With alternating signal, deferring/batching into strong windows should
  // cut a visible share of the radio energy vs ASAP.
  AlternatingFixture fixture;
  const power::PowerModel power_model;
  PrefetchScheduler scheduler(fixture.manifest, fixture.constant_plan(10),
                              fixture.signal, fixture.throughput, power_model);
  const auto asap = scheduler.asap();
  const auto optimized = scheduler.optimize();
  EXPECT_LT(optimized.radio_energy_j, 0.9 * asap.radio_energy_j);
  // The optimised plan's downloads cluster in strong windows: the mean
  // signal during scheduled downloads is better than during ASAP's.
  const auto mean_signal = [&](const PrefetchPlan& plan) {
    double total = 0.0;
    for (const auto& download : plan.downloads) {
      total += fixture.signal.mean_over(download.start_s,
                                        std::max(download.end_s,
                                                 download.start_s + 1e-6));
    }
    return total / static_cast<double>(plan.downloads.size());
  };
  EXPECT_GT(mean_signal(optimized), mean_signal(asap) + 5.0);
}

TEST(PrefetchTest, ConstantSignalLeavesNothingToGain) {
  const auto session = eacs::testing::make_session(60.0, 20.0, -95.0, 0.0);
  const auto manifest = eacs::testing::make_manifest(60.0, 2.0);
  const power::PowerModel power_model;
  PrefetchScheduler scheduler(manifest,
                              std::vector<std::size_t>(manifest.num_segments(), 7),
                              session.signal_dbm, session.throughput_mbps,
                              power_model);
  const auto asap = scheduler.asap();
  const auto optimized = scheduler.optimize();
  EXPECT_NEAR(optimized.radio_energy_j, asap.radio_energy_j,
              asap.radio_energy_j * 0.01);
}

TEST(PrefetchTest, BufferCapLimitsPrefetchDepth) {
  AlternatingFixture fixture;
  const power::PowerModel power_model;
  PrefetchConfig config;
  config.buffer_cap_s = 10.0;  // tight cap: little room to shift downloads
  PrefetchScheduler tight(fixture.manifest, fixture.constant_plan(10),
                          fixture.signal, fixture.throughput, power_model, config);
  PrefetchConfig loose_config;
  loose_config.buffer_cap_s = 60.0;
  PrefetchScheduler loose(fixture.manifest, fixture.constant_plan(10),
                          fixture.signal, fixture.throughput, power_model,
                          loose_config);
  // A looser buffer gives the scheduler more freedom: at least as good.
  EXPECT_LE(loose.optimize().radio_energy_j,
            tight.optimize().radio_energy_j + 1e-6);
  // And the cap is respected: completion never earlier than allowed.
  const auto plan = tight.optimize();
  for (const auto& download : plan.downloads) {
    const double earliest =
        2.0 + (static_cast<double>(download.segment_index) + 1.0) * 2.0 - 10.0;
    EXPECT_GE(download.end_s, std::max(0.0, earliest) - 1.0 - 1e-6);
  }
}

TEST(PrefetchTest, SlowLinkFallsBackWithStalls) {
  // 1 Mbps link, 5.8 Mbps segments: infeasible deadlines; the scheduler
  // must still return a complete (late) plan rather than fail.
  const auto manifest = eacs::testing::make_manifest(30.0, 2.0);
  trace::TimeSeries signal;
  trace::TimeSeries throughput;
  for (double t = 0.0; t <= 400.0; t += 1.0) {
    signal.append(t, -100.0);
    throughput.append(t, 1.0);
  }
  PrefetchScheduler scheduler(manifest,
                              std::vector<std::size_t>(manifest.num_segments(), 13),
                              signal, throughput, power::PowerModel{});
  const auto plan = scheduler.optimize();
  EXPECT_EQ(plan.downloads.size(), manifest.num_segments());
  EXPECT_FALSE(plan.feasible());
  EXPECT_GT(plan.stall_s, 0.0);
}

}  // namespace
}  // namespace eacs::core
