// Cellular link model: multi-cell stepping, handoffs, and the edge cases the
// event-heap path must survive (mid-download crossings, zero-capacity cells,
// simultaneous handoffs on one step edge, dormant-cell wake). Bit-identity of
// the single-cell configuration lives in tests/differential/.
#include <span>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "eacs/abr/fixed.h"
#include "eacs/player/session_engine.h"
#include "../test_helpers.h"

namespace eacs::player {
namespace {

using eacs::testing::make_manifest;
using eacs::testing::make_session;

trace::TimeSeries constant_capacity(double mbps, double duration = 2000.0) {
  trace::TimeSeries series;
  series.append(0.0, mbps);
  series.append(duration, mbps);
  return series;
}

SessionEngineConfig quick_config(double max_session_s = 600.0) {
  SessionEngineConfig config;
  config.max_session_s = max_session_s;
  return config;
}

TEST(CellularLinkModelTest, ValidatesCells) {
  EXPECT_THROW(CellularLinkModel(std::span<const trace::TimeSeries* const>{}),
               std::invalid_argument);
  const trace::TimeSeries empty;
  const trace::TimeSeries* cells[] = {&empty};
  EXPECT_THROW(CellularLinkModel{cells}, std::invalid_argument);
  const trace::TimeSeries* null_cells[] = {nullptr};
  EXPECT_THROW(CellularLinkModel{null_cells}, std::invalid_argument);
}

TEST(CellularLinkModelTest, RouteAndHomeCellValidated) {
  const auto manifest = make_manifest(20.0, 2.0);
  const auto session = make_session(20.0, 10.0);
  abr::FixedBitrate fixed(5, "Fixed");
  const auto cap_a = constant_capacity(10.0);
  const auto cap_b = constant_capacity(10.0);
  const trace::TimeSeries* cells[] = {&cap_a, &cap_b};
  const CellularLinkModel link(cells);
  const SessionEngine engine(quick_config());

  SessionClient client{&manifest, &fixed, &session, 0.0};
  client.home_cell = 2;  // out of range
  EXPECT_THROW(engine.run({&client, 1}, link), std::invalid_argument);

  client.home_cell = 0;
  const std::vector<CellHop> bad_cell = {{5.0, 7}};
  client.route = bad_cell;
  EXPECT_THROW(engine.run({&client, 1}, link), std::invalid_argument);

  const std::vector<CellHop> unsorted = {{9.0, 1}, {5.0, 0}};
  client.route = unsorted;
  EXPECT_THROW(engine.run({&client, 1}, link), std::invalid_argument);
}

TEST(CellularTest, SingleCellMatchesSharedLink) {
  const auto manifest = make_manifest(40.0, 2.0);
  const auto session = make_session(40.0, 16.0);
  const auto capacity = constant_capacity(16.0);
  const SessionEngine engine(quick_config());

  for (const std::size_t n : {1U, 2U, 4U}) {
    std::vector<abr::FixedBitrate> shared_policies;
    std::vector<abr::FixedBitrate> cell_policies;
    shared_policies.reserve(n);
    cell_policies.reserve(n);
    std::vector<SessionClient> shared_clients;
    std::vector<SessionClient> cell_clients;
    for (std::size_t c = 0; c < n; ++c) {
      shared_policies.emplace_back(6, "F");
      cell_policies.emplace_back(6, "F");
    }
    for (std::size_t c = 0; c < n; ++c) {
      shared_clients.push_back({&manifest, &shared_policies[c], &session,
                                static_cast<double>(c)});
      cell_clients.push_back({&manifest, &cell_policies[c], &session,
                              static_cast<double>(c)});
    }
    const SharedLinkModel shared(capacity);
    const trace::TimeSeries* cells[] = {&capacity};
    const CellularLinkModel cellular(cells);

    const auto a = engine.run(shared_clients, shared);
    const auto b = engine.run(cell_clients, cellular);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t c = 0; c < n; ++c) {
      ASSERT_EQ(a[c].tasks.size(), b[c].tasks.size());
      EXPECT_EQ(a[c].session_end_s, b[c].session_end_s);
      EXPECT_EQ(a[c].total_rebuffer_s, b[c].total_rebuffer_s);
      EXPECT_EQ(a[c].startup_delay_s, b[c].startup_delay_s);
      EXPECT_EQ(a[c].cell_handoffs, 0U);
      EXPECT_EQ(b[c].cell_handoffs, 0U);
      for (std::size_t t = 0; t < a[c].tasks.size(); ++t) {
        EXPECT_EQ(a[c].tasks[t].download_end_s, b[c].tasks[t].download_end_s);
        EXPECT_EQ(a[c].tasks[t].throughput_mbps, b[c].tasks[t].throughput_mbps);
      }
    }
  }
}

TEST(CellularTest, MidDownloadHandoffCarriesRemainingBytes) {
  const auto manifest = make_manifest(40.0, 2.0);
  const auto session = make_session(40.0, 8.0);
  // 5.8 Mbps rungs over a 1 Mbps cell: the first download alone takes ~11.6 s
  // of wall time, so the t = 5 hop is guaranteed to land mid-transfer.
  abr::FixedBitrate fixed(13, "Big");
  const auto cap_a = constant_capacity(1.0);
  const auto cap_b = constant_capacity(30.0);
  const trace::TimeSeries* cells[] = {&cap_a, &cap_b};
  const CellularLinkModel link(cells);
  const SessionEngine engine(quick_config());

  SessionClient client{&manifest, &fixed, &session, 0.0};
  const std::vector<CellHop> route = {{5.0, 1}};
  client.route = route;

  SessionTimeline timeline;
  const auto results = engine.run({&client, 1}, link, &timeline);
  ASSERT_EQ(results.size(), 1U);
  EXPECT_EQ(results[0].cell_handoffs, 1U);
  EXPECT_EQ(timeline.count(SessionEventType::kCellHandoff), 1U);

  // The handoff event carries (new cell, old cell) and an in-flight segment.
  bool saw_handoff = false;
  for (const auto& event : timeline.events()) {
    if (event.type != SessionEventType::kCellHandoff) continue;
    saw_handoff = true;
    EXPECT_EQ(event.source, 1U);
    EXPECT_EQ(event.value, 0.0);
    EXPECT_EQ(event.segment, 0U);  // the first download is still in flight
    EXPECT_GE(event.t_s, 5.0);
  }
  EXPECT_TRUE(saw_handoff);

  // The first download spans the hop instant: started before, finished after
  // — its remaining megabits crossed cells instead of restarting.
  ASSERT_EQ(results[0].tasks.size(), manifest.num_segments());
  EXPECT_EQ(results[0].tasks.front().download_start_s, 0.0);
  EXPECT_GT(results[0].tasks.front().download_end_s, 5.0);
  // The fast cell finished it long before the slow cell could have (~11.6 s).
  EXPECT_LT(results[0].tasks.front().download_end_s, 7.0);
}

TEST(CellularTest, ZeroCapacityCellAttachTerminates) {
  const auto manifest = make_manifest(20.0, 2.0);
  const auto session = make_session(20.0, 10.0);
  abr::FixedBitrate fixed(5, "Fixed");
  const auto cap_a = constant_capacity(10.0);
  const auto cap_dead = constant_capacity(0.0);
  const trace::TimeSeries* cells[] = {&cap_a, &cap_dead};
  const CellularLinkModel link(cells);
  const SessionEngine engine(quick_config(30.0));  // short hard stop

  SessionClient client{&manifest, &fixed, &session, 0.0};
  client.home_cell = 1;  // attaches to the dead cell, no route out
  const auto results = engine.run({&client, 1}, link);
  ASSERT_EQ(results.size(), 1U);
  // Nothing ever downloads; the run hits the hard stop instead of hanging.
  EXPECT_TRUE(results[0].tasks.empty());
  EXPECT_GE(results[0].session_end_s, 30.0);
  EXPECT_GE(results[0].startup_delay_s, 30.0);
}

TEST(CellularTest, HandoffOutOfDeadCellResumesDownload) {
  const auto manifest = make_manifest(20.0, 2.0);
  const auto session = make_session(20.0, 10.0);
  abr::FixedBitrate fixed(5, "Fixed");
  const auto cap_dead = constant_capacity(0.0);
  const auto cap_b = constant_capacity(12.0);
  const trace::TimeSeries* cells[] = {&cap_dead, &cap_b};
  const CellularLinkModel link(cells);
  const SessionEngine engine(quick_config());

  SessionClient client{&manifest, &fixed, &session, 0.0};
  const std::vector<CellHop> route = {{5.0, 1}};
  client.route = route;  // starts in the dead cell, escapes at t = 5
  const auto results = engine.run({&client, 1}, link);
  ASSERT_EQ(results.size(), 1U);
  EXPECT_EQ(results[0].cell_handoffs, 1U);
  EXPECT_EQ(results[0].tasks.size(), manifest.num_segments());
  // The first request was issued at t = 0 into the dead cell and only
  // completed after the escape.
  EXPECT_EQ(results[0].tasks.front().download_start_s, 0.0);
  EXPECT_GT(results[0].tasks.front().download_end_s, 5.0);
}

TEST(CellularTest, SimultaneousHandoffsOnOneStepEdge) {
  const auto manifest = make_manifest(30.0, 2.0);
  const auto session = make_session(30.0, 10.0);
  // 5.8 Mbps rungs over 2 Mbps cells: ~5.8 s per download, so both clients
  // are deep in their transfers when the swap hits at t = 8.
  abr::FixedBitrate policy_a(13, "A");
  abr::FixedBitrate policy_b(13, "B");
  const auto cap_a = constant_capacity(2.0);
  const auto cap_b = constant_capacity(2.0);
  const trace::TimeSeries* cells[] = {&cap_a, &cap_b};
  const CellularLinkModel link(cells);
  const SessionEngine engine(quick_config());

  // Both clients swap cells at the same instant (a duplicate-timestamp step
  // edge): client 0 goes 0 -> 1, client 1 goes 1 -> 0.
  SessionClient a{&manifest, &policy_a, &session, 0.0};
  SessionClient b{&manifest, &policy_b, &session, 0.0};
  b.home_cell = 1;
  const std::vector<CellHop> route_a = {{8.0, 1}};
  const std::vector<CellHop> route_b = {{8.0, 0}};
  a.route = route_a;
  b.route = route_b;
  const std::vector<SessionClient> clients = {a, b};

  SessionTimeline timeline;
  const auto results = engine.run(clients, link, &timeline);
  ASSERT_EQ(results.size(), 2U);
  EXPECT_EQ(results[0].cell_handoffs, 1U);
  EXPECT_EQ(results[1].cell_handoffs, 1U);
  EXPECT_EQ(timeline.count(SessionEventType::kCellHandoff), 2U);
  // Both complete; symmetric setup gives symmetric outcomes.
  EXPECT_EQ(results[0].tasks.size(), manifest.num_segments());
  EXPECT_EQ(results[1].tasks.size(), manifest.num_segments());
  EXPECT_EQ(results[0].session_end_s, results[1].session_end_s);
  // Handoffs land in client index order on the same edge.
  std::vector<std::size_t> handoff_clients;
  for (const auto& event : timeline.events()) {
    if (event.type == SessionEventType::kCellHandoff) {
      handoff_clients.push_back(event.client);
    }
  }
  ASSERT_EQ(handoff_clients.size(), 2U);
  EXPECT_EQ(handoff_clients[0], 0U);
  EXPECT_EQ(handoff_clients[1], 1U);
}

TEST(CellularTest, SelfHopIsNoOp) {
  const auto manifest = make_manifest(20.0, 2.0);
  const auto session = make_session(20.0, 10.0);
  abr::FixedBitrate with_hop(5, "A");
  abr::FixedBitrate without_hop(5, "B");
  const auto cap_a = constant_capacity(10.0);
  const auto cap_b = constant_capacity(10.0);
  const trace::TimeSeries* cells[] = {&cap_a, &cap_b};
  const CellularLinkModel link(cells);
  const SessionEngine engine(quick_config());

  SessionClient hopper{&manifest, &with_hop, &session, 0.0};
  const std::vector<CellHop> route = {{6.0, 0}};  // hop to the current cell
  hopper.route = route;
  SessionClient stayer{&manifest, &without_hop, &session, 0.0};

  const auto a = engine.run({&hopper, 1}, link);
  const auto b = engine.run({&stayer, 1}, link);
  EXPECT_EQ(a[0].cell_handoffs, 0U);
  ASSERT_EQ(a[0].tasks.size(), b[0].tasks.size());
  EXPECT_EQ(a[0].session_end_s, b[0].session_end_s);
  for (std::size_t t = 0; t < a[0].tasks.size(); ++t) {
    EXPECT_EQ(a[0].tasks[t].download_end_s, b[0].tasks[t].download_end_s);
  }
}

TEST(CellularTest, HandoffIntoDormantCellWakesIt) {
  // Client 1 finishes quickly in cell 1 (fat pipe, short video), parking the
  // cell; client 0 then hops in from cell 0 and must still be served.
  const auto long_manifest = make_manifest(40.0, 2.0);
  const auto short_manifest = make_manifest(8.0, 2.0);
  const auto session = make_session(40.0, 10.0);
  // Mover: 3.6 Mbps rungs over a 6 Mbps cell = ~1.2 s per download, so its
  // 20 segments keep it busy past the t = 20 hop.
  abr::FixedBitrate policy_a(11, "A");
  abr::FixedBitrate policy_b(3, "B");
  const auto cap_a = constant_capacity(6.0);
  const auto cap_b = constant_capacity(30.0);
  const trace::TimeSeries* cells[] = {&cap_a, &cap_b};
  const CellularLinkModel link(cells);
  const SessionEngine engine(quick_config());

  SessionClient mover{&long_manifest, &policy_a, &session, 0.0};
  const std::vector<CellHop> route = {{20.0, 1}};
  mover.route = route;
  SessionClient resident{&short_manifest, &policy_b, &session, 0.0};
  resident.home_cell = 1;
  const std::vector<SessionClient> clients = {mover, resident};

  const auto results = engine.run(clients, link);
  ASSERT_EQ(results.size(), 2U);
  EXPECT_EQ(results[1].tasks.size(), short_manifest.num_segments());
  // The resident finished long before t = 20 on a 30 Mbps cell; the mover
  // still gets every segment after waking the parked cell.
  EXPECT_LT(results[1].tasks.back().download_end_s, 20.0);
  EXPECT_EQ(results[0].cell_handoffs, 1U);
  EXPECT_EQ(results[0].tasks.size(), long_manifest.num_segments());
}

TEST(CellularTest, TwoCellsOutperformOneUnderLoad) {
  // Four clients on one 8 Mbps bottleneck vs. the same clients split across
  // two 8 Mbps cells: the split fleet must finish no later in aggregate.
  const auto manifest = make_manifest(30.0, 2.0);
  const auto session = make_session(30.0, 8.0);
  const auto capacity = constant_capacity(8.0);
  const SessionEngine engine(quick_config());

  std::vector<abr::FixedBitrate> one_cell;
  std::vector<abr::FixedBitrate> two_cell;
  one_cell.reserve(4);
  two_cell.reserve(4);
  for (std::size_t c = 0; c < 4; ++c) {
    one_cell.emplace_back(5, "F");
    two_cell.emplace_back(5, "F");
  }
  std::vector<SessionClient> crowded;
  std::vector<SessionClient> split;
  for (std::size_t c = 0; c < 4; ++c) {
    crowded.push_back({&manifest, &one_cell[c], &session, 0.0});
    SessionClient client{&manifest, &two_cell[c], &session, 0.0};
    client.home_cell = c % 2;
    split.push_back(client);
  }
  const trace::TimeSeries* one[] = {&capacity};
  const trace::TimeSeries* two[] = {&capacity, &capacity};
  const auto a = engine.run(crowded, CellularLinkModel(one));
  const auto b = engine.run(split, CellularLinkModel(two));
  double crowded_end = 0.0;
  double split_end = 0.0;
  for (std::size_t c = 0; c < 4; ++c) {
    crowded_end = std::max(crowded_end, a[c].tasks.back().download_end_s);
    split_end = std::max(split_end, b[c].tasks.back().download_end_s);
  }
  EXPECT_LE(split_end, crowded_end);
  EXPECT_GT(crowded_end, split_end * 1.5);  // the split is a real speedup
}

}  // namespace
}  // namespace eacs::player
