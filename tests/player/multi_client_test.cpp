#include "eacs/player/multi_client.h"

#include <gtest/gtest.h>

#include "eacs/abr/festive.h"
#include "eacs/abr/fixed.h"
#include "../test_helpers.h"

namespace eacs::player {
namespace {

using eacs::testing::make_manifest;
using eacs::testing::make_session;

trace::TimeSeries constant_capacity(double mbps, double duration = 2000.0) {
  trace::TimeSeries series;
  series.append(0.0, mbps);
  series.append(duration, mbps);
  return series;
}

TEST(JainFairnessTest, Extremes) {
  EXPECT_DOUBLE_EQ(jain_fairness(std::vector<double>{}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness(std::vector<double>{3.0, 3.0, 3.0}), 1.0);
  // One client hogging everything among n: J = 1/n.
  EXPECT_NEAR(jain_fairness(std::vector<double>{6.0, 0.0, 0.0}), 1.0 / 3.0, 1e-12);
  const double mixed = jain_fairness(std::vector<double>{4.0, 2.0});
  EXPECT_GT(mixed, 0.5);
  EXPECT_LT(mixed, 1.0);
}

TEST(MultiClientTest, InvalidInputsThrow) {
  EXPECT_THROW(MultiClientSimulator(trace::TimeSeries{}), std::invalid_argument);
  MultiClientConfig config;
  config.step_s = 0.0;
  EXPECT_THROW(MultiClientSimulator(constant_capacity(10.0), config),
               std::invalid_argument);
  MultiClientSimulator simulator(constant_capacity(10.0));
  std::vector<ClientSetup> bad = {{nullptr, nullptr, nullptr, 0.0}};
  EXPECT_THROW(simulator.run(bad), std::invalid_argument);
}

TEST(MultiClientTest, SingleClientMatchesSinglePlayerApproximately) {
  const auto manifest = make_manifest(60.0, 2.0);
  const auto session = make_session(60.0, 12.0);
  abr::FixedBitrate fixed(7, "Mid");

  const PlayerSimulator single(manifest);
  const auto single_result = single.run(fixed, session);

  MultiClientSimulator multi(constant_capacity(12.0));
  std::vector<ClientSetup> clients = {{&manifest, &fixed, &session, 0.0}};
  const auto multi_results = multi.run(clients);
  ASSERT_EQ(multi_results.size(), 1U);
  const auto& multi_result = multi_results[0];

  ASSERT_EQ(multi_result.tasks.size(), single_result.tasks.size());
  EXPECT_NEAR(multi_result.mean_bitrate_mbps(), single_result.mean_bitrate_mbps(),
              1e-9);
  EXPECT_NEAR(multi_result.total_rebuffer_s, single_result.total_rebuffer_s, 0.5);
  EXPECT_NEAR(multi_result.tasks.back().download_end_s,
              single_result.tasks.back().download_end_s, 2.0);
  // Same ladder decisions => byte-identical downloads, and the stepped
  // integration may only shift timings by the step granularity.
  EXPECT_DOUBLE_EQ(multi_result.total_downloaded_mb(),
                   single_result.total_downloaded_mb());
  EXPECT_NEAR(multi_result.startup_delay_s, single_result.startup_delay_s, 0.5);
  EXPECT_NEAR(multi_result.session_end_s, single_result.session_end_s, 2.0);
}

TEST(MultiClientTest, EqualClientsShareFairly) {
  const auto manifest = make_manifest(60.0, 2.0);
  const auto session = make_session(60.0, 24.0);
  abr::Festive a;
  abr::Festive b;
  abr::Festive c;
  MultiClientSimulator simulator(constant_capacity(24.0));
  std::vector<ClientSetup> clients = {{&manifest, &a, &session, 0.0},
                                      {&manifest, &b, &session, 0.0},
                                      {&manifest, &c, &session, 0.0}};
  const auto results = simulator.run(clients);
  ASSERT_EQ(results.size(), 3U);
  std::vector<double> bitrates;
  for (const auto& result : results) bitrates.push_back(result.mean_bitrate_mbps());
  EXPECT_GT(jain_fairness(bitrates), 0.95);
  // Shared 24 Mbps across 3 clients: each sees roughly 8; FESTIVE should
  // settle clearly below the solo rate.
  for (double bitrate : bitrates) {
    EXPECT_LT(bitrate, 7.0);
    EXPECT_GT(bitrate, 1.0);
  }
}

TEST(MultiClientTest, MoreClientsMeanLowerBitrates) {
  // Long video so FESTIVE's one-level-per-segment ramp-up is amortised and
  // the steady-state difference dominates: solo ~5.8 Mbps on a 20 Mbps
  // link, four-way sharing ~5 Mbps each -> FESTIVE settles at 4.3.
  const auto manifest = make_manifest(240.0, 2.0);
  const auto session = make_session(240.0, 20.0);
  MultiClientSimulator simulator(constant_capacity(20.0));

  abr::Festive solo_policy;
  std::vector<ClientSetup> solo = {{&manifest, &solo_policy, &session, 0.0}};
  const auto solo_results = simulator.run(solo);

  abr::Festive p1;
  abr::Festive p2;
  abr::Festive p3;
  abr::Festive p4;
  std::vector<ClientSetup> four = {{&manifest, &p1, &session, 0.0},
                                   {&manifest, &p2, &session, 0.0},
                                   {&manifest, &p3, &session, 0.0},
                                   {&manifest, &p4, &session, 0.0}};
  const auto four_results = simulator.run(four);

  double four_mean = 0.0;
  for (const auto& result : four_results) four_mean += result.mean_bitrate_mbps();
  four_mean /= 4.0;
  EXPECT_LT(four_mean, 0.85 * solo_results[0].mean_bitrate_mbps());
}

TEST(MultiClientTest, LateJoinerStartsLater) {
  const auto manifest = make_manifest(40.0, 2.0);
  const auto session = make_session(40.0, 20.0);
  abr::FixedBitrate early(3, "Early");
  abr::FixedBitrate late(3, "Late");
  MultiClientSimulator simulator(constant_capacity(20.0));
  std::vector<ClientSetup> clients = {{&manifest, &early, &session, 0.0},
                                      {&manifest, &late, &session, 30.0}};
  const auto results = simulator.run(clients);
  EXPECT_LT(results[0].tasks.front().download_start_s, 1.0);
  EXPECT_GE(results[1].tasks.front().download_start_s, 30.0);
  EXPECT_GT(results[1].startup_delay_s, results[0].startup_delay_s + 25.0);
}

TEST(MultiClientTest, TightLinkCausesStallsForGreedyClients) {
  const auto manifest = make_manifest(60.0, 2.0);
  const auto session = make_session(60.0, 6.0);
  abr::FixedBitrate a;  // 5.8 Mbps each over a 6 Mbps shared link
  abr::FixedBitrate b;
  MultiClientSimulator simulator(constant_capacity(6.0));
  std::vector<ClientSetup> clients = {{&manifest, &a, &session, 0.0},
                                      {&manifest, &b, &session, 0.0}};
  const auto results = simulator.run(clients);
  EXPECT_GT(results[0].total_rebuffer_s + results[1].total_rebuffer_s, 10.0);
}

TEST(MultiClientTest, StaggeredJoinersNeverDownloadBeforeTheirJoinTime) {
  const auto manifest = make_manifest(40.0, 2.0);
  const auto session = make_session(40.0, 30.0);
  abr::FixedBitrate p1(3, "A");
  abr::FixedBitrate p2(3, "B");
  abr::FixedBitrate p3(3, "C");
  MultiClientSimulator simulator(constant_capacity(30.0));
  const std::vector<double> joins = {0.0, 7.5, 21.0};
  std::vector<ClientSetup> clients = {{&manifest, &p1, &session, joins[0]},
                                      {&manifest, &p2, &session, joins[1]},
                                      {&manifest, &p3, &session, joins[2]}};
  const auto results = simulator.run(clients);
  ASSERT_EQ(results.size(), 3U);
  const double step = simulator.config().step_s;
  for (std::size_t c = 0; c < results.size(); ++c) {
    ASSERT_EQ(results[c].tasks.size(), manifest.num_segments());
    // First request lands on the first integration step at/after the join.
    EXPECT_GE(results[c].tasks.front().download_start_s, joins[c]);
    EXPECT_LT(results[c].tasks.front().download_start_s, joins[c] + 2.0 * step);
    // Startup order follows join order.
    if (c > 0) {
      EXPECT_GT(results[c].startup_delay_s, results[c - 1].startup_delay_s);
    }
  }
}

TEST(MultiClientTest, MaxSessionHardStopTruncatesTheRun) {
  const auto manifest = make_manifest(120.0, 2.0);
  const auto session = make_session(120.0, 0.5);
  abr::FixedBitrate greedy(13, "Top");  // far more than the link can carry
  MultiClientConfig config;
  config.max_session_s = 30.0;
  MultiClientSimulator simulator(constant_capacity(0.5), config);
  std::vector<ClientSetup> clients = {{&manifest, &greedy, &session, 0.0}};
  const auto results = simulator.run(clients);
  ASSERT_EQ(results.size(), 1U);
  // The run stops at the hard stop with the video unfinished: no task can
  // end after the stop, and the session ends at stop + residual buffer.
  EXPECT_LT(results[0].tasks.size(), manifest.num_segments());
  for (const auto& task : results[0].tasks) {
    EXPECT_LE(task.download_end_s, config.max_session_s + config.step_s);
  }
  EXPECT_GE(results[0].session_end_s, config.max_session_s);
  EXPECT_LT(results[0].session_end_s,
            config.max_session_s + config.step_s + manifest.num_segments() * 2.0);
}

TEST(MultiClientTest, MaxSessionHardStopPinsStartupForSilentClients) {
  // A client that never accumulates the startup buffer before the hard stop
  // reports the stop time as its startup delay (nothing ever played).
  const auto manifest = make_manifest(60.0, 2.0);
  const auto session = make_session(60.0, 0.1);
  abr::FixedBitrate greedy(13, "Top");
  MultiClientConfig config;
  config.max_session_s = 5.0;
  MultiClientSimulator simulator(constant_capacity(0.1), config);
  std::vector<ClientSetup> clients = {{&manifest, &greedy, &session, 0.0}};
  const auto results = simulator.run(clients);
  ASSERT_EQ(results.size(), 1U);
  EXPECT_TRUE(results[0].tasks.empty());
  EXPECT_GE(results[0].startup_delay_s, config.max_session_s);
  EXPECT_EQ(results[0].total_rebuffer_s, 0.0);
}

TEST(MultiClientTest, EveryClientDownloadsEverySegment) {
  const auto manifest = make_manifest(30.0, 2.0);
  const auto session = make_session(30.0, 15.0);
  abr::Festive p1;
  abr::Festive p2;
  MultiClientSimulator simulator(constant_capacity(15.0));
  std::vector<ClientSetup> clients = {{&manifest, &p1, &session, 0.0},
                                      {&manifest, &p2, &session, 0.0}};
  for (const auto& result : simulator.run(clients)) {
    ASSERT_EQ(result.tasks.size(), manifest.num_segments());
    for (std::size_t i = 0; i < result.tasks.size(); ++i) {
      EXPECT_EQ(result.tasks[i].segment_index, i);
    }
  }
}

}  // namespace
}  // namespace eacs::player
