// SessionInvariantChecker: every engine run — solo, fault-injected,
// sensor-fault-injected, stepped multi-client — must satisfy the physical
// invariants, and attaching the checker must never perturb a result.

#include "eacs/player/session_invariants.h"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "eacs/abr/bba.h"
#include "eacs/abr/festive.h"
#include "eacs/abr/fixed.h"
#include "eacs/net/fault_injector.h"
#include "eacs/player/player.h"
#include "eacs/player/session_engine.h"
#include "eacs/sensors/sensor_faults.h"
#include "eacs/trace/session.h"
#include "../test_helpers.h"

namespace eacs::player {
namespace {

using eacs::testing::make_manifest;
using eacs::testing::make_session;

SessionEvent clock_event(SessionEventType type, double t_s, std::size_t client,
                         double buffer_s = 5.0) {
  SessionEvent event;
  event.type = type;
  event.t_s = t_s;
  event.client = client;
  event.buffer_s = buffer_s;
  return event;
}

/// Feeds the canonical minimal prelude: session start + client startup.
void feed_prelude(SessionInvariantChecker& checker) {
  checker.on_event(clock_event(SessionEventType::kSessionStart, 0.0, kNoIndex, 0.0));
  checker.on_event(clock_event(SessionEventType::kStartup, 1.0, 0, 5.0));
}

TEST(SessionInvariantCheckerTest, CleanSoloRunSatisfiesAllInvariants) {
  const auto manifest = make_manifest(60.0, 2.0);
  const auto session = make_session(60.0, 8.0);
  const PlayerSimulator simulator(manifest);
  abr::Bba policy(5.0, 30.0);
  SessionInvariantChecker checker(simulator.config(),
                                  manifest.ladder().size());
  const auto result = simulator.run(policy, session, &checker);
  EXPECT_TRUE(checker.ok()) << checker.violations().front();
  EXPECT_GT(checker.events_seen(), 0U);
  EXPECT_TRUE(SessionInvariantChecker::check_result(
                  result, manifest.ladder().size())
                  .empty());
}

TEST(SessionInvariantCheckerTest, CheckerAttachmentDoesNotPerturbTheResult) {
  const auto manifest = make_manifest(60.0, 2.0);
  const auto session = make_session(60.0, 8.0);
  const PlayerSimulator simulator(manifest);

  abr::Festive bare_policy;
  const auto bare = simulator.run(bare_policy, session);

  abr::Festive checked_policy;
  SessionInvariantChecker checker(simulator.config(),
                                  manifest.ladder().size());
  const auto checked = simulator.run(checked_policy, session, &checker);

  ASSERT_EQ(bare.tasks.size(), checked.tasks.size());
  EXPECT_EQ(bare.startup_delay_s, checked.startup_delay_s);
  EXPECT_EQ(bare.total_rebuffer_s, checked.total_rebuffer_s);
  EXPECT_EQ(bare.session_end_s, checked.session_end_s);
  for (std::size_t i = 0; i < bare.tasks.size(); ++i) {
    EXPECT_EQ(bare.tasks[i].level, checked.tasks[i].level);
    EXPECT_EQ(bare.tasks[i].download_end_s, checked.tasks[i].download_end_s);
  }
}

TEST(SessionInvariantCheckerTest, FaultInjectedRunSatisfiesAllInvariants) {
  const auto manifest = make_manifest(120.0, 2.0);
  const auto session = make_session(120.0, 8.0);
  net::FaultSpec spec;
  spec.outages.push_back({20.0, 35.0});
  spec.failure_prob = 0.15;
  const net::FaultInjector faults(session.throughput_mbps, spec);
  const PlayerSimulator simulator(manifest);
  abr::Bba policy(5.0, 30.0);
  SessionInvariantChecker checker(simulator.config(),
                                  manifest.ladder().size());
  const auto result = simulator.run(policy, session, faults, &checker);
  EXPECT_TRUE(checker.ok()) << checker.violations().front();
  EXPECT_TRUE(SessionInvariantChecker::check_result(
                  result, manifest.ladder().size())
                  .empty());
}

TEST(SessionInvariantCheckerTest, SensorFaultRunSatisfiesAllInvariants) {
  const auto manifest = make_manifest(60.0, 2.0);
  const auto session = make_session(60.0, 8.0, -85.0, 3.0);
  sensors::SensorFaultSpec spec;
  spec.accel_episode_rate_per_min = 4.0;
  spec.signal_dropout_rate_per_min = 2.0;
  const sensors::SensorFaultInjector injector(
      session.accel, trace::signal_samples(session.signal_dbm), spec);
  const PlayerSimulator simulator(manifest);
  abr::Bba policy(5.0, 30.0);
  SessionInvariantChecker checker(simulator.config(),
                                  manifest.ladder().size());
  const auto result = simulator.run(policy, session, injector, &checker);
  EXPECT_TRUE(checker.ok()) << checker.violations().front();
  EXPECT_TRUE(SessionInvariantChecker::check_result(
                  result, manifest.ladder().size())
                  .empty());
}

TEST(SessionInvariantCheckerTest, SteppedMultiClientRunSatisfiesAllInvariants) {
  const auto manifest = make_manifest(40.0, 2.0);
  const auto session = make_session(40.0, 10.0);
  abr::FixedBitrate a(3, "A");
  abr::Bba b(5.0, 30.0);
  std::vector<SessionClient> clients = {{&manifest, &a, &session, 0.0},
                                        {&manifest, &b, &session, 5.0}};
  const SharedLinkModel link(session.throughput_mbps);
  const SessionEngine engine{SessionEngineConfig{}};
  SessionInvariantChecker checker(SessionEngineConfig{}.player,
                                  manifest.ladder().size());
  const auto results = engine.run(clients, link, &checker);
  EXPECT_TRUE(checker.ok()) << checker.violations().front();
  for (const auto& result : results) {
    EXPECT_TRUE(SessionInvariantChecker::check_result(
                    result, manifest.ladder().size())
                    .empty());
  }
}

// -- Violation detection on hand-crafted event streams --

SessionInvariantConfig lenient() {
  SessionInvariantConfig config;
  config.throw_on_violation = false;
  return config;
}

TEST(SessionInvariantCheckerTest, DetectsNonFiniteFields) {
  SessionInvariantChecker checker(lenient());
  feed_prelude(checker);
  auto event = clock_event(SessionEventType::kDownloadComplete, 2.0, 0);
  event.value = std::numeric_limits<double>::quiet_NaN();
  checker.on_event(event);
  ASSERT_FALSE(checker.ok());
  EXPECT_NE(checker.violations().front().find("non-finite"), std::string::npos);
}

TEST(SessionInvariantCheckerTest, DetectsBufferOutsideBounds) {
  SessionInvariantChecker checker(lenient());
  feed_prelude(checker);
  checker.on_event(clock_event(SessionEventType::kDownloadComplete, 2.0, 0,
                               /*buffer_s=*/100.0));
  ASSERT_FALSE(checker.ok());
  EXPECT_NE(checker.violations().front().find("buffer outside"),
            std::string::npos);
}

TEST(SessionInvariantCheckerTest, DetectsBackwardsClientClock) {
  SessionInvariantChecker checker(lenient());
  feed_prelude(checker);
  checker.on_event(clock_event(SessionEventType::kRequestIssued, 10.0, 0));
  checker.on_event(clock_event(SessionEventType::kRequestIssued, 9.0, 0));
  ASSERT_FALSE(checker.ok());
  EXPECT_NE(checker.violations().front().find("clock moved backwards"),
            std::string::npos);
}

TEST(SessionInvariantCheckerTest, BackStampedDrainIsNotAClockViolation) {
  SessionInvariantChecker checker(lenient());
  feed_prelude(checker);
  checker.on_event(clock_event(SessionEventType::kDownloadComplete, 10.0, 0));
  // Drains are emitted after the completion but stamped at the span start.
  checker.on_event(clock_event(SessionEventType::kBufferDrain, 8.0, 0));
  EXPECT_TRUE(checker.ok());
}

TEST(SessionInvariantCheckerTest, DetectsLevelOutsideLadder) {
  auto config = lenient();
  config.num_levels = 5;
  SessionInvariantChecker checker(config);
  feed_prelude(checker);
  auto event = clock_event(SessionEventType::kRequestIssued, 2.0, 0);
  event.level = 5;
  checker.on_event(event);
  ASSERT_FALSE(checker.ok());
  EXPECT_NE(checker.violations().front().find("ladder"), std::string::npos);
}

TEST(SessionInvariantCheckerTest, DetectsDuplicateStartupAndEarlyDrain) {
  SessionInvariantChecker checker(lenient());
  checker.on_event(clock_event(SessionEventType::kSessionStart, 0.0, kNoIndex, 0.0));
  checker.on_event(clock_event(SessionEventType::kBufferDrain, 0.5, 0));
  checker.on_event(clock_event(SessionEventType::kStartup, 1.0, 0));
  checker.on_event(clock_event(SessionEventType::kStartup, 2.0, 0));
  ASSERT_EQ(checker.violations().size(), 2U);
  EXPECT_NE(checker.violations()[0].find("before startup"), std::string::npos);
  EXPECT_NE(checker.violations()[1].find("duplicate startup"), std::string::npos);
}

TEST(SessionInvariantCheckerTest, DetectsStallWithNonEmptyBuffer) {
  SessionInvariantChecker checker(lenient());
  feed_prelude(checker);
  checker.on_event(clock_event(SessionEventType::kStall, 2.0, 0, /*buffer_s=*/3.0));
  ASSERT_FALSE(checker.ok());
  EXPECT_NE(checker.violations().front().find("non-empty buffer"),
            std::string::npos);
}

TEST(SessionInvariantCheckerTest, DetectsSessionBookkeepingViolations) {
  SessionInvariantChecker checker(lenient());
  checker.on_event(clock_event(SessionEventType::kRequestIssued, 0.0, 0));
  EXPECT_FALSE(checker.ok());  // event before session_start
  checker.reset();
  EXPECT_TRUE(checker.ok());
  checker.on_event(clock_event(SessionEventType::kSessionStart, 0.0, kNoIndex, 0.0));
  checker.on_event(clock_event(SessionEventType::kSessionStart, 0.0, kNoIndex, 0.0));
  EXPECT_FALSE(checker.ok());  // duplicate session_start
}

TEST(SessionInvariantCheckerTest, ThrowsOnViolationByDefault) {
  SessionInvariantChecker checker;
  feed_prelude(checker);
  EXPECT_THROW(checker.on_event(clock_event(SessionEventType::kStall, 2.0, 0,
                                            /*buffer_s=*/3.0)),
               std::logic_error);
}

TEST(SessionInvariantCheckerTest, CheckResultFlagsCorruptedResults) {
  PlaybackResult result;
  result.startup_delay_s = 1.0;
  result.session_end_s = 0.5;  // ends before startup
  TaskRecord task;
  task.segment_index = 0;
  task.duration_s = 2.0;
  task.download_start_s = 5.0;
  task.download_end_s = 4.0;  // ends before it starts
  task.vibration = std::numeric_limits<double>::infinity();
  result.tasks.push_back(task);
  const auto violations = SessionInvariantChecker::check_result(result, 14);
  EXPECT_GE(violations.size(), 3U);
}

}  // namespace
}  // namespace eacs::player
