#include "eacs/player/session_engine.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "eacs/abr/bba.h"
#include "eacs/abr/festive.h"
#include "eacs/abr/fixed.h"
#include "eacs/net/fault_injector.h"
#include "eacs/player/multi_client.h"
#include "eacs/player/player.h"
#include "../test_helpers.h"

namespace eacs::player {
namespace {

using eacs::testing::make_manifest;
using eacs::testing::make_session;

net::FaultSpec outage_spec() {
  net::FaultSpec spec;
  spec.outages.push_back({20.0, 40.0});
  return spec;
}

/// First index of an event of `type`, or npos.
std::size_t first_index(const SessionTimeline& timeline, SessionEventType type) {
  const auto& events = timeline.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].type == type) return i;
  }
  return kNoIndex;
}

TEST(SessionEngineTest, ConfigValidation) {
  SessionEngineConfig bad;
  bad.player.buffer_threshold_s = 0.0;
  EXPECT_THROW(SessionEngine{bad}, std::invalid_argument);
  bad = SessionEngineConfig{};
  bad.player.startup_buffer_s = bad.player.buffer_threshold_s + 1.0;
  EXPECT_THROW(SessionEngine{bad}, std::invalid_argument);
  bad = SessionEngineConfig{};
  bad.step_s = 0.0;
  EXPECT_THROW(SessionEngine{bad}, std::invalid_argument);
  EXPECT_NO_THROW(SessionEngine{SessionEngineConfig{}});
}

TEST(SessionEngineTest, AnalyticLinksTakeExactlyOneClient) {
  const auto manifest = make_manifest(20.0, 2.0);
  const auto session = make_session(20.0, 10.0);
  abr::FixedBitrate a(3, "A");
  abr::FixedBitrate b(3, "B");
  const SoloLinkModel link(session.throughput_mbps);
  const SessionEngine engine{SessionEngineConfig{}};
  std::vector<SessionClient> two = {{&manifest, &a, &session, 0.0},
                                    {&manifest, &b, &session, 0.0}};
  EXPECT_THROW(engine.run(two, link), std::invalid_argument);
  std::vector<SessionClient> null_client = {{nullptr, &a, &session, 0.0}};
  EXPECT_THROW(engine.run(null_client, link), std::invalid_argument);
}

TEST(SessionEngineTest, WrongModeLinkCallsThrow) {
  const auto session = make_session(20.0, 10.0);
  const SoloLinkModel solo(session.throughput_mbps);
  EXPECT_THROW(solo.capacity_at(0.0), std::logic_error);
  const SharedLinkModel shared(session.throughput_mbps);
  EXPECT_THROW(shared.attempt(0, 0, 0.0, 1.0), std::logic_error);
  EXPECT_THROW(shared.rescue(0.0, 1.0), std::logic_error);
  EXPECT_THROW(shared.megabits_over(0.0, 1.0), std::logic_error);
  EXPECT_THROW(SharedLinkModel{trace::TimeSeries{}}, std::invalid_argument);
}

TEST(SessionEngineTest, ObserverNeverPerturbsTheResult) {
  const auto manifest = make_manifest(60.0, 2.0);
  const auto session = make_session(60.0, 8.0);
  const PlayerSimulator simulator(manifest);

  abr::Festive bare_policy;
  const auto bare = simulator.run(bare_policy, session);

  abr::Festive observed_policy;
  SessionTimeline timeline;
  const auto observed = simulator.run(observed_policy, session, &timeline);

  ASSERT_EQ(bare.tasks.size(), observed.tasks.size());
  EXPECT_EQ(bare.startup_delay_s, observed.startup_delay_s);
  EXPECT_EQ(bare.total_rebuffer_s, observed.total_rebuffer_s);
  EXPECT_EQ(bare.session_end_s, observed.session_end_s);
  EXPECT_EQ(bare.switch_count, observed.switch_count);
  for (std::size_t i = 0; i < bare.tasks.size(); ++i) {
    EXPECT_EQ(bare.tasks[i].level, observed.tasks[i].level);
    EXPECT_EQ(bare.tasks[i].download_end_s, observed.tasks[i].download_end_s);
    EXPECT_EQ(bare.tasks[i].throughput_mbps, observed.tasks[i].throughput_mbps);
  }
  EXPECT_FALSE(timeline.events().empty());
}

TEST(SessionEngineTest, FaultFreeEventOrdering) {
  const auto manifest = make_manifest(60.0, 2.0);
  const auto session = make_session(60.0, 8.0);
  const PlayerSimulator simulator(manifest);
  abr::Bba policy(5.0, 30.0);
  SessionTimeline timeline;
  const auto result = simulator.run(policy, session, &timeline);

  const auto& events = timeline.events();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().type, SessionEventType::kSessionStart);
  EXPECT_EQ(events.back().type, SessionEventType::kSessionEnd);

  // No drain (or stall) event before startup: playback cannot consume the
  // buffer before it begins.
  const std::size_t startup = first_index(timeline, SessionEventType::kStartup);
  ASSERT_NE(startup, kNoIndex);
  const std::size_t first_drain =
      first_index(timeline, SessionEventType::kBufferDrain);
  if (first_drain != kNoIndex) {
    EXPECT_GT(first_drain, startup);
  }
  const std::size_t first_stall = first_index(timeline, SessionEventType::kStall);
  if (first_stall != kNoIndex) {
    EXPECT_GT(first_stall, startup);
  }

  // Deadline / failure / backoff / fault events exist only on fault runs.
  EXPECT_EQ(timeline.count(SessionEventType::kAttemptDeadline), 0U);
  EXPECT_EQ(timeline.count(SessionEventType::kAttemptFailure), 0U);
  EXPECT_EQ(timeline.count(SessionEventType::kBackoffExpiry), 0U);
  EXPECT_EQ(timeline.count(SessionEventType::kFaultTransition), 0U);

  // One request and one completion per segment.
  EXPECT_EQ(timeline.count(SessionEventType::kRequestIssued),
            manifest.num_segments());
  EXPECT_EQ(timeline.count(SessionEventType::kDownloadComplete),
            manifest.num_segments());
  EXPECT_EQ(result.tasks.size(), manifest.num_segments());
}

TEST(SessionEngineTest, FaultRunEmitsDeadlineAndTransitionEvents) {
  const auto manifest = make_manifest(120.0, 2.0);
  const auto session = make_session(120.0, 8.0);
  const PlayerSimulator simulator(manifest);
  net::FaultInjector faults(session.throughput_mbps, outage_spec(),
                            &session.signal_dbm);
  abr::FixedBitrate policy(7, "Mid");
  SessionTimeline timeline;
  const auto result = simulator.run(policy, session, faults, &timeline);

  // A 20 s outage against a 15 s deadline must produce deadline aborts,
  // retries with backoff, and two fault transitions (enter + leave).
  EXPECT_GT(result.total_retries, 0U);
  EXPECT_GT(timeline.count(SessionEventType::kAttemptDeadline), 0U);
  EXPECT_GT(timeline.count(SessionEventType::kBackoffExpiry), 0U);
  EXPECT_EQ(timeline.count(SessionEventType::kFaultTransition), 2U);

  // Transitions carry the outage boundaries and enter/leave markers.
  double enter = -1.0;
  double leave = -1.0;
  for (const auto& event : timeline.events()) {
    if (event.type != SessionEventType::kFaultTransition) continue;
    if (event.value > 0.5) {
      enter = event.t_s;
    } else {
      leave = event.t_s;
    }
  }
  EXPECT_DOUBLE_EQ(enter, 20.0);
  EXPECT_DOUBLE_EQ(leave, 40.0);

  // Every deadline event lands exactly attempt_deadline_s after its request.
  const double deadline_s = simulator.config().resilience.attempt_deadline_s;
  const auto& events = timeline.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].type != SessionEventType::kAttemptDeadline) continue;
    // Find the matching request (same segment + attempt, most recent).
    double request_t = -1.0;
    for (std::size_t j = 0; j < i; ++j) {
      if (events[j].type == SessionEventType::kRequestIssued &&
          events[j].segment == events[i].segment &&
          events[j].attempt == events[i].attempt) {
        request_t = events[j].t_s;
      }
    }
    ASSERT_GE(request_t, 0.0);
    EXPECT_NEAR(events[i].t_s - request_t, deadline_s, 1e-9);
  }
}

TEST(SessionEngineTest, InactiveInjectorMatchesFaultFreeBitForBit) {
  const auto manifest = make_manifest(60.0, 2.0);
  const auto session = make_session(60.0, 10.0);
  const PlayerSimulator simulator(manifest);
  net::FaultInjector inactive(session.throughput_mbps, net::FaultSpec{});

  abr::Festive a;
  abr::Festive b;
  const auto plain = simulator.run(a, session);
  const auto injected = simulator.run(b, session, inactive);
  ASSERT_EQ(plain.tasks.size(), injected.tasks.size());
  EXPECT_EQ(plain.session_end_s, injected.session_end_s);
  EXPECT_EQ(plain.total_rebuffer_s, injected.total_rebuffer_s);
  for (std::size_t i = 0; i < plain.tasks.size(); ++i) {
    EXPECT_EQ(plain.tasks[i].level, injected.tasks[i].level);
    EXPECT_EQ(plain.tasks[i].download_end_s, injected.tasks[i].download_end_s);
  }
}

TEST(SessionEngineTest, SteppedTimelineOrderingAndJoins) {
  const auto manifest = make_manifest(40.0, 2.0);
  const auto session = make_session(40.0, 20.0);
  // Level 13 (5.8 Mbps) segments take ~0.6 s on the 20 Mbps link, so every
  // download spans several 50 ms steps and emits progress events.
  abr::FixedBitrate early(13, "Early");
  abr::FixedBitrate late(13, "Late");
  MultiClientSimulator simulator(session.throughput_mbps);
  std::vector<ClientSetup> clients = {{&manifest, &early, &session, 0.0},
                                      {&manifest, &late, &session, 12.0}};
  SessionTimeline timeline;
  const auto results = simulator.run(clients, &timeline);
  ASSERT_EQ(results.size(), 2U);

  // One join per client, at (or on the step after) its join time.
  EXPECT_EQ(timeline.count(SessionEventType::kClientJoin), 2U);
  double join0 = -1.0;
  double join1 = -1.0;
  for (const auto& event : timeline.events()) {
    if (event.type != SessionEventType::kClientJoin) continue;
    if (event.client == 0) join0 = event.t_s;
    if (event.client == 1) join1 = event.t_s;
  }
  EXPECT_DOUBLE_EQ(join0, 0.0);
  EXPECT_GE(join1, 12.0);
  EXPECT_LT(join1, 12.0 + 2.0 * simulator.config().step_s);

  // Per-client: no stall event before that client's startup event, and the
  // first request never precedes the join.
  for (std::size_t c = 0; c < 2; ++c) {
    bool started = false;
    bool joined = false;
    for (const auto& event : timeline.events()) {
      if (event.client != c) continue;
      if (event.type == SessionEventType::kClientJoin) joined = true;
      if (event.type == SessionEventType::kStartup) started = true;
      if (event.type == SessionEventType::kRequestIssued) {
        EXPECT_TRUE(joined);
      }
      if (event.type == SessionEventType::kStall) {
        EXPECT_TRUE(started);
      }
    }
  }
  // Stepped runs emit progress events for multi-step downloads.
  EXPECT_GT(timeline.count(SessionEventType::kDownloadProgress), 0U);
}

TEST(SessionTimelineTest, CsvAndJsonRoundTrip) {
  const auto manifest = make_manifest(20.0, 2.0);
  const auto session = make_session(20.0, 10.0);
  const PlayerSimulator simulator(manifest);
  abr::FixedBitrate policy(3, "Fixed");
  SessionTimeline timeline;
  simulator.run(policy, session, &timeline);
  ASSERT_FALSE(timeline.events().empty());

  // CSV: header + one line per event; event names match to_string().
  std::ostringstream csv;
  timeline.write_csv(csv);
  std::istringstream csv_in(csv.str());
  std::string line;
  ASSERT_TRUE(std::getline(csv_in, line));
  EXPECT_EQ(line, "t_s,client,event,segment,attempt,level,source,buffer_s,value");
  std::size_t rows = 0;
  while (std::getline(csv_in, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, timeline.events().size());
  EXPECT_NE(csv.str().find("session_start"), std::string::npos);
  EXPECT_NE(csv.str().find("download_complete"), std::string::npos);
  EXPECT_NE(csv.str().find("session_end"), std::string::npos);

  // JSON: structurally balanced, one object per event.
  std::ostringstream json;
  timeline.write_json(json);
  const std::string text = json.str();
  std::size_t objects = 0;
  for (std::size_t pos = text.find("{\"t_s\""); pos != std::string::npos;
       pos = text.find("{\"t_s\"", pos + 1)) {
    ++objects;
  }
  EXPECT_EQ(objects, timeline.events().size());

  // File variants write and reload.
  const auto dir = ::testing::TempDir();
  const std::string csv_path = dir + "session_timeline_test.csv";
  timeline.write_csv(csv_path);
  std::ifstream reloaded(csv_path);
  ASSERT_TRUE(reloaded.good());
  std::getline(reloaded, line);
  EXPECT_EQ(line, "t_s,client,event,segment,attempt,level,source,buffer_s,value");
  std::remove(csv_path.c_str());
}

TEST(SessionTimelineTest, CountAndClear) {
  SessionTimeline timeline;
  SessionEvent event;
  event.type = SessionEventType::kStall;
  timeline.on_event(event);
  timeline.on_event(event);
  event.type = SessionEventType::kStartup;
  timeline.on_event(event);
  EXPECT_EQ(timeline.count(SessionEventType::kStall), 2U);
  EXPECT_EQ(timeline.count(SessionEventType::kStartup), 1U);
  EXPECT_EQ(timeline.count(SessionEventType::kAttemptDeadline), 0U);
  timeline.clear();
  EXPECT_TRUE(timeline.events().empty());
}

TEST(SessionEventTest, ToStringIsStable) {
  EXPECT_STREQ(to_string(SessionEventType::kSessionStart), "session_start");
  EXPECT_STREQ(to_string(SessionEventType::kAttemptDeadline), "attempt_deadline");
  EXPECT_STREQ(to_string(SessionEventType::kFaultTransition), "fault_transition");
  EXPECT_STREQ(to_string(SessionEventType::kSessionEnd), "session_end");
}

}  // namespace
}  // namespace eacs::player
