#include "eacs/player/player.h"

#include <gtest/gtest.h>

#include "eacs/abr/fixed.h"
#include "../test_helpers.h"

namespace eacs::player {
namespace {

using eacs::testing::make_manifest;
using eacs::testing::make_session;
using eacs::testing::make_step_session;

TEST(PlayerSimulatorTest, DownloadsEverySegmentOnce) {
  const auto manifest = make_manifest(60.0, 2.0);
  PlayerSimulator simulator(manifest);
  abr::FixedBitrate policy(0, "Lowest");
  const auto session = make_session(60.0, 20.0);
  const auto result = simulator.run(policy, session);
  ASSERT_EQ(result.tasks.size(), manifest.num_segments());
  for (std::size_t i = 0; i < result.tasks.size(); ++i) {
    EXPECT_EQ(result.tasks[i].segment_index, i);
    EXPECT_EQ(result.tasks[i].level, 0U);
  }
}

TEST(PlayerSimulatorTest, FastNetworkNoRebuffering) {
  PlayerSimulator simulator(make_manifest(120.0, 2.0));
  abr::FixedBitrate policy;  // highest: 5.8 Mbps
  const auto session = make_session(120.0, 40.0);
  const auto result = simulator.run(policy, session);
  EXPECT_DOUBLE_EQ(result.total_rebuffer_s, 0.0);
  EXPECT_EQ(result.rebuffer_events, 0U);
  EXPECT_EQ(result.switch_count, 0U);
}

TEST(PlayerSimulatorTest, SlowNetworkRebuffers) {
  PlayerSimulator simulator(make_manifest(60.0, 2.0));
  abr::FixedBitrate policy;  // 5.8 Mbps over a 3 Mbps link
  const auto session = make_session(60.0, 3.0);
  const auto result = simulator.run(policy, session);
  EXPECT_GT(result.total_rebuffer_s, 10.0);
  EXPECT_GT(result.rebuffer_events, 0U);
}

TEST(PlayerSimulatorTest, SessionEndCoversVideoDuration) {
  // Wall-clock end >= video duration; with ample bandwidth it is close to it.
  PlayerSimulator simulator(make_manifest(60.0, 2.0));
  abr::FixedBitrate policy(0, "Lowest");
  const auto session = make_session(60.0, 50.0);
  const auto result = simulator.run(policy, session);
  EXPECT_GE(result.session_end_s, 60.0 - 1e-6);
  EXPECT_LT(result.session_end_s, 65.0);
}

TEST(PlayerSimulatorTest, StartupDelayReflectsBandwidth) {
  PlayerSimulator fast_sim(make_manifest(60.0, 2.0));
  abr::FixedBitrate policy;  // 5.8 Mbps segments
  const auto fast = fast_sim.run(policy, make_session(60.0, 50.0));
  const auto slow = fast_sim.run(policy, make_session(60.0, 6.0));
  EXPECT_GT(slow.startup_delay_s, fast.startup_delay_s);
  EXPECT_GT(fast.startup_delay_s, 0.0);
}

TEST(PlayerSimulatorTest, BufferThrottleCapsLead) {
  // With a huge pipe the player must not race ahead of the 30 s threshold:
  // every decision sees buffer <= threshold.
  PlayerConfig config;
  config.buffer_threshold_s = 30.0;
  PlayerSimulator simulator(make_manifest(300.0, 2.0), config);
  abr::FixedBitrate policy(0, "Lowest");
  const auto result = simulator.run(policy, make_session(300.0, 100.0));
  for (const auto& task : result.tasks) {
    EXPECT_LE(task.buffer_before_s, 30.0 + 1e-6);
  }
}

TEST(PlayerSimulatorTest, ThroughputRecordedPerTask) {
  PlayerSimulator simulator(make_manifest(30.0, 2.0));
  abr::FixedBitrate policy(5, "Mid");
  const auto result = simulator.run(policy, make_session(30.0, 12.0));
  for (const auto& task : result.tasks) {
    EXPECT_NEAR(task.throughput_mbps, 12.0, 0.5);
    EXPECT_NEAR(task.signal_dbm, -90.0, 0.5);
  }
}

TEST(PlayerSimulatorTest, VibrationVisibleInTasks) {
  PlayerSimulator simulator(make_manifest(60.0, 2.0));
  abr::FixedBitrate policy(0, "Lowest");
  const auto result = simulator.run(policy, make_session(60.0, 20.0, -90.0, 5.0));
  // After the estimator warms up, tasks should see ~5 m/s^2.
  const auto& late_task = result.tasks.back();
  EXPECT_NEAR(late_task.vibration, 5.0, 0.8);
}

TEST(PlayerSimulatorTest, SwitchCountTracksLevelChanges) {
  // A policy that alternates levels every segment.
  class Alternator final : public AbrPolicy {
   public:
    std::string name() const override { return "Alternator"; }
    std::size_t choose_level(const AbrContext& context) override {
      return context.segment_index % 2;
    }
  };
  PlayerSimulator simulator(make_manifest(20.0, 2.0));
  Alternator policy;
  const auto result = simulator.run(policy, make_session(20.0, 30.0));
  EXPECT_EQ(result.switch_count, result.tasks.size() - 1);
}

TEST(PlayerSimulatorTest, MeanBitrateAndDownloadTotals) {
  PlayerSimulator simulator(make_manifest(60.0, 2.0));
  abr::FixedBitrate policy;  // 5.8
  const auto result = simulator.run(policy, make_session(60.0, 40.0));
  EXPECT_NEAR(result.mean_bitrate_mbps(), 5.8, 1e-9);
  EXPECT_NEAR(result.total_downloaded_mb(), 5.8 * 60.0 / 8.0, 1e-6);
}

TEST(PlayerSimulatorTest, ThroughputDropMidSessionCausesStall) {
  PlayerSimulator simulator(make_manifest(120.0, 2.0));
  abr::FixedBitrate policy;  // 5.8 fixed
  // 40 Mbps for 30 s, then 1 Mbps.
  const auto session = make_step_session(120.0, 40.0, 1.0, 30.0);
  const auto result = simulator.run(policy, session);
  EXPECT_GT(result.total_rebuffer_s, 0.0);
  // Stalls only appear after the throughput collapse.
  for (const auto& task : result.tasks) {
    if (task.rebuffer_s > 0.0) {
      EXPECT_GT(task.download_start_s, 25.0);
    }
  }
}

TEST(PlayerSimulatorTest, InvalidConfigThrows) {
  PlayerConfig bad;
  bad.buffer_threshold_s = 0.0;
  EXPECT_THROW(PlayerSimulator(make_manifest(), bad), std::invalid_argument);
  PlayerConfig inverted;
  inverted.startup_buffer_s = 50.0;
  inverted.buffer_threshold_s = 30.0;
  EXPECT_THROW(PlayerSimulator(make_manifest(), inverted), std::invalid_argument);
}

TEST(PlayerSimulatorTest, PolicyLevelClamped) {
  class Insane final : public AbrPolicy {
   public:
    std::string name() const override { return "Insane"; }
    std::size_t choose_level(const AbrContext&) override { return 999; }
  };
  PlayerSimulator simulator(make_manifest(10.0, 2.0));
  Insane policy;
  const auto result = simulator.run(policy, make_session(10.0, 50.0));
  for (const auto& task : result.tasks) EXPECT_EQ(task.level, 13U);
}

TEST(PlayerSimulatorTest, StartupTasksFlagged) {
  PlayerSimulator simulator(make_manifest(60.0, 2.0));
  abr::FixedBitrate policy(0, "Lowest");
  const auto result = simulator.run(policy, make_session(60.0, 20.0));
  EXPECT_TRUE(result.tasks.front().startup);
  EXPECT_FALSE(result.tasks.back().startup);
}

}  // namespace
}  // namespace eacs::player
