#include <gtest/gtest.h>

#include <cmath>

#include "eacs/abr/fixed.h"
#include "eacs/core/objective.h"
#include "eacs/core/online.h"
#include "eacs/player/player.h"
#include "../test_helpers.h"

namespace eacs::player {
namespace {

using eacs::testing::make_manifest;
using eacs::testing::make_session;

/// Records every failure notification the player emits.
class ProbePolicy : public AbrPolicy {
 public:
  explicit ProbePolicy(std::size_t level = 0) : level_(level) {}
  std::string name() const override { return "Probe"; }
  std::size_t choose_level(const AbrContext&) override { return level_; }
  void on_download_failure(const DownloadFailure& failure) override {
    failures.push_back(failure);
  }
  void reset() override { failures.clear(); }

  std::vector<DownloadFailure> failures;

 private:
  std::size_t level_;
};

void expect_identical(const PlaybackResult& a, const PlaybackResult& b) {
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    const auto& x = a.tasks[i];
    const auto& y = b.tasks[i];
    EXPECT_EQ(x.level, y.level);
    EXPECT_EQ(x.size_mb, y.size_mb);
    EXPECT_EQ(x.download_start_s, y.download_start_s);
    EXPECT_EQ(x.download_end_s, y.download_end_s);
    EXPECT_EQ(x.throughput_mbps, y.throughput_mbps);
    EXPECT_EQ(x.signal_dbm, y.signal_dbm);
    EXPECT_EQ(x.rebuffer_s, y.rebuffer_s);
    EXPECT_EQ(x.retries, y.retries);
    EXPECT_EQ(x.abandoned, y.abandoned);
    EXPECT_EQ(x.wasted_mb, y.wasted_mb);
    EXPECT_EQ(x.backoff_s, y.backoff_s);
  }
  EXPECT_EQ(a.startup_delay_s, b.startup_delay_s);
  EXPECT_EQ(a.total_rebuffer_s, b.total_rebuffer_s);
  EXPECT_EQ(a.rebuffer_events, b.rebuffer_events);
  EXPECT_EQ(a.switch_count, b.switch_count);
  EXPECT_EQ(a.session_end_s, b.session_end_s);
  EXPECT_EQ(a.total_retries, b.total_retries);
  EXPECT_EQ(a.abandoned_segments, b.abandoned_segments);
  EXPECT_EQ(a.total_wasted_mb, b.total_wasted_mb);
  EXPECT_EQ(a.total_backoff_s, b.total_backoff_s);
}

TEST(ResilienceTest, InactiveInjectorIsBitIdenticalToPlainRun) {
  const auto manifest = make_manifest(60.0, 2.0);
  const PlayerSimulator simulator(manifest);
  const auto session = make_session(60.0, 12.0);
  const net::FaultInjector faults(session.throughput_mbps, net::FaultSpec{});

  abr::FixedBitrate plain_policy(5, "Mid");
  abr::FixedBitrate faulty_policy(5, "Mid");
  const auto plain = simulator.run(plain_policy, session);
  const auto routed = simulator.run(faulty_policy, session, faults);
  expect_identical(plain, routed);
  EXPECT_EQ(routed.total_retries, 0U);
  EXPECT_EQ(routed.total_wasted_mb, 0.0);
}

TEST(ResilienceTest, PerRequestFailuresRetryWithWasteAccounting) {
  const auto manifest = make_manifest(60.0, 2.0);
  const PlayerSimulator simulator(manifest);
  const auto session = make_session(60.0, 12.0);

  net::FaultSpec spec;
  spec.failure_prob = 0.95;  // nearly every attempt dies mid-transfer
  spec.seed = 11;
  const net::FaultInjector faults(session.throughput_mbps, spec, &session.signal_dbm);

  ProbePolicy policy(5);
  const auto result = simulator.run(policy, session, faults);

  ASSERT_EQ(result.tasks.size(), manifest.num_segments());
  EXPECT_GT(result.total_retries, 0U);
  EXPECT_GT(result.total_wasted_mb, 0.0);
  EXPECT_GT(result.total_backoff_s, 0.0);
  EXPECT_FALSE(policy.failures.empty());
  for (const auto& task : result.tasks) {
    EXPECT_LE(task.retries, simulator.config().resilience.max_retries);
    if (task.retries > 0) {
      EXPECT_GT(task.backoff_s, 0.0);
    }
    if (task.wasted_mb > 0.0) {
      EXPECT_GT(task.wasted_download_s, 0.0);
    }
  }
}

TEST(ResilienceTest, StalledTransfersAbortAtTheDeadline) {
  const auto manifest = make_manifest(30.0, 2.0);
  const PlayerSimulator simulator(manifest);
  const auto session = make_session(30.0, 12.0);

  net::FaultSpec spec;
  spec.stall_prob = 1.0;  // every regular attempt is a slow loris
  spec.stall_rate_mbps = 0.01;
  const net::FaultInjector faults(session.throughput_mbps, spec);

  ProbePolicy policy(3);
  const auto result = simulator.run(policy, session, faults);
  const auto& res = simulator.config().resilience;

  ASSERT_EQ(result.tasks.size(), manifest.num_segments());
  for (const auto& task : result.tasks) {
    // Every pre-rescue attempt stalls and is cut at the deadline; the rescue
    // fetch (attempt == max_retries) bypasses per-request faults.
    EXPECT_EQ(task.retries, res.max_retries);
    EXPECT_GE(task.wasted_download_s,
              static_cast<double>(res.max_retries) * res.attempt_deadline_s - 1e-6);
  }
  EXPECT_EQ(policy.failures.size(),
            manifest.num_segments() * res.max_retries);
}

TEST(ResilienceTest, OutageDegradesToLowestAndRecovers) {
  const auto manifest = make_manifest(60.0, 2.0);
  const PlayerSimulator simulator(manifest);
  const auto session = make_session(60.0, 12.0);

  net::FaultSpec spec;
  spec.outages = {{6.0, 40.0}};  // long dead window early in the session
  const net::FaultInjector faults(session.throughput_mbps, spec);

  ProbePolicy policy(8);
  const auto result = simulator.run(policy, session, faults);

  ASSERT_EQ(result.tasks.size(), manifest.num_segments());
  // At least one segment inside the outage was retried down to the lowest
  // rung even though the policy kept requesting level 8.
  bool degraded = false;
  for (const auto& task : result.tasks) {
    if (task.retries > 0 && task.level == manifest.ladder().lowest_level()) {
      degraded = true;
    }
  }
  EXPECT_TRUE(degraded);
  EXPECT_FALSE(policy.failures.empty());
  bool saw_outage_flag = false;
  for (const auto& f : policy.failures) saw_outage_flag |= f.during_outage;
  EXPECT_TRUE(saw_outage_flag);
  EXPECT_TRUE(std::isfinite(result.session_end_s));
}

TEST(ResilienceTest, OnlineSelectorSuppressesRampUpAfterFailure) {
  // Unit-level check of the replan hook: after on_download_failure the
  // online selector must not pick above prev_level - 1 for the cooldown.
  const qoe::QoeModel qoe_model{};
  const power::PowerModel power_model{};
  core::ObjectiveConfig objective_config;
  const core::Objective objective(qoe_model, power_model, objective_config);
  core::OnlineBitrateSelector selector(objective, {});
  selector.reset();

  const auto manifest = make_manifest(60.0, 2.0);
  net::HarmonicMeanEstimator bandwidth(20);
  for (int i = 0; i < 5; ++i) bandwidth.observe(40.0);  // rich link

  AbrContext context;
  context.segment_index = 10;
  context.num_segments = 30;
  context.buffer_s = 20.0;
  context.startup_phase = false;
  context.prev_level = 6;
  context.manifest = &manifest;
  context.bandwidth = &bandwidth;

  const std::size_t before = selector.choose_level(context);
  selector.on_download_failure({10, 0, 100.0, true});
  const std::size_t after = selector.choose_level(context);
  EXPECT_LE(after, 5U);       // capped one rung below prev_level
  EXPECT_LE(after, before);   // never higher than the unfailed choice

  // Cooldown expires after kFailureCooldownSegments decisions.
  (void)selector.choose_level(context);
  const std::size_t recovered = selector.choose_level(context);
  EXPECT_EQ(recovered, before);
}

}  // namespace
}  // namespace eacs::player
