// Engine-level tests for the multi-source CDN delivery path: the certified
// single-trivial-source no-op, failover away from a dead origin, hedged-race
// event pairing, determinism, and the invariant checker across the full
// cdn-fault x hedge x source-count matrix.

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "eacs/abr/bba.h"
#include "eacs/net/segment_source.h"
#include "eacs/player/player.h"
#include "eacs/player/session_engine.h"
#include "eacs/player/session_invariants.h"
#include "../test_helpers.h"

namespace eacs::player {
namespace {

using eacs::testing::make_manifest;
using eacs::testing::make_session;

// Origin spends [20, 70) dead — long enough to burn a retry ladder and force
// the machinery to either fail over or rebuffer through it.
net::CdnFaultSpec outage_spec() {
  net::CdnFaultSpec spec;
  spec.outages = {{20.0, 70.0}};
  return spec;
}

std::vector<net::SegmentSource> make_sources(
    const trace::SessionTraces& session, std::size_t count,
    const net::CdnFaultSpec& origin_faults) {
  std::vector<net::SegmentSource> sources;
  sources.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    net::CdnSourceConfig config;
    config.name = i == 0 ? "origin" : "edge-" + std::to_string(i);
    config.id = i;
    if (i == 0) {
      config.faults = origin_faults;
    } else {
      // Edges trade a little capacity and RTT for a clean fault record.
      config.throughput_scale = 1.0 - 0.15 * static_cast<double>(i);
      config.base_rtt_s = 0.03 * static_cast<double>(i);
    }
    sources.emplace_back(session.throughput_mbps, config, &session.signal_dbm);
  }
  return sources;
}

void expect_results_bit_identical(const PlaybackResult& a,
                                  const PlaybackResult& b) {
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    EXPECT_EQ(a.tasks[i].level, b.tasks[i].level) << "task " << i;
    EXPECT_EQ(a.tasks[i].download_start_s, b.tasks[i].download_start_s);
    EXPECT_EQ(a.tasks[i].download_end_s, b.tasks[i].download_end_s);
    EXPECT_EQ(a.tasks[i].throughput_mbps, b.tasks[i].throughput_mbps);
    EXPECT_EQ(a.tasks[i].rebuffer_s, b.tasks[i].rebuffer_s);
    EXPECT_EQ(a.tasks[i].retries, b.tasks[i].retries);
    EXPECT_EQ(a.tasks[i].wasted_mb, b.tasks[i].wasted_mb);
    EXPECT_EQ(a.tasks[i].wasted_download_s, b.tasks[i].wasted_download_s);
    EXPECT_EQ(a.tasks[i].backoff_s, b.tasks[i].backoff_s);
    EXPECT_EQ(a.tasks[i].source, b.tasks[i].source);
    EXPECT_EQ(a.tasks[i].hedges, b.tasks[i].hedges);
  }
  EXPECT_EQ(a.startup_delay_s, b.startup_delay_s);
  EXPECT_EQ(a.total_rebuffer_s, b.total_rebuffer_s);
  EXPECT_EQ(a.session_end_s, b.session_end_s);
  EXPECT_EQ(a.total_retries, b.total_retries);
  EXPECT_EQ(a.total_wasted_mb, b.total_wasted_mb);
  EXPECT_EQ(a.total_backoff_s, b.total_backoff_s);
  EXPECT_EQ(a.total_hedges, b.total_hedges);
  EXPECT_EQ(a.total_failovers, b.total_failovers);
  EXPECT_EQ(a.breaker_transitions, b.breaker_transitions);
}

TEST(CdnFailoverTest, SingleTrivialSourceIsBitIdenticalToPlainRun) {
  // The certified no-op: one source with default faults, scale 1, RTT 0 must
  // reproduce the fault-free overload bit-for-bit, field by field.
  const auto session = make_session(60.0, 10.0);
  const PlayerSimulator simulator(make_manifest(60.0, 2.0));

  abr::Bba plain_policy(5.0, simulator.config().buffer_threshold_s);
  const auto plain = simulator.run(plain_policy, session);

  std::vector<net::SegmentSource> sources;
  sources.emplace_back(session.throughput_mbps, net::CdnSourceConfig{},
                       &session.signal_dbm);
  ASSERT_TRUE(sources.front().trivial());
  abr::Bba cdn_policy(5.0, simulator.config().buffer_threshold_s);
  const auto cdn = simulator.run(cdn_policy, session,
                                 std::span<const net::SegmentSource>(sources));

  expect_results_bit_identical(plain, cdn);
  // CDN counters specifically must stay untouched on the no-op path.
  EXPECT_EQ(cdn.total_hedges, 0U);
  EXPECT_EQ(cdn.total_failovers, 0U);
  EXPECT_EQ(cdn.breaker_transitions, 0U);
  for (const auto& task : cdn.tasks) {
    EXPECT_EQ(task.source, 0U);
    EXPECT_EQ(task.hedges, 0U);
  }
}

TEST(CdnFailoverTest, OriginOutageFailsOverAndBeatsRetryOnly) {
  // The headline robustness claim: with a second source available the engine
  // must switch primaries during the origin outage and strictly beat the
  // single-source retry-only run on rebuffering.
  const auto session = make_session(120.0, 8.0);
  const PlayerSimulator simulator(make_manifest(120.0, 2.0));

  const auto solo_sources = make_sources(session, 1, outage_spec());
  abr::Bba solo_policy(5.0, simulator.config().buffer_threshold_s);
  const auto solo = simulator.run(
      solo_policy, session, std::span<const net::SegmentSource>(solo_sources));

  const auto duo_sources = make_sources(session, 2, outage_spec());
  SessionTimeline timeline;
  abr::Bba duo_policy(5.0, simulator.config().buffer_threshold_s);
  const auto duo =
      simulator.run(duo_policy, session,
                    std::span<const net::SegmentSource>(duo_sources), &timeline);

  // The 50 s outage forces the solo run through deadline-abort ladders.
  EXPECT_GT(solo.total_rebuffer_s, 1.0);
  EXPECT_GE(solo.total_retries, 1U);

  // The duo run escapes to the edge: strictly less rebuffering, at least one
  // primary switch, and some segment actually served by source 1.
  EXPECT_LT(duo.total_rebuffer_s, solo.total_rebuffer_s);
  EXPECT_GE(duo.total_failovers, 1U);
  EXPECT_EQ(timeline.count(SessionEventType::kSourceFailover),
            duo.total_failovers);
  bool edge_served = false;
  for (const auto& task : duo.tasks) {
    edge_served = edge_served || task.source == 1;
  }
  EXPECT_TRUE(edge_served);
}

TEST(CdnFailoverTest, HedgedRaceEmitsPairedEvents) {
  // Every hedge issuance resolves: kHedgeIssued and kHedgeComplete pair up
  // and both match the result's total, with the loser's cost priced through
  // the wasted-bytes accounting (finite, never negative).
  const auto session = make_session(120.0, 8.0);
  const PlayerSimulator simulator(make_manifest(120.0, 2.0));

  const auto sources = make_sources(session, 2, outage_spec());
  SessionTimeline timeline;
  abr::Bba policy(5.0, simulator.config().buffer_threshold_s);
  const auto result = simulator.run(
      policy, session, std::span<const net::SegmentSource>(sources), &timeline);

  EXPECT_GE(result.total_hedges, 1U);
  EXPECT_EQ(timeline.count(SessionEventType::kHedgeIssued), result.total_hedges);
  EXPECT_EQ(timeline.count(SessionEventType::kHedgeComplete),
            result.total_hedges);
  std::size_t task_hedges = 0;
  for (const auto& task : result.tasks) {
    task_hedges += task.hedges;
    EXPECT_TRUE(std::isfinite(task.wasted_mb));
    EXPECT_GE(task.wasted_mb, 0.0);
    EXPECT_TRUE(std::isfinite(task.wasted_download_s));
    EXPECT_GE(task.wasted_download_s, 0.0);
  }
  EXPECT_EQ(task_hedges, result.total_hedges);
}

TEST(CdnFailoverTest, DisablingHedgesSuppressesThemEntirely) {
  const auto session = make_session(120.0, 8.0);
  PlayerConfig config;
  config.resilience.hedge_enabled = false;
  const PlayerSimulator simulator(make_manifest(120.0, 2.0), config);

  // Without hedge-loser feedback the breaker only sees deadline aborts, one
  // per attempt_deadline_s — the outage must outlast four of them to trip
  // the breaker's min_samples and force a retry-only failover.
  net::CdnFaultSpec long_outage;
  long_outage.outages = {{20.0, 110.0}};
  const auto sources = make_sources(session, 2, long_outage);
  SessionTimeline timeline;
  abr::Bba policy(5.0, config.buffer_threshold_s);
  const auto result = simulator.run(
      policy, session, std::span<const net::SegmentSource>(sources), &timeline);

  EXPECT_EQ(result.total_hedges, 0U);
  EXPECT_EQ(timeline.count(SessionEventType::kHedgeIssued), 0U);
  EXPECT_EQ(timeline.count(SessionEventType::kHedgeComplete), 0U);
  // Failover (breaker-driven primary switching) still works without hedging.
  EXPECT_GE(result.total_failovers, 1U);
  EXPECT_TRUE(std::isfinite(result.total_rebuffer_s));
}

TEST(CdnFailoverTest, RepeatedRunsAreBitIdentical) {
  const auto session = make_session(120.0, 8.0);
  const PlayerSimulator simulator(make_manifest(120.0, 2.0));
  const auto sources = make_sources(session, 3, outage_spec());

  abr::Bba policy_a(5.0, simulator.config().buffer_threshold_s);
  const auto a = simulator.run(policy_a, session,
                               std::span<const net::SegmentSource>(sources));
  abr::Bba policy_b(5.0, simulator.config().buffer_threshold_s);
  const auto b = simulator.run(policy_b, session,
                               std::span<const net::SegmentSource>(sources));
  expect_results_bit_identical(a, b);
}

TEST(CdnFailoverTest, EmptySourceSpanThrows) {
  const auto session = make_session(20.0, 8.0);
  const PlayerSimulator simulator(make_manifest(20.0, 2.0));
  abr::Bba policy(5.0, simulator.config().buffer_threshold_s);
  EXPECT_THROW(simulator.run(policy, session,
                             std::span<const net::SegmentSource>{}),
               std::invalid_argument);
}

TEST(CdnFailoverTest, InvariantsHoldAcrossFaultHedgeMatrix) {
  // Satellite: the SessionInvariantChecker and the task-level result checks
  // must stay clean across every fault family x hedge setting x source
  // count. Each cell also exercises the breaker-event bookkeeping: timeline
  // breaker transitions match the result counter.
  const auto session = make_session(90.0, 8.0);

  std::vector<std::pair<const char*, net::CdnFaultSpec>> families;
  families.emplace_back("outage", outage_spec());
  {
    net::CdnFaultSpec spec;
    spec.error_rate_per_min = 3.0;
    spec.error_episode_mean_s = 12.0;
    families.emplace_back("error_bursts", spec);
  }
  {
    net::CdnFaultSpec spec;
    spec.truncate_prob = 0.25;
    spec.corrupt_prob = 0.15;
    families.emplace_back("payload", spec);
  }
  {
    net::CdnFaultSpec spec;
    spec.slow_start_prob = 0.6;
    spec.slow_scale = 0.2;
    families.emplace_back("slow_start", spec);
  }
  {
    net::CdnFaultSpec spec = outage_spec();
    spec.error_prob = 0.1;
    spec.truncate_prob = 0.1;
    spec.slow_start_prob = 0.3;
    families.emplace_back("combined", spec);
  }

  for (const auto& [name, spec] : families) {
    for (const bool hedge : {true, false}) {
      for (const std::size_t count : {1U, 2U, 3U}) {
        SCOPED_TRACE(::testing::Message()
                     << name << " hedge=" << hedge << " sources=" << count);
        PlayerConfig config;
        config.resilience.hedge_enabled = hedge;
        const PlayerSimulator simulator(make_manifest(90.0, 2.0), config);
        const auto sources = make_sources(session, count, spec);

        SessionInvariantChecker checker(config,
                                        simulator.manifest().ladder().size());
        SessionTimeline timeline;
        struct Fanout final : SessionObserver {
          SessionObserver* a = nullptr;
          SessionObserver* b = nullptr;
          void on_event(const SessionEvent& event) override {
            a->on_event(event);
            b->on_event(event);
          }
        } fanout;
        fanout.a = &checker;
        fanout.b = &timeline;

        abr::Bba policy(5.0, config.buffer_threshold_s);
        const auto result = simulator.run(
            policy, session, std::span<const net::SegmentSource>(sources),
            &fanout);

        EXPECT_TRUE(checker.ok()) << (checker.violations().empty()
                                          ? ""
                                          : checker.violations().front());
        const auto task_violations = SessionInvariantChecker::check_result(
            result, simulator.manifest().ladder().size());
        EXPECT_TRUE(task_violations.empty())
            << (task_violations.empty() ? "" : task_violations.front());

        EXPECT_EQ(timeline.count(SessionEventType::kBreakerTransition),
                  result.breaker_transitions);
        if (!hedge || count == 1) {
          EXPECT_EQ(result.total_hedges, 0U);
        }
        if (count == 1) {
          EXPECT_EQ(result.total_failovers, 0U);
        }
        EXPECT_TRUE(std::isfinite(result.total_wasted_mb));
        EXPECT_GE(result.total_wasted_mb, 0.0);
        EXPECT_TRUE(std::isfinite(result.session_end_s));
      }
    }
  }
}

TEST(CdnFailoverTest, EventIdentifiersAreStable) {
  EXPECT_STREQ(to_string(SessionEventType::kSourceFailover), "source_failover");
  EXPECT_STREQ(to_string(SessionEventType::kHedgeIssued), "hedge_issued");
  EXPECT_STREQ(to_string(SessionEventType::kHedgeComplete), "hedge_complete");
  EXPECT_STREQ(to_string(SessionEventType::kBreakerTransition),
               "breaker_transition");
}

}  // namespace
}  // namespace eacs::player
