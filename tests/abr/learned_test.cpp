#include "eacs/abr/learned.h"

#include <gtest/gtest.h>

#include "eacs/player/player.h"
#include "../test_helpers.h"

namespace eacs::abr {
namespace {

using eacs::testing::make_manifest;

struct Fixture {
  media::VideoManifest manifest = make_manifest(60.0, 2.0);
  net::HarmonicMeanEstimator estimator{20};

  player::AbrContext context(double buffer_s = 20.0, double vibration = 0.0,
                             double signal = -90.0) {
    player::AbrContext ctx;
    ctx.segment_index = 5;
    ctx.num_segments = manifest.num_segments();
    ctx.buffer_s = buffer_s;
    ctx.prev_level = 7;
    ctx.manifest = &manifest;
    ctx.bandwidth = &estimator;
    ctx.vibration_level = vibration;
    ctx.signal_dbm = signal;
    return ctx;
  }
};

TEST(PolicyFeaturesTest, NormalizedIntoUnitRange) {
  Fixture fixture;
  for (int i = 0; i < 20; ++i) fixture.estimator.observe(55.0);  // above cap
  const auto ctx = const_cast<Fixture&>(fixture).context(45.0, 9.0, -60.0);
  const auto features = PolicyFeatures::extract(ctx);
  EXPECT_DOUBLE_EQ(features[0], 1.0);
  for (double f : features) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
}

TEST(PolicyFeaturesTest, NoPrevLevelIsZeroFeature) {
  Fixture fixture;
  auto ctx = fixture.context();
  ctx.prev_level = std::nullopt;
  EXPECT_DOUBLE_EQ(PolicyFeatures::extract(ctx)[3], 0.0);
}

TEST(LinearPolicyTest, WrongWeightCountThrows) {
  EXPECT_THROW(LinearPolicy(std::vector<double>{1.0, 2.0}), std::invalid_argument);
}

TEST(LinearPolicyTest, LargeNegativeBiasPicksLowest) {
  Fixture fixture;
  LinearPolicy policy({-50.0, 0.0, 0.0, 0.0, 0.0, 0.0});
  EXPECT_EQ(policy.choose_level(fixture.context()), 0U);
}

TEST(LinearPolicyTest, LargePositiveBiasPicksHighest) {
  Fixture fixture;
  LinearPolicy policy({50.0, 0.0, 0.0, 0.0, 0.0, 0.0});
  EXPECT_EQ(policy.choose_level(fixture.context()), 13U);
}

TEST(LinearPolicyTest, ZeroWeightsPickMiddle) {
  Fixture fixture;
  LinearPolicy policy(std::vector<double>(PolicyFeatures::kCount, 0.0));
  // sigmoid(0) = 0.5 -> round(0.5 * 13) = 7 (banker-free llround -> 7).
  EXPECT_EQ(policy.choose_level(fixture.context()), 7U);
}

TEST(LinearPolicyTest, NegativeVibrationWeightReactsToContext) {
  Fixture fixture;
  LinearPolicy policy({0.0, 0.0, 0.0, 0.0, -8.0, 0.0});
  const auto calm = policy.choose_level(fixture.context(20.0, 0.0));
  const auto shaky = policy.choose_level(fixture.context(20.0, 7.0));
  EXPECT_LT(shaky, calm);
}

TEST(LinearPolicyTest, BandwidthWeightTracksEstimate) {
  Fixture fast_fixture;
  for (int i = 0; i < 20; ++i) fast_fixture.estimator.observe(20.0);
  Fixture slow_fixture;
  for (int i = 0; i < 20; ++i) slow_fixture.estimator.observe(1.0);
  LinearPolicy policy({-3.0, 8.0, 0.0, 0.0, 0.0, 0.0});
  EXPECT_GT(policy.choose_level(fast_fixture.context()),
            policy.choose_level(slow_fixture.context()));
}

}  // namespace
}  // namespace eacs::abr
