#include "eacs/abr/mpc.h"

#include <gtest/gtest.h>

#include "eacs/player/player.h"
#include "../test_helpers.h"

namespace eacs::abr {
namespace {

using eacs::testing::make_manifest;
using eacs::testing::make_session;

struct Fixture {
  media::VideoManifest manifest = make_manifest(120.0, 2.0);
  net::HarmonicMeanEstimator estimator{20};

  player::AbrContext context(double buffer_s, std::optional<std::size_t> prev) {
    player::AbrContext ctx;
    ctx.segment_index = 10;
    ctx.num_segments = manifest.num_segments();
    ctx.buffer_s = buffer_s;
    ctx.prev_level = prev;
    ctx.manifest = &manifest;
    ctx.bandwidth = &estimator;
    return ctx;
  }
};

TEST(MpcTest, InvalidConfigThrows) {
  MpcConfig zero_horizon;
  zero_horizon.horizon = 0;
  EXPECT_THROW(Mpc{zero_horizon}, std::invalid_argument);
  MpcConfig bad_discount;
  bad_discount.bandwidth_discount = 0.0;
  EXPECT_THROW(Mpc{bad_discount}, std::invalid_argument);
}

TEST(MpcTest, NoEstimateStartsLowest) {
  Fixture fixture;
  Mpc policy;
  EXPECT_EQ(policy.choose_level(fixture.context(0.0, std::nullopt)), 0U);
}

TEST(MpcTest, AbundantBandwidthGoesHigh) {
  Fixture fixture;
  for (int i = 0; i < 20; ++i) fixture.estimator.observe(50.0);
  Mpc policy;
  EXPECT_GE(policy.choose_level(fixture.context(20.0, 13U)), 12U);
}

TEST(MpcTest, ScarceBandwidthStaysLow) {
  Fixture fixture;
  for (int i = 0; i < 20; ++i) fixture.estimator.observe(1.0);
  Mpc policy;
  // 1 Mbps (discounted to 0.85): the highest sustainable rate is 0.75 Mbps
  // (level 5); anything above stalls inside the horizon.
  EXPECT_LE(policy.choose_level(fixture.context(2.0, std::nullopt)), 5U);
}

TEST(MpcTest, BufferCushionsEnableHigherRates) {
  Fixture fixture;
  for (int i = 0; i < 20; ++i) fixture.estimator.observe(3.0);
  Mpc policy;
  const auto starved = policy.choose_level(fixture.context(1.0, 5U));
  const auto cushioned = policy.choose_level(fixture.context(28.0, 5U));
  EXPECT_GE(cushioned, starved);
}

TEST(MpcTest, SwitchPenaltyDampsOscillation) {
  Fixture fixture;
  for (int i = 0; i < 20; ++i) fixture.estimator.observe(4.0);
  MpcConfig sticky;
  sticky.switch_penalty = 10.0;  // extreme: never leave the previous level
  Mpc policy(sticky);
  EXPECT_EQ(policy.choose_level(fixture.context(20.0, 7U)), 7U);
}

TEST(MpcTest, EndToEndRunBeatsFixedLowOnQoeProxy) {
  const auto manifest = make_manifest(120.0, 2.0);
  player::PlayerSimulator simulator(manifest);
  const auto session = make_session(120.0, 15.0);
  Mpc policy;
  const auto result = simulator.run(policy, session);
  EXPECT_DOUBLE_EQ(result.total_rebuffer_s, 0.0);
  EXPECT_GT(result.mean_bitrate_mbps(), 1.5);
}

TEST(MpcTest, HorizonTruncatesAtStreamEnd) {
  Fixture fixture;
  for (int i = 0; i < 20; ++i) fixture.estimator.observe(10.0);
  Mpc policy;
  auto ctx = fixture.context(20.0, 7U);
  ctx.segment_index = fixture.manifest.num_segments() - 1;  // last segment
  EXPECT_NO_THROW(policy.choose_level(ctx));
}

}  // namespace
}  // namespace eacs::abr
