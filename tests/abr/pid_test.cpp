#include "eacs/abr/pid.h"

#include <gtest/gtest.h>

#include "eacs/player/player.h"
#include "../test_helpers.h"

namespace eacs::abr {
namespace {

using eacs::testing::make_manifest;
using eacs::testing::make_session;

struct Fixture {
  media::VideoManifest manifest = make_manifest(60.0, 2.0);
  net::HarmonicMeanEstimator estimator{20};

  player::AbrContext context(double buffer_s) {
    player::AbrContext ctx;
    ctx.segment_index = 10;
    ctx.num_segments = manifest.num_segments();
    ctx.buffer_s = buffer_s;
    ctx.prev_level = 7;
    ctx.manifest = &manifest;
    ctx.bandwidth = &estimator;
    return ctx;
  }
};

TEST(PidTest, InvalidConfigThrows) {
  PidConfig bad;
  bad.setpoint_s = 0.0;
  EXPECT_THROW(PidController{bad}, std::invalid_argument);
  PidConfig inverted;
  inverted.min_factor = 2.0;
  inverted.max_factor = 1.0;
  EXPECT_THROW(PidController{inverted}, std::invalid_argument);
}

TEST(PidTest, NoEstimateStartsLowest) {
  Fixture fixture;
  PidController policy;
  EXPECT_EQ(policy.choose_level(fixture.context(0.0)), 0U);
  EXPECT_EQ(policy.name(), "PID");
}

TEST(PidTest, BufferAboveSetpointRaisesRate) {
  Fixture fixture;
  for (int i = 0; i < 20; ++i) fixture.estimator.observe(3.0);
  PidController policy;
  const auto starved = policy.choose_level(fixture.context(5.0));
  policy.reset();
  const auto cushioned = policy.choose_level(fixture.context(30.0));
  EXPECT_GT(cushioned, starved);
}

TEST(PidTest, AtSetpointTracksBandwidth) {
  Fixture fixture;
  for (int i = 0; i < 20; ++i) fixture.estimator.observe(3.0);
  PidController policy;
  // Zero error: factor ~1 -> highest rate <= 3.0 is level 10 (3.0).
  EXPECT_EQ(policy.choose_level(fixture.context(20.0)), 10U);
}

TEST(PidTest, IntegralWindupIsBounded) {
  Fixture fixture;
  for (int i = 0; i < 20; ++i) fixture.estimator.observe(10.0);
  PidController policy;
  // Hammer the controller with a persistently empty buffer, then recover:
  // the clamped integral must not pin the output at the floor forever.
  for (int i = 0; i < 200; ++i) (void)policy.choose_level(fixture.context(0.5));
  std::size_t recovered = 0;
  for (int i = 0; i < 200; ++i) {
    recovered = policy.choose_level(fixture.context(30.0));
  }
  EXPECT_GE(recovered, 8U);
}

TEST(PidTest, ResetClearsState) {
  Fixture fixture;
  for (int i = 0; i < 20; ++i) fixture.estimator.observe(5.0);
  PidController policy;
  for (int i = 0; i < 50; ++i) (void)policy.choose_level(fixture.context(35.0));
  policy.reset();
  PidController fresh;
  EXPECT_EQ(policy.choose_level(fixture.context(20.0)),
            fresh.choose_level(fixture.context(20.0)));
}

TEST(PidTest, StabilisesOnConstantNetwork) {
  player::PlayerSimulator simulator(make_manifest(240.0, 2.0));
  PidController policy;
  const auto result = simulator.run(policy, make_session(240.0, 8.0));
  EXPECT_DOUBLE_EQ(result.total_rebuffer_s, 0.0);
  // Settles: few switches in the second half.
  std::size_t late_switches = 0;
  for (std::size_t i = result.tasks.size() / 2 + 1; i < result.tasks.size(); ++i) {
    if (result.tasks[i].level != result.tasks[i - 1].level) ++late_switches;
  }
  EXPECT_LT(late_switches, result.tasks.size() / 8);
}

}  // namespace
}  // namespace eacs::abr
