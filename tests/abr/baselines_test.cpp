#include <gtest/gtest.h>

#include "eacs/abr/bba.h"
#include "eacs/abr/bola.h"
#include "eacs/abr/festive.h"
#include "eacs/abr/fixed.h"
#include "eacs/player/player.h"
#include "../test_helpers.h"

namespace eacs::abr {
namespace {

using eacs::testing::make_manifest;
using eacs::testing::make_session;

/// Builds an AbrContext against a manifest with a primed estimator.
struct ContextFixture {
  media::VideoManifest manifest = make_manifest(60.0, 2.0);
  net::HarmonicMeanEstimator estimator{20};

  player::AbrContext context(double buffer_s, std::optional<std::size_t> prev,
                             bool startup = false) {
    player::AbrContext ctx;
    ctx.segment_index = 5;
    ctx.num_segments = manifest.num_segments();
    ctx.buffer_s = buffer_s;
    ctx.startup_phase = startup;
    ctx.prev_level = prev;
    ctx.manifest = &manifest;
    ctx.bandwidth = &estimator;
    return ctx;
  }
};

TEST(FixedBitrateTest, DefaultsToHighest) {
  ContextFixture fixture;
  FixedBitrate policy;
  EXPECT_EQ(policy.choose_level(fixture.context(10.0, std::nullopt)), 13U);
  EXPECT_EQ(policy.name(), "Youtube");
}

TEST(FixedBitrateTest, ExplicitLevelClamped) {
  ContextFixture fixture;
  FixedBitrate mid(7, "Mid");
  EXPECT_EQ(mid.choose_level(fixture.context(10.0, std::nullopt)), 7U);
  FixedBitrate big(400, "Big");
  EXPECT_EQ(big.choose_level(fixture.context(10.0, std::nullopt)), 13U);
}

TEST(FestiveTest, NoEstimateStartsLowest) {
  ContextFixture fixture;
  Festive policy;
  EXPECT_EQ(policy.choose_level(fixture.context(0.0, std::nullopt, true)), 0U);
}

TEST(FestiveTest, PicksHighestStrictlyBelowEstimate) {
  ContextFixture fixture;
  for (int i = 0; i < 20; ++i) fixture.estimator.observe(3.0);
  Festive policy(false);  // no ramp, the paper's simplified rule
  // Highest rate strictly below 3.0 is 2.56 (level 9).
  EXPECT_EQ(policy.choose_level(fixture.context(10.0, std::nullopt)), 9U);
}

TEST(FestiveTest, GradualRampLimitsUpSteps) {
  ContextFixture fixture;
  for (int i = 0; i < 20; ++i) fixture.estimator.observe(50.0);
  Festive policy(true);
  EXPECT_EQ(policy.choose_level(fixture.context(10.0, 2U)), 3U);
}

TEST(FestiveTest, DownSwitchIsImmediate) {
  ContextFixture fixture;
  for (int i = 0; i < 20; ++i) fixture.estimator.observe(0.5);
  Festive policy(true);
  // Highest below 0.5 is 0.375 (level 3); drop from 10 directly.
  EXPECT_EQ(policy.choose_level(fixture.context(10.0, 10U)), 3U);
}

TEST(FestiveTest, EstimateBelowLadderFallsToLowest) {
  ContextFixture fixture;
  for (int i = 0; i < 20; ++i) fixture.estimator.observe(0.05);
  Festive policy;
  EXPECT_EQ(policy.choose_level(fixture.context(10.0, 5U)), 0U);
}

TEST(BbaTest, StartupUsesThroughput) {
  ContextFixture fixture;
  for (int i = 0; i < 5; ++i) fixture.estimator.observe(2.3);
  Bba policy(5.0, 30.0);
  // Startup: highest not above 2.3 = level 8 (2.3 itself).
  EXPECT_EQ(policy.choose_level(fixture.context(3.0, std::nullopt, true)), 8U);
}

TEST(BbaTest, SteadyStateMapsBufferLinearly) {
  ContextFixture fixture;
  Bba policy(5.0, 30.0);
  // Reach steady state by showing it a full buffer once.
  (void)policy.choose_level(fixture.context(30.0, 13U));
  EXPECT_EQ(policy.choose_level(fixture.context(4.0, 13U)), 0U);    // < reservoir
  EXPECT_EQ(policy.choose_level(fixture.context(30.0, 13U)), 13U);  // >= cushion
  const auto mid = policy.choose_level(fixture.context(17.5, 13U));
  EXPECT_GT(mid, 4U);
  EXPECT_LT(mid, 10U);
}

TEST(BbaTest, AggressiveAtFullBuffer) {
  // The paper's observation: BBA requests the highest bitrate once the
  // buffer exceeds the upper threshold, whatever the throughput is.
  ContextFixture fixture;
  for (int i = 0; i < 20; ++i) fixture.estimator.observe(1.0);  // slow link!
  Bba policy(5.0, 30.0);
  (void)policy.choose_level(fixture.context(30.0, 0U));
  EXPECT_EQ(policy.choose_level(fixture.context(30.0, 0U)), 13U);
}

TEST(BbaTest, ResetReturnsToStartupPhase) {
  ContextFixture fixture;
  for (int i = 0; i < 5; ++i) fixture.estimator.observe(1.0);
  Bba policy(5.0, 30.0);
  (void)policy.choose_level(fixture.context(30.0, 13U));  // now steady
  policy.reset();
  // Back to throughput-driven: buffer 30 would give 13 in steady state, but
  // startup maps from the 1.0 Mbps estimate instead.
  EXPECT_LT(policy.choose_level(fixture.context(3.0, std::nullopt, true)), 13U);
}

TEST(BbaTest, InvalidParamsThrow) {
  EXPECT_THROW(Bba(0.0, 30.0), std::invalid_argument);
  EXPECT_THROW(Bba(10.0, 5.0), std::invalid_argument);
}

TEST(BolaTest, EmptyStateStartsLowest) {
  ContextFixture fixture;
  Bola policy;
  EXPECT_EQ(policy.choose_level(fixture.context(0.0, std::nullopt, true)), 0U);
}

TEST(BolaTest, BitrateGrowsWithBuffer) {
  ContextFixture fixture;
  fixture.estimator.observe(10.0);
  Bola policy(5.0, 30.0);
  const auto low = policy.choose_level(fixture.context(2.0, 0U));
  const auto mid = policy.choose_level(fixture.context(15.0, 0U));
  const auto high = policy.choose_level(fixture.context(30.0, 0U));
  EXPECT_LE(low, mid);
  EXPECT_LE(mid, high);
  EXPECT_GT(high, low);
}

TEST(BolaTest, FullBufferReachesTopLevel) {
  ContextFixture fixture;
  fixture.estimator.observe(10.0);
  Bola policy(5.0, 30.0);
  EXPECT_EQ(policy.choose_level(fixture.context(30.0, 13U)), 13U);
}

TEST(BolaTest, InvalidGammaThrows) {
  EXPECT_THROW(Bola(0.0), std::invalid_argument);
}

TEST(BaselineEnergyOrderingTest, BbaDownloadsMoreThanFestiveOnSlowLink) {
  // The paper's Fig. 5 narrative: BBA is more aggressive than FESTIVE once
  // its buffer fills, so it downloads more bytes on the same link.
  const auto manifest = make_manifest(300.0, 2.0);
  player::PlayerSimulator simulator(manifest);
  const auto session = make_session(300.0, 4.0);
  Festive festive;
  Bba bba(5.0, 30.0);
  const auto festive_result = simulator.run(festive, session);
  const auto bba_result = simulator.run(bba, session);
  EXPECT_GT(bba_result.total_downloaded_mb(), festive_result.total_downloaded_mb());
}

}  // namespace
}  // namespace eacs::abr
