// Stress suite: movie-length streams through the full pipeline. These guard
// algorithmic complexity (the planner is O(N*M^2), the player O(N)) as much
// as correctness at scale.

#include <gtest/gtest.h>

#include "eacs/core/online.h"
#include "eacs/core/optimal.h"
#include "eacs/sim/metrics.h"
#include "../test_helpers.h"

namespace eacs {
namespace {

TEST(StressTest, TwoHourMovieThroughPlayerAndPlanner) {
  // 7200 s = 3600 segments on the 14-rate ladder.
  constexpr double kMovie = 7200.0;
  const media::VideoManifest manifest("movie", kMovie, 2.0,
                                      media::BitrateLadder::evaluation14(),
                                      media::VbrModel{0.15});
  ASSERT_EQ(manifest.num_segments(), 3600U);
  const auto session = eacs::testing::make_session(kMovie, 12.0, -100.0, 5.0);

  core::Objective objective(qoe::QoeModel{}, power::PowerModel{},
                            core::ObjectiveConfig{});
  core::OnlineBitrateSelector online(objective, {.startup_level = 3});
  const player::PlayerSimulator simulator(manifest);
  const auto playback = simulator.run(online, session);
  ASSERT_EQ(playback.tasks.size(), 3600U);
  EXPECT_DOUBLE_EQ(playback.total_rebuffer_s, 0.0);

  const auto metrics = sim::compute_metrics("Ours", 0, playback, manifest,
                                            qoe::QoeModel{}, power::PowerModel{});
  EXPECT_GT(metrics.total_energy_j, 0.0);
  EXPECT_GE(metrics.mean_qoe, 1.0);

  // Oracle planning at movie scale: both planner variants agree.
  const auto tasks = core::build_task_environments(manifest, session);
  core::OptimalPlanner planner(objective);
  const auto dp = planner.plan(tasks, core::PlannerMethod::kDagDp);
  const auto dijkstra = planner.plan(tasks, core::PlannerMethod::kDijkstra);
  ASSERT_EQ(dp.levels.size(), 3600U);
  EXPECT_NEAR(dp.total_cost, dijkstra.total_cost, 1e-5);
}

TEST(StressTest, ManySmallSegments) {
  // 0.5 s segments: 4x the task count for the same duration.
  const media::VideoManifest manifest("fine", 600.0, 0.5,
                                      media::BitrateLadder::evaluation14());
  ASSERT_EQ(manifest.num_segments(), 1200U);
  const auto session = eacs::testing::make_session(600.0, 15.0);
  core::Objective objective(qoe::QoeModel{}, power::PowerModel{},
                            core::ObjectiveConfig{});
  core::OnlineBitrateSelector online(objective, {.startup_level = 3});
  const player::PlayerSimulator simulator(manifest);
  const auto playback = simulator.run(online, session);
  ASSERT_EQ(playback.tasks.size(), 1200U);
  // Conservation invariant still holds at this granularity.
  double duration = 0.0;
  for (const auto& task : playback.tasks) duration += task.duration_s;
  EXPECT_NEAR(playback.session_end_s,
              playback.startup_delay_s + duration + playback.total_rebuffer_s, 1e-6);
}

TEST(StressTest, LongAccelStreamThroughEstimator) {
  // 2 hours of 50 Hz accelerometer data = 360k samples; the estimator is
  // O(1) per sample.
  trace::AccelGenerator generator(trace::AccelModel::moving_vehicle(), 99);
  const auto trace = generator.generate(7200.0);
  ASSERT_GT(trace.size(), 350000U);
  const double level = sensors::mean_vibration_level(trace);
  EXPECT_GT(level, 0.5);
  EXPECT_LT(level, 10.0);
}

}  // namespace
}  // namespace eacs
