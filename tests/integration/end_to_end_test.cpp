// Integration suite: whole-system paths crossing module boundaries.

#include <gtest/gtest.h>

#include "eacs/core/online.h"
#include "eacs/media/mpd.h"
#include "eacs/qoe/subjective_study.h"
#include "eacs/sim/evaluation.h"
#include "eacs/sim/metrics.h"
#include "eacs/trace/scenario.h"
#include "eacs/trace/trace_io.h"

namespace eacs {
namespace {

TEST(EndToEndTest, MpdRoundTripDrivesIdenticalPlayback) {
  // manifest -> MPD XML -> parsed manifest: the player must behave
  // identically against both descriptions.
  const auto session = trace::build_session(media::evaluation_sessions()[0]);
  const media::VideoManifest original("trace1", session.spec.length_s, 2.0,
                                      media::BitrateLadder::evaluation14(),
                                      media::VbrModel{0.15});
  const auto parsed = media::from_mpd_xml(media::to_mpd_xml(original));

  core::Objective objective(qoe::QoeModel{}, power::PowerModel{},
                            core::ObjectiveConfig{});
  core::OnlineBitrateSelector policy_a(objective, {.startup_level = 3});
  core::OnlineBitrateSelector policy_b(objective, {.startup_level = 3});

  const auto result_a = player::PlayerSimulator(original).run(policy_a, session);
  const auto result_b = player::PlayerSimulator(parsed).run(policy_b, session);
  ASSERT_EQ(result_a.tasks.size(), result_b.tasks.size());
  for (std::size_t i = 0; i < result_a.tasks.size(); ++i) {
    EXPECT_EQ(result_a.tasks[i].level, result_b.tasks[i].level) << "segment " << i;
    EXPECT_NEAR(result_a.tasks[i].download_end_s, result_b.tasks[i].download_end_s,
                1e-9);
  }
}

TEST(EndToEndTest, CsvRoundTrippedSessionReplaysIdentically) {
  // Persist all three traces to CSV, reload, and verify the playback run is
  // bit-identical — proving recorded real traces can replace the generators.
  const auto session = trace::build_session(media::evaluation_sessions()[1]);
  trace::SessionTraces reloaded;
  reloaded.spec = session.spec;
  reloaded.signal_dbm =
      trace::time_series_from_csv(trace::time_series_to_csv(session.signal_dbm));
  reloaded.throughput_mbps =
      trace::time_series_from_csv(trace::time_series_to_csv(session.throughput_mbps));
  reloaded.accel = trace::accel_from_csv(trace::accel_to_csv(session.accel));

  const media::VideoManifest manifest("trace2", session.spec.length_s, 2.0,
                                      media::BitrateLadder::evaluation14());
  core::Objective objective(qoe::QoeModel{}, power::PowerModel{},
                            core::ObjectiveConfig{});
  core::OnlineBitrateSelector policy_a(objective, {.startup_level = 3});
  core::OnlineBitrateSelector policy_b(objective, {.startup_level = 3});
  const player::PlayerSimulator simulator(manifest);
  const auto result_a = simulator.run(policy_a, session);
  const auto result_b = simulator.run(policy_b, reloaded);
  ASSERT_EQ(result_a.tasks.size(), result_b.tasks.size());
  for (std::size_t i = 0; i < result_a.tasks.size(); ++i) {
    EXPECT_EQ(result_a.tasks[i].level, result_b.tasks[i].level);
    EXPECT_DOUBLE_EQ(result_a.tasks[i].download_end_s,
                     result_b.tasks[i].download_end_s);
  }
}

TEST(EndToEndTest, FittedModelsCloseTheLoop) {
  // The paper's full pipeline: run the subjective study against the ground
  // truth, fit the QoE model from the noisy ratings, then drive the whole
  // evaluation with the *fitted* model. The headline result (Ours saves
  // substantial energy vs. YouTube at small QoE cost) must survive the
  // model-identification noise.
  qoe::StudyConfig study_config;
  qoe::SubjectiveStudy study(study_config, qoe::QoeModel{});
  const auto fit = qoe::fit_qoe_model_from_ratings(study.run());

  sim::EvaluationConfig config;
  config.qoe = fit.params;  // fitted, not ground truth
  const sim::Evaluation evaluation(config);
  // Two sessions keep the test fast; the full five run in the bench.
  const auto sessions = trace::build_all_sessions();
  const std::vector<trace::SessionTraces> subset = {sessions[0], sessions[1]};
  const auto result = evaluation.run(subset);

  EXPECT_GT(result.mean_energy_saving("Ours"), 0.10);
  EXPECT_LT(result.mean_qoe_degradation("Ours"), 0.10);
}

TEST(EndToEndTest, ScenarioSessionThroughFullEvaluation) {
  // A scenario-built multi-context session flows through the standard
  // evaluation machinery like any Table V session.
  trace::ScenarioBuilder builder(42);
  builder.add_phase(trace::ScenarioPhase::home(60.0))
      .add_phase(trace::ScenarioPhase::bus(120.0));
  auto session = builder.build();
  session.spec.id = 7;

  const sim::Evaluation evaluation;
  const auto result = evaluation.run({session});
  EXPECT_EQ(result.rows.size(), 5U);
  EXPECT_LE(result.row("Ours", 7).total_energy_j,
            result.row("Youtube", 7).total_energy_j);
}

TEST(EndToEndTest, RrcAccountingConsistentWithPerByte) {
  // RRC-aware totals exceed per-byte totals by exactly the radio overhead
  // components (tails, idle floor, promotions).
  const auto session = trace::build_session(media::evaluation_sessions()[0]);
  const media::VideoManifest manifest("trace1", session.spec.length_s, 2.0,
                                      media::BitrateLadder::evaluation14());
  const player::PlayerSimulator simulator(manifest);
  core::Objective objective(qoe::QoeModel{}, power::PowerModel{},
                            core::ObjectiveConfig{});
  core::OnlineBitrateSelector policy(objective, {.startup_level = 3});
  const auto playback = simulator.run(policy, session);

  const power::PowerModel power_model;
  const power::RrcSimulator rrc{power::RrcConfig{}};
  const auto rrc_energy = sim::session_energy_rrc(playback, power_model, rrc);
  const double per_byte_total = sim::session_energy_j(playback, power_model);

  EXPECT_NEAR(rrc_energy.data_j + rrc_energy.playback_j, per_byte_total, 1e-6);
  EXPECT_GT(rrc_energy.tail_j, 0.0);
  EXPECT_GE(rrc_energy.promotions, 1U);
  EXPECT_NEAR(rrc_energy.total_j(),
              per_byte_total + rrc_energy.tail_j + rrc_energy.idle_j +
                  rrc_energy.promotion_j,
              1e-6);
}

}  // namespace
}  // namespace eacs
