#include "eacs/trace/markov_bandwidth.h"

#include <gtest/gtest.h>

#include <set>

#include "eacs/util/stats.h"

namespace eacs::trace {
namespace {

TEST(MarkovModelTest, PresetsValidate) {
  EXPECT_NO_THROW(MarkovBandwidthModel::lte_vehicle().validate());
  EXPECT_NO_THROW(MarkovBandwidthModel::lte_indoor().validate());
}

TEST(MarkovModelTest, BadModelsRejected) {
  MarkovBandwidthModel empty;
  EXPECT_THROW(empty.validate(), std::invalid_argument);

  auto bad_row = MarkovBandwidthModel::lte_indoor();
  bad_row.transitions[0] = {0.5, 0.4, 0.2};  // sums to 1.1
  EXPECT_THROW(bad_row.validate(), std::invalid_argument);

  auto ragged = MarkovBandwidthModel::lte_indoor();
  ragged.transitions[1] = {1.0};
  EXPECT_THROW(ragged.validate(), std::invalid_argument);

  auto bad_state = MarkovBandwidthModel::lte_indoor();
  bad_state.states[0].mean_sojourn_s = 0.0;
  EXPECT_THROW(MarkovBandwidthGenerator(bad_state, 1), std::invalid_argument);
}

TEST(MarkovGeneratorTest, DeterministicPerSeed) {
  MarkovBandwidthGenerator a(MarkovBandwidthModel::lte_vehicle(), 7);
  MarkovBandwidthGenerator b(MarkovBandwidthModel::lte_vehicle(), 7);
  const auto ta = a.generate(300.0);
  const auto tb = b.generate(300.0);
  ASSERT_EQ(ta.throughput_mbps.size(), tb.throughput_mbps.size());
  EXPECT_DOUBLE_EQ(ta.throughput_mbps.at(100).value, tb.throughput_mbps.at(100).value);
  EXPECT_EQ(ta.state_sequence, tb.state_sequence);
}

TEST(MarkovGeneratorTest, VisitsMultipleStates) {
  MarkovBandwidthGenerator generator(MarkovBandwidthModel::lte_vehicle(), 11);
  const auto traces = generator.generate(1200.0, 0.5, 2);
  std::set<std::size_t> visited(traces.state_sequence.begin(),
                                traces.state_sequence.end());
  EXPECT_GE(visited.size(), 4U);  // a long vehicle ride sees most states
}

TEST(MarkovGeneratorTest, RatesTrackStateMeans) {
  const auto model = MarkovBandwidthModel::lte_vehicle();
  MarkovBandwidthGenerator generator(model, 13);
  const auto traces = generator.generate(2400.0, 0.5, 1);
  // Within each visited state, the mean rate is near the state mean.
  for (std::size_t state = 0; state < model.states.size(); ++state) {
    std::vector<double> rates;
    for (std::size_t i = 0; i < traces.state_sequence.size(); ++i) {
      if (traces.state_sequence[i] == state) {
        rates.push_back(traces.throughput_mbps.at(i).value);
      }
    }
    if (rates.size() < 50) continue;
    EXPECT_NEAR(mean(rates) / model.states[state].mean_mbps, 1.0, 0.25)
        << model.states[state].name;
  }
}

TEST(MarkovGeneratorTest, SignalAlignedWithStates) {
  const auto model = MarkovBandwidthModel::lte_vehicle();
  MarkovBandwidthGenerator generator(model, 17);
  const auto traces = generator.generate(600.0, 0.5, 0);
  for (std::size_t i = 0; i < traces.state_sequence.size(); i += 37) {
    const auto& state = model.states[traces.state_sequence[i]];
    EXPECT_NEAR(traces.signal_dbm.at(i).value, state.signal_dbm, 5.0);
  }
}

TEST(MarkovGeneratorTest, IndoorStrongerThanVehicle) {
  MarkovBandwidthGenerator indoor(MarkovBandwidthModel::lte_indoor(), 19);
  MarkovBandwidthGenerator vehicle(MarkovBandwidthModel::lte_vehicle(), 19);
  const auto indoor_traces = indoor.generate(1200.0, 0.5, 0);
  const auto vehicle_traces = vehicle.generate(1200.0, 0.5, 2);
  EXPECT_GT(mean(indoor_traces.throughput_mbps.values()),
            mean(vehicle_traces.throughput_mbps.values()) + 5.0);
}

TEST(MarkovGeneratorTest, InvalidArgsThrow) {
  MarkovBandwidthGenerator generator(MarkovBandwidthModel::lte_indoor(), 1);
  EXPECT_THROW(generator.generate(0.0), std::invalid_argument);
  EXPECT_THROW(generator.generate(10.0, 0.5, 99), std::invalid_argument);
}

TEST(MarkovGeneratorTest, WithMarkovNetworkSwapsTracesOnly) {
  const auto original = build_session(media::evaluation_sessions()[0]);
  const auto swapped = with_markov_network(
      original, MarkovBandwidthModel::lte_vehicle(), 23, 2);
  // Accelerometer context untouched; network traces replaced and aligned.
  ASSERT_EQ(swapped.accel.size(), original.accel.size());
  EXPECT_DOUBLE_EQ(swapped.accel[500].z, original.accel[500].z);
  EXPECT_EQ(swapped.throughput_mbps.size(), swapped.signal_dbm.size());
  EXPECT_GE(swapped.signal_dbm.end_time(), original.spec.length_s);
}

}  // namespace
}  // namespace eacs::trace
