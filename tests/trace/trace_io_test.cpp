// Round-trip tests for the CSV trace persistence layer. The load path must
// reproduce the saved series exactly — in particular duplicate-timestamp
// samples (step discontinuities, e.g. outage edges) must survive, and
// integrals across a step must match the in-memory original.

#include "eacs/trace/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace eacs::trace {
namespace {

TimeSeries series_with_step() {
  // 10 Mbps until t=2, a zero-width step down to 0, recovery step at t=4.
  TimeSeries series;
  series.append(0.0, 10.0);
  series.append(2.0, 10.0);
  series.append(2.0, 0.0);  // duplicate timestamp: outage edge
  series.append(4.0, 0.0);
  series.append(4.0, 10.0);  // duplicate timestamp: recovery edge
  series.append(6.0, 10.0);
  return series;
}

void expect_same_series(const TimeSeries& a, const TimeSeries& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.at(i).t_s, b.at(i).t_s) << "sample " << i;
    EXPECT_EQ(a.at(i).value, b.at(i).value) << "sample " << i;
  }
}

/// Unique temp path, removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(std::filesystem::temp_directory_path() /
              ("eacs_trace_io_test_" + name)) {
    std::filesystem::remove(path_);
  }
  ~TempFile() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  const std::filesystem::path& path() const { return path_; }

 private:
  std::filesystem::path path_;
};

TEST(TraceIoTest, TimeSeriesCsvRoundTripIsExact) {
  const TimeSeries original = series_with_step();
  const TimeSeries restored = time_series_from_csv(time_series_to_csv(original));
  expect_same_series(original, restored);
}

TEST(TraceIoTest, CsvPreservesDuplicateTimestampSteps) {
  const TimeSeries restored =
      time_series_from_csv(time_series_to_csv(series_with_step()));
  // The step discontinuities must still behave as steps: the last duplicate
  // wins at the shared instant.
  EXPECT_DOUBLE_EQ(restored.step_at(1.9), 10.0);
  EXPECT_DOUBLE_EQ(restored.step_at(2.0), 0.0);
  EXPECT_DOUBLE_EQ(restored.step_at(3.9), 0.0);
  EXPECT_DOUBLE_EQ(restored.step_at(4.0), 10.0);
}

TEST(TraceIoTest, IntegralAcrossStepSurvivesRoundTrip) {
  const TimeSeries original = series_with_step();
  const TimeSeries restored = time_series_from_csv(time_series_to_csv(original));
  // 10 Mbps for [0,2] and [4,6], zero during the outage: 40 Mbit total.
  EXPECT_NEAR(original.integral_over(0.0, 6.0), 40.0, 1e-9);
  EXPECT_EQ(restored.integral_over(0.0, 6.0), original.integral_over(0.0, 6.0));
  // A window that straddles one edge.
  EXPECT_EQ(restored.integral_over(1.0, 3.0), original.integral_over(1.0, 3.0));
  EXPECT_NEAR(restored.integral_over(1.0, 3.0), 10.0, 1e-9);
}

TEST(TraceIoTest, TimeSeriesFileRoundTrip) {
  const TempFile file("series.csv");
  const TimeSeries original = series_with_step();
  save_time_series(file.path(), original);
  expect_same_series(original, load_time_series(file.path()));
}

TEST(TraceIoTest, EmptySeriesRoundTrips) {
  const TimeSeries restored = time_series_from_csv(time_series_to_csv({}));
  EXPECT_TRUE(restored.empty());
}

TEST(TraceIoTest, AccelCsvRoundTripIsExact) {
  sensors::AccelTrace original;
  original.push_back({0.00, 0.1, -0.2, 9.81});
  original.push_back({0.02, 0.3, 0.4, 9.75});
  original.push_back({0.04, -1.5, 2.5, 10.25});
  const sensors::AccelTrace restored = accel_from_csv(accel_to_csv(original));
  ASSERT_EQ(restored.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(restored[i].t_s, original[i].t_s) << "sample " << i;
    EXPECT_EQ(restored[i].x, original[i].x) << "sample " << i;
    EXPECT_EQ(restored[i].y, original[i].y) << "sample " << i;
    EXPECT_EQ(restored[i].z, original[i].z) << "sample " << i;
  }
}

TEST(TraceIoTest, AccelFileRoundTrip) {
  const TempFile file("accel.csv");
  sensors::AccelTrace original;
  original.push_back({0.0, 0.0, 0.0, sensors::kGravity});
  original.push_back({0.1, 1.0, -1.0, sensors::kGravity + 2.0});
  save_accel(file.path(), original);
  const sensors::AccelTrace restored = load_accel(file.path());
  ASSERT_EQ(restored.size(), original.size());
  EXPECT_EQ(restored[1].z, original[1].z);
}

TEST(TraceIoTest, LoadMissingFileThrows) {
  const TempFile file("missing.csv");
  EXPECT_THROW(load_time_series(file.path()), std::runtime_error);
  EXPECT_THROW(load_accel(file.path()), std::runtime_error);
}

// -- Malformed input: every rejection must cite the offending file line
// (line 1 is the header, so CSV row r is line r + 2).

/// Runs `load` and returns the runtime_error message, failing if it doesn't
/// throw.
template <typename Fn>
std::string error_message(Fn&& load) {
  try {
    load();
  } catch (const std::runtime_error& error) {
    return error.what();
  }
  ADD_FAILURE() << "expected std::runtime_error";
  return {};
}

TEST(TraceIoTest, NanValueIsRejectedWithLineNumber) {
  const auto table = eacs::parse_csv("t_s,value\n0,1\n1,nan\n");
  const std::string message =
      error_message([&] { time_series_from_csv(table); });
  EXPECT_NE(message.find("line 3"), std::string::npos) << message;
  EXPECT_NE(message.find("value"), std::string::npos) << message;
}

TEST(TraceIoTest, InfTimestampIsRejectedWithLineNumber) {
  const auto table = eacs::parse_csv("t_s,value\n0,1\ninf,2\n");
  const std::string message =
      error_message([&] { time_series_from_csv(table); });
  EXPECT_NE(message.find("line 3"), std::string::npos) << message;
  EXPECT_NE(message.find("t_s"), std::string::npos) << message;
}

TEST(TraceIoTest, BackwardsTimestampIsRejectedWithLineNumber) {
  const auto table = eacs::parse_csv("t_s,value\n0,1\n5,2\n4.5,3\n");
  const std::string message =
      error_message([&] { time_series_from_csv(table); });
  EXPECT_NE(message.find("line 4"), std::string::npos) << message;
  EXPECT_NE(message.find("backwards"), std::string::npos) << message;
}

TEST(TraceIoTest, DuplicateTimestampIsStillAccepted) {
  // Zero-width step edges are legitimate; only decreases are rejected.
  const auto table = eacs::parse_csv("t_s,value\n0,1\n2,1\n2,0\n");
  EXPECT_EQ(time_series_from_csv(table).size(), 3U);
}

TEST(TraceIoTest, NonNumericCellIsRejected) {
  const auto table = eacs::parse_csv("t_s,value\n0,fast\n");
  const std::string message =
      error_message([&] { time_series_from_csv(table); });
  EXPECT_NE(message.find("fast"), std::string::npos) << message;
}

TEST(TraceIoTest, AccelNanAxisIsRejectedWithLineNumber) {
  const auto table = eacs::parse_csv("t_s,x,y,z\n0,0,0,9.81\n0.02,0,nan,9.81\n");
  const std::string message = error_message([&] { accel_from_csv(table); });
  EXPECT_NE(message.find("line 3"), std::string::npos) << message;
  EXPECT_NE(message.find("'y'"), std::string::npos) << message;
}

TEST(TraceIoTest, AccelBackwardsTimestampIsRejectedWithLineNumber) {
  const auto table =
      eacs::parse_csv("t_s,x,y,z\n0,0,0,9.81\n0.04,0,0,9.81\n0.02,0,0,9.81\n");
  const std::string message = error_message([&] { accel_from_csv(table); });
  EXPECT_NE(message.find("line 4"), std::string::npos) << message;
}

TEST(TraceIoTest, MalformedFileLoadCitesLine) {
  const TempFile file("malformed.csv");
  {
    std::ofstream out(file.path());
    out << "t_s,value\n0,1\n1,inf\n";
  }
  const std::string message =
      error_message([&] { load_time_series(file.path()); });
  EXPECT_NE(message.find("line 3"), std::string::npos) << message;
}

}  // namespace
}  // namespace eacs::trace
