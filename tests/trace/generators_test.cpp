#include <gtest/gtest.h>

#include <cmath>

#include "eacs/sensors/vibration.h"
#include "eacs/trace/accel_gen.h"
#include "eacs/trace/signal_gen.h"
#include "eacs/trace/throughput_gen.h"
#include "eacs/util/stats.h"

namespace eacs::trace {
namespace {

TEST(SignalGeneratorTest, DeterministicPerSeed) {
  SignalStrengthGenerator a(SignalModel::quiet_room(), 5);
  SignalStrengthGenerator b(SignalModel::quiet_room(), 5);
  const auto ta = a.generate(60.0);
  const auto tb = b.generate(60.0);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_DOUBLE_EQ(ta.at(i).value, tb.at(i).value);
  }
}

TEST(SignalGeneratorTest, RoomIsStrongerAndSteadierThanVehicle) {
  SignalStrengthGenerator room(SignalModel::quiet_room(), 7);
  SignalStrengthGenerator vehicle(SignalModel::moving_vehicle(), 7);
  const auto room_values = room.generate(600.0).values();
  const auto vehicle_values = vehicle.generate(600.0).values();
  EXPECT_GT(eacs::mean(room_values), eacs::mean(vehicle_values) + 10.0);
  EXPECT_LT(eacs::stddev(room_values), eacs::stddev(vehicle_values));
}

TEST(SignalGeneratorTest, ValuesClamped) {
  SignalModel model = SignalModel::moving_vehicle();
  model.volatility = 20.0;  // extreme volatility to hit the clamps
  SignalStrengthGenerator generator(model, 11);
  // Bind the series: samples() returns a reference into it, and a range-for
  // over generate(...).samples() would iterate a destroyed temporary.
  const auto series = generator.generate(300.0);
  for (const auto& point : series.samples()) {
    EXPECT_GE(point.value, model.min_dbm);
    EXPECT_LE(point.value, model.max_dbm);
  }
}

TEST(SignalGeneratorTest, BlendedInterpolates) {
  const auto zero = SignalModel::blended(0.0);
  const auto one = SignalModel::blended(1.0);
  const auto half = SignalModel::blended(0.5);
  EXPECT_DOUBLE_EQ(zero.mean_dbm, SignalModel::quiet_room().mean_dbm);
  EXPECT_DOUBLE_EQ(one.mean_dbm, SignalModel::moving_vehicle().mean_dbm);
  EXPECT_LT(one.mean_dbm, half.mean_dbm);
  EXPECT_LT(half.mean_dbm, zero.mean_dbm);
}

TEST(SignalGeneratorTest, InvalidInputsThrow) {
  SignalModel model;
  model.reversion_rate = 0.0;
  EXPECT_THROW(SignalStrengthGenerator(model, 1), std::invalid_argument);
  SignalStrengthGenerator ok(SignalModel::quiet_room(), 1);
  EXPECT_THROW(ok.generate(-1.0), std::invalid_argument);
  EXPECT_THROW(ok.generate(10.0, 0.0), std::invalid_argument);
}

TEST(ThroughputModelTest, CapacityFallsWithSignal) {
  const ThroughputModel model;
  EXPECT_GT(model.capacity_mbps(-80.0), model.capacity_mbps(-95.0));
  EXPECT_GT(model.capacity_mbps(-95.0), model.capacity_mbps(-110.0));
  // Halves per halving_db of extra path loss.
  const double at_90 = model.capacity_mbps(-90.0);
  const double at_halved = model.capacity_mbps(-90.0 - model.halving_db);
  EXPECT_NEAR(at_90 / at_halved, 2.0, 0.01);
}

TEST(ThroughputModelTest, CapacityClamped) {
  const ThroughputModel model;
  EXPECT_DOUBLE_EQ(model.capacity_mbps(-200.0), model.min_mbps);
  EXPECT_DOUBLE_EQ(model.capacity_mbps(-20.0), model.max_mbps);
}

TEST(ThroughputGeneratorTest, AlignedWithSignalTrace) {
  SignalStrengthGenerator signal_gen(SignalModel::quiet_room(), 13);
  const auto signal = signal_gen.generate(120.0);
  ThroughputGenerator throughput_gen(ThroughputModel{}, 13);
  const auto throughput = throughput_gen.generate(signal);
  ASSERT_EQ(throughput.size(), signal.size());
  for (std::size_t i = 0; i < throughput.size(); ++i) {
    EXPECT_DOUBLE_EQ(throughput.at(i).t_s, signal.at(i).t_s);
    EXPECT_GT(throughput.at(i).value, 0.0);
  }
}

TEST(ThroughputGeneratorTest, WeakSignalMeansLessBandwidth) {
  SignalStrengthGenerator room_signal(SignalModel::quiet_room(), 17);
  SignalStrengthGenerator vehicle_signal(SignalModel::moving_vehicle(), 17);
  ThroughputGenerator gen_a(ThroughputModel{}, 19);
  ThroughputGenerator gen_b(ThroughputModel{}, 19);
  const auto room = gen_a.generate(room_signal.generate(600.0)).values();
  const auto vehicle = gen_b.generate(vehicle_signal.generate(600.0)).values();
  EXPECT_GT(eacs::mean(room), 2.0 * eacs::mean(vehicle));
}

TEST(ThroughputGeneratorTest, EmptySignalThrows) {
  ThroughputGenerator generator(ThroughputModel{}, 1);
  EXPECT_THROW(generator.generate(TimeSeries{}), std::invalid_argument);
}

TEST(AccelGeneratorTest, QuietRoomNearZeroVibration) {
  AccelGenerator generator(AccelModel::quiet_room(), 23);
  const auto trace = generator.generate(60.0);
  EXPECT_LT(sensors::mean_vibration_level(trace), 0.2);
}

TEST(AccelGeneratorTest, VehicleVibrates) {
  AccelGenerator generator(AccelModel::moving_vehicle(), 23);
  const auto trace = generator.generate(60.0);
  EXPECT_GT(sensors::mean_vibration_level(trace), 0.5);
}

TEST(AccelGeneratorTest, SampleCadenceAndGravity) {
  AccelGenerator generator(AccelModel::quiet_room(), 29);
  const auto trace = generator.generate(10.0);
  ASSERT_GT(trace.size(), 490U);
  EXPECT_NEAR(trace[1].t_s - trace[0].t_s, 0.02, 1e-9);
  // Mean magnitude stays near gravity in a quiet room.
  double mean_magnitude = 0.0;
  for (const auto& sample : trace) mean_magnitude += sample.magnitude();
  mean_magnitude /= static_cast<double>(trace.size());
  EXPECT_NEAR(mean_magnitude, sensors::kGravity, 0.1);
}

TEST(AccelGeneratorTest, CalibrationHitsTarget) {
  for (const double target : {2.46, 5.23, 6.83}) {
    AccelGenerator generator(AccelModel::moving_vehicle(), 31);
    const auto trace = generator.generate_calibrated(120.0, target);
    const double measured = sensors::mean_vibration_level(trace);
    EXPECT_NEAR(measured / target, 1.0, 0.05) << "target " << target;
  }
}

TEST(AccelGeneratorTest, CalibrationZeroTargetIsQuiet) {
  AccelGenerator generator(AccelModel::moving_vehicle(), 37);
  const auto trace = generator.generate_calibrated(30.0, 0.0);
  EXPECT_LT(sensors::mean_vibration_level(trace), 0.2);
}

TEST(AccelGeneratorTest, CalibrationWorksFromQuietModel) {
  // Even a quiet-room model can be calibrated up: the generator bootstraps a
  // harmonic bank when the base waveform has no vibration energy.
  AccelGenerator generator(AccelModel::quiet_room(), 41);
  const auto trace = generator.generate_calibrated(60.0, 3.0);
  EXPECT_NEAR(sensors::mean_vibration_level(trace), 3.0, 0.25);
}

TEST(AccelGeneratorTest, InvalidInputsThrow) {
  AccelModel model;
  model.sample_rate_hz = 0.0;
  EXPECT_THROW(AccelGenerator(model, 1), std::invalid_argument);
  AccelGenerator ok(AccelModel::quiet_room(), 1);
  EXPECT_THROW(ok.generate(0.0), std::invalid_argument);
}

}  // namespace
}  // namespace eacs::trace
