#include "eacs/trace/scenario.h"

#include <gtest/gtest.h>

#include "eacs/sensors/context_classifier.h"
#include "eacs/sensors/vibration.h"
#include "eacs/util/stats.h"

namespace eacs::trace {
namespace {

ScenarioBuilder commute_builder() {
  ScenarioBuilder builder(1234);
  builder.add_phase(ScenarioPhase::home(60.0))
      .add_phase(ScenarioPhase::walking(40.0))
      .add_phase(ScenarioPhase::bus(120.0))
      .add_phase(ScenarioPhase::cafe(60.0));
  return builder;
}

TEST(ScenarioBuilderTest, TotalDurationAndBoundaries) {
  const auto builder = commute_builder();
  EXPECT_DOUBLE_EQ(builder.total_duration_s(), 280.0);
  const auto bounds = builder.boundaries();
  ASSERT_EQ(bounds.size(), 4U);
  EXPECT_EQ(bounds[2].label, "bus");
  EXPECT_DOUBLE_EQ(bounds[2].start_s, 100.0);
  EXPECT_DOUBLE_EQ(bounds[2].end_s, 220.0);
}

TEST(ScenarioBuilderTest, NoPhasesThrows) {
  ScenarioBuilder builder;
  EXPECT_THROW(builder.build(), std::logic_error);
  EXPECT_THROW(builder.add_phase(ScenarioPhase::home(0.0)), std::invalid_argument);
}

TEST(ScenarioBuilderTest, TracesAreContinuousAndCoverDuration) {
  const auto session = commute_builder().build(100.0);
  EXPECT_GE(session.signal_dbm.end_time(), 280.0 + 99.0);
  EXPECT_GE(session.accel.back().t_s, 280.0 + 99.0);
  ASSERT_EQ(session.throughput_mbps.size(), session.signal_dbm.size());
  // Timestamps strictly increase across phase boundaries (TimeSeries
  // enforces this; the accel trace we check manually).
  for (std::size_t i = 1; i < session.accel.size(); ++i) {
    ASSERT_GT(session.accel[i].t_s, session.accel[i - 1].t_s);
  }
}

TEST(ScenarioBuilderTest, SignalContinuousAcrossPhaseBoundary) {
  const auto session = commute_builder().build();
  // At the home->walking boundary (t = 60) the signal must not jump by the
  // full difference of the phase means (~10 dB): continuity caps the step
  // near the OU per-step scale.
  const double before = session.signal_dbm.linear_at(59.5);
  const double after = session.signal_dbm.linear_at(60.5);
  EXPECT_LT(std::abs(after - before), 6.0);
}

TEST(ScenarioBuilderTest, PhasesHaveDistinctVibration) {
  const auto session = commute_builder().build();
  sensors::VibrationEstimator estimator;
  double home_level = 0.0;
  double bus_level = 0.0;
  for (const auto& sample : session.accel) {
    const double level = estimator.update(sample);
    if (sample.t_s > 50.0 && sample.t_s <= 60.0) home_level = level;
    if (sample.t_s > 200.0 && sample.t_s <= 220.0) bus_level = level;
  }
  EXPECT_LT(home_level, 0.5);
  EXPECT_GT(bus_level, 4.0);
}

TEST(ScenarioBuilderTest, ClassifierTracksPhases) {
  const auto session = commute_builder().build();
  const auto window_of = [&](double t0, double t1) {
    sensors::AccelTrace window;
    for (const auto& sample : session.accel) {
      if (sample.t_s >= t0 && sample.t_s < t1) window.push_back(sample);
    }
    return window;
  };
  EXPECT_EQ(sensors::classify_window(window_of(20.0, 50.0)),
            sensors::Context::kStatic);
  EXPECT_EQ(sensors::classify_window(window_of(70.0, 95.0)),
            sensors::Context::kWalking);
  EXPECT_EQ(sensors::classify_window(window_of(140.0, 200.0)),
            sensors::Context::kVehicle);
}

TEST(ScenarioBuilderTest, DeterministicPerSeed) {
  const auto a = ScenarioBuilder(9).add_phase(ScenarioPhase::bus(60.0)).build();
  const auto b = ScenarioBuilder(9).add_phase(ScenarioPhase::bus(60.0)).build();
  ASSERT_EQ(a.accel.size(), b.accel.size());
  EXPECT_DOUBLE_EQ(a.accel[500].z, b.accel[500].z);
  EXPECT_DOUBLE_EQ(a.signal_dbm.at(40).value, b.signal_dbm.at(40).value);
}

TEST(ScenarioBuilderTest, BusSignalWeakerThanHome) {
  const auto session = commute_builder().build();
  const double home_mean = session.signal_dbm.mean_over(10.0, 55.0);
  const double bus_mean = session.signal_dbm.mean_over(150.0, 215.0);
  EXPECT_LT(bus_mean, home_mean - 5.0);
}

}  // namespace
}  // namespace eacs::trace
