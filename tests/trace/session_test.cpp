#include "eacs/trace/session.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "eacs/trace/trace_io.h"
#include "eacs/util/stats.h"

namespace eacs::trace {
namespace {

TEST(SessionTest, BuildsAllFiveSessions) {
  const auto sessions = build_all_sessions();
  ASSERT_EQ(sessions.size(), 5U);
  for (const auto& session : sessions) {
    EXPECT_FALSE(session.signal_dbm.empty());
    EXPECT_FALSE(session.throughput_mbps.empty());
    EXPECT_FALSE(session.accel.empty());
  }
}

TEST(SessionTest, TracesCoverVideoPlusMargin) {
  SessionBuildOptions options;
  options.margin_s = 100.0;
  const auto session = build_session(media::evaluation_sessions()[0], options);
  const double needed = session.spec.length_s + 99.0;
  EXPECT_GE(session.signal_dbm.end_time(), needed);
  EXPECT_GE(session.throughput_mbps.end_time(), needed);
  EXPECT_GE(session.accel.back().t_s, needed);
}

TEST(SessionTest, VibrationCalibratedToTableV) {
  for (const auto& spec : media::evaluation_sessions()) {
    const auto session = build_session(spec);
    const double measured = sensors::mean_vibration_level(session.accel);
    EXPECT_NEAR(measured / spec.avg_vibration, 1.0, 0.05)
        << "session " << spec.id << " target " << spec.avg_vibration;
  }
}

TEST(SessionTest, HighVibrationSessionsHaveWeakerSignal) {
  const auto& specs = media::evaluation_sessions();
  const auto rough = build_session(specs[0]);   // avg vibration 6.83
  const auto smooth = build_session(specs[1]);  // avg vibration 2.46
  EXPECT_LT(eacs::mean(rough.signal_dbm.values()),
            eacs::mean(smooth.signal_dbm.values()) - 4.0);
}

TEST(SessionTest, DeterministicPerSpecSeed) {
  const auto a = build_session(media::evaluation_sessions()[2]);
  const auto b = build_session(media::evaluation_sessions()[2]);
  ASSERT_EQ(a.signal_dbm.size(), b.signal_dbm.size());
  EXPECT_DOUBLE_EQ(a.signal_dbm.at(10).value, b.signal_dbm.at(10).value);
  ASSERT_EQ(a.accel.size(), b.accel.size());
  EXPECT_DOUBLE_EQ(a.accel[100].z, b.accel[100].z);
}

TEST(TraceIoTest, TimeSeriesRoundTrip) {
  TimeSeries series({{0.0, 1.5}, {0.5, 2.25}, {1.0, -3.125}});
  const auto table = time_series_to_csv(series);
  const auto loaded = time_series_from_csv(table);
  ASSERT_EQ(loaded.size(), series.size());
  for (std::size_t i = 0; i < series.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded.at(i).t_s, series.at(i).t_s);
    EXPECT_DOUBLE_EQ(loaded.at(i).value, series.at(i).value);
  }
}

TEST(TraceIoTest, AccelRoundTrip) {
  sensors::AccelTrace trace = {{0.0, 0.1, -0.2, 9.8}, {0.02, 0.3, 0.0, 9.9}};
  const auto loaded = accel_from_csv(accel_to_csv(trace));
  ASSERT_EQ(loaded.size(), 2U);
  EXPECT_DOUBLE_EQ(loaded[1].x, 0.3);
  EXPECT_DOUBLE_EQ(loaded[0].z, 9.8);
}

TEST(TraceIoTest, FileRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto ts_path = dir / "eacs_ts_test.csv";
  const auto accel_path = dir / "eacs_accel_test.csv";

  TimeSeries series({{0.0, -90.0}, {0.5, -91.5}});
  save_time_series(ts_path, series);
  const auto ts_loaded = load_time_series(ts_path);
  EXPECT_DOUBLE_EQ(ts_loaded.at(1).value, -91.5);

  sensors::AccelTrace accel = {{0.0, 0.0, 0.0, 9.81}};
  save_accel(accel_path, accel);
  const auto accel_loaded = load_accel(accel_path);
  EXPECT_DOUBLE_EQ(accel_loaded[0].z, 9.81);

  std::filesystem::remove(ts_path);
  std::filesystem::remove(accel_path);
}

TEST(TraceIoTest, SessionTracesSurviveCsvRoundTrip) {
  // End-to-end substitution check: synthetic traces persisted and reloaded
  // behave identically, proving real recordings can be dropped in.
  const auto session = build_session(media::evaluation_sessions()[0]);
  const auto throughput = time_series_from_csv(time_series_to_csv(session.throughput_mbps));
  EXPECT_DOUBLE_EQ(throughput.mean_over(0.0, 100.0),
                   session.throughput_mbps.mean_over(0.0, 100.0));
}

}  // namespace
}  // namespace eacs::trace
