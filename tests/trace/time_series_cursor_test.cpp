// Property tests for TimeSeriesCursor: for ANY query sequence the cursor
// must return values bitwise identical to the stateless TimeSeries lookups,
// including at duplicate-timestamp step edges (right-continuous, the last
// duplicate wins). The cursor is the inner-loop optimisation the
// SessionEngine fast path rides on, so these tests are part of the DESIGN §6
// bit-identity certification alongside tests/differential/.

#include "eacs/trace/time_series.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <random>
#include <stdexcept>
#include <vector>

namespace eacs::trace {
namespace {

std::uint64_t bits_of(double x) {
  std::uint64_t out = 0;
  std::memcpy(&out, &x, sizeof(out));
  return out;
}

// Random series with duplicate timestamps (step edges) sprinkled in.
TimeSeries random_series(std::uint64_t seed, std::size_t n) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> gap(0.0, 2.0);
  std::uniform_real_distribution<double> value(-120.0, 60.0);
  std::bernoulli_distribution duplicate(0.15);
  TimeSeries out;
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i > 0 && !duplicate(rng)) t += gap(rng);
    out.append(t, value(rng));
  }
  return out;
}

TEST(TimeSeriesCursorTest, RandomWalkMatchesStatelessLookupsBitwise) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const TimeSeries series = random_series(seed, 200);
    TimeSeriesCursor cursor(series);
    std::mt19937_64 rng(seed * 7919);
    // Query walk: mostly small forward steps (the engine's access pattern),
    // with backward jumps, repeats and out-of-range excursions mixed in.
    std::uniform_real_distribution<double> step(-3.0, 5.0);
    std::uniform_real_distribution<double> anywhere(-10.0, series.end_time() + 10.0);
    std::bernoulli_distribution jump(0.1);
    std::bernoulli_distribution repeat(0.1);
    double t = -5.0;
    double prev = t;
    for (int q = 0; q < 2000; ++q) {
      if (repeat(rng)) {
        t = prev;
      } else if (jump(rng)) {
        t = anywhere(rng);
      } else {
        t += step(rng);
      }
      prev = t;
      ASSERT_EQ(bits_of(cursor.linear_at(t)), bits_of(series.linear_at(t)))
          << "seed " << seed << " query " << q << " t=" << t;
      ASSERT_EQ(bits_of(cursor.step_at(t)), bits_of(series.step_at(t)))
          << "seed " << seed << " query " << q << " t=" << t;
    }
  }
}

TEST(TimeSeriesCursorTest, DuplicateTimestampStepEdgeLastWins) {
  // Pinned contract: at a zero-width breakpoint the lookup is
  // right-continuous and the *last* duplicate defines the value.
  TimeSeries series({{0.0, 1.0}, {5.0, 2.0}, {5.0, 9.0}, {5.0, 7.0}, {10.0, 3.0}});
  TimeSeriesCursor cursor(series);

  EXPECT_EQ(series.step_at(5.0), 7.0);
  EXPECT_EQ(series.linear_at(5.0), 7.0);
  EXPECT_EQ(cursor.step_at(5.0), 7.0);
  EXPECT_EQ(cursor.linear_at(5.0), 7.0);

  // Approaching the edge from both sides, in both query orders.
  for (const double t : {4.999, 5.0, 5.001, 4.0, 6.0, 5.0, 0.0, 10.0, 5.0}) {
    EXPECT_EQ(bits_of(cursor.linear_at(t)), bits_of(series.linear_at(t))) << t;
    EXPECT_EQ(bits_of(cursor.step_at(t)), bits_of(series.step_at(t))) << t;
  }
  EXPECT_EQ(series.index_at_or_before(5.0), 3U);  // the last duplicate
}

TEST(TimeSeriesCursorTest, OutOfRangeClampsLikeTheSeries) {
  TimeSeries series({{1.0, 4.0}, {2.0, 8.0}});
  TimeSeriesCursor cursor(series);
  EXPECT_EQ(cursor.linear_at(-100.0), 4.0);
  EXPECT_EQ(cursor.linear_at(100.0), 8.0);
  EXPECT_EQ(cursor.step_at(-100.0), 4.0);
  EXPECT_EQ(cursor.step_at(100.0), 8.0);
  // Back in range after the far excursions.
  EXPECT_EQ(bits_of(cursor.linear_at(1.5)), bits_of(series.linear_at(1.5)));
}

TEST(TimeSeriesCursorTest, SurvivesAppendsToTheSeries) {
  TimeSeries series({{0.0, 1.0}, {1.0, 2.0}});
  TimeSeriesCursor cursor(series);
  EXPECT_EQ(cursor.linear_at(0.5), series.linear_at(0.5));
  series.append(2.0, 10.0);
  series.append(3.0, 0.0);
  for (const double t : {2.5, 0.25, 3.5, 1.0}) {
    EXPECT_EQ(bits_of(cursor.linear_at(t)), bits_of(series.linear_at(t))) << t;
  }
}

TEST(TimeSeriesCursorTest, ManyCursorsShareOneSeriesIndependently) {
  const TimeSeries series = random_series(42, 64);
  TimeSeriesCursor a(series);
  TimeSeriesCursor b(series);
  // a walks forward while b walks backward; neither disturbs the other.
  for (int q = 0; q < 100; ++q) {
    const double ta = 0.5 * q;
    const double tb = 50.0 - 0.5 * q;
    EXPECT_EQ(bits_of(a.linear_at(ta)), bits_of(series.linear_at(ta)));
    EXPECT_EQ(bits_of(b.linear_at(tb)), bits_of(series.linear_at(tb)));
  }
}

TEST(TimeSeriesCursorTest, EmptySeriesThrowsLikeTheStatelessLookup) {
  TimeSeries empty;
  TimeSeriesCursor cursor(empty);
  EXPECT_THROW(cursor.linear_at(0.0), std::logic_error);
  EXPECT_THROW(cursor.step_at(0.0), std::logic_error);
}

TEST(TimeSeriesCursorTest, SingleSampleSeries) {
  TimeSeries series({{2.0, 5.0}});
  TimeSeriesCursor cursor(series);
  for (const double t : {-1.0, 2.0, 7.0}) {
    EXPECT_EQ(cursor.linear_at(t), 5.0);
    EXPECT_EQ(cursor.step_at(t), 5.0);
  }
}

TEST(TimeSeriesCursorTest, LongMonotoneWalkStaysExact) {
  // The fast path's canonical access pattern: thousands of small forward
  // steps across a long trace (amortised O(1) per query).
  const TimeSeries series = random_series(7, 5000);
  TimeSeriesCursor cursor(series);
  const double end = series.end_time();
  for (double t = -1.0; t < end + 2.0; t += 0.01 * end / 50.0) {
    ASSERT_EQ(bits_of(cursor.linear_at(t)), bits_of(series.linear_at(t))) << t;
  }
}

}  // namespace
}  // namespace eacs::trace
