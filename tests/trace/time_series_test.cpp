#include "eacs/trace/time_series.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eacs::trace {
namespace {

TimeSeries ramp() {
  // value = t over [0, 10]
  TimeSeries series;
  for (int i = 0; i <= 10; ++i) series.append(i, i);
  return series;
}

TEST(TimeSeriesTest, AppendRejectsDecreasingTime) {
  TimeSeries series;
  series.append(0.0, 1.0);
  series.append(1.0, 2.0);
  // Duplicate timestamps model step discontinuities and are allowed; only
  // going backwards in time is an error.
  EXPECT_NO_THROW(series.append(1.0, 3.0));
  EXPECT_THROW(series.append(0.5, 3.0), std::invalid_argument);
}

TEST(TimeSeriesTest, ConstructorValidates) {
  EXPECT_THROW(TimeSeries({{1.0, 0.0}, {0.5, 1.0}}), std::invalid_argument);
  EXPECT_NO_THROW(TimeSeries({{1.0, 0.0}, {1.0, 1.0}}));
  EXPECT_NO_THROW(TimeSeries({{0.0, 0.0}, {1.0, 1.0}}));
}

TEST(TimeSeriesTest, DuplicateTimestampIsStepDiscontinuity) {
  // A zero-width breakpoint: the value jumps from 10 to 0 at t=2 and back to
  // 10 at t=4. The last duplicate wins at the step instant.
  TimeSeries series({{0.0, 10.0}, {2.0, 10.0}, {2.0, 0.0}, {4.0, 0.0}, {4.0, 10.0}});
  EXPECT_DOUBLE_EQ(series.step_at(1.0), 10.0);
  EXPECT_DOUBLE_EQ(series.step_at(2.0), 0.0);
  EXPECT_DOUBLE_EQ(series.step_at(3.0), 0.0);
  EXPECT_DOUBLE_EQ(series.step_at(4.0), 10.0);
  EXPECT_DOUBLE_EQ(series.linear_at(3.0), 0.0);
  EXPECT_DOUBLE_EQ(series.linear_at(2.0), 0.0);
  EXPECT_DOUBLE_EQ(series.linear_at(4.0), 10.0);
  // Integral: 10 over [0,2], 0 over [2,4].
  EXPECT_NEAR(series.integral_over(0.0, 4.0), 20.0, 1e-9);
}

TEST(TimeSeriesTest, StepAtFirstTimestampResolvesToLastDuplicate) {
  TimeSeries series({{0.0, 5.0}, {0.0, 7.0}, {1.0, 7.0}});
  EXPECT_DOUBLE_EQ(series.step_at(0.0), 7.0);
  EXPECT_DOUBLE_EQ(series.linear_at(0.0), 7.0);
  EXPECT_DOUBLE_EQ(series.linear_at(-1.0), 5.0);  // clamped to front sample
}

TEST(TimeSeriesTest, StepAt) {
  TimeSeries series({{0.0, 10.0}, {2.0, 20.0}, {4.0, 30.0}});
  EXPECT_DOUBLE_EQ(series.step_at(-1.0), 10.0);
  EXPECT_DOUBLE_EQ(series.step_at(0.0), 10.0);
  EXPECT_DOUBLE_EQ(series.step_at(1.99), 10.0);
  EXPECT_DOUBLE_EQ(series.step_at(2.0), 20.0);
  EXPECT_DOUBLE_EQ(series.step_at(100.0), 30.0);
}

TEST(TimeSeriesTest, LinearAt) {
  TimeSeries series({{0.0, 0.0}, {2.0, 10.0}});
  EXPECT_DOUBLE_EQ(series.linear_at(1.0), 5.0);
  EXPECT_DOUBLE_EQ(series.linear_at(-5.0), 0.0);   // clamped
  EXPECT_DOUBLE_EQ(series.linear_at(99.0), 10.0);  // clamped
}

TEST(TimeSeriesTest, EmptyLookupsThrow) {
  TimeSeries series;
  EXPECT_TRUE(series.empty());
  EXPECT_THROW(series.step_at(0.0), std::logic_error);
  EXPECT_THROW(series.start_time(), std::logic_error);
}

TEST(TimeSeriesTest, IntegralOfRamp) {
  const auto series = ramp();
  // integral of t over [0, 10] = 50.
  EXPECT_NEAR(series.integral_over(0.0, 10.0), 50.0, 1e-9);
  // integral over [2, 4] = (4^2 - 2^2)/2 = 6.
  EXPECT_NEAR(series.integral_over(2.0, 4.0), 6.0, 1e-9);
  // off-breakpoint bounds
  EXPECT_NEAR(series.integral_over(2.5, 3.5), 3.0, 1e-9);
}

TEST(TimeSeriesTest, IntegralDegenerateAndInvalid) {
  const auto series = ramp();
  EXPECT_DOUBLE_EQ(series.integral_over(3.0, 3.0), 0.0);
  EXPECT_THROW(series.integral_over(4.0, 3.0), std::invalid_argument);
}

TEST(TimeSeriesTest, IntegralBeyondEndExtendsLastValue) {
  TimeSeries series({{0.0, 2.0}, {1.0, 2.0}});
  EXPECT_NEAR(series.integral_over(0.0, 5.0), 10.0, 1e-9);
}

TEST(TimeSeriesTest, MeanOver) {
  const auto series = ramp();
  EXPECT_NEAR(series.mean_over(0.0, 10.0), 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(series.mean_over(3.0, 3.0), 3.0);
}

TEST(TimeSeriesTest, Resampled) {
  TimeSeries series({{0.0, 0.0}, {4.0, 8.0}});
  const auto resampled = series.resampled(1.0);
  ASSERT_EQ(resampled.size(), 5U);
  EXPECT_DOUBLE_EQ(resampled.at(2).value, 4.0);
  EXPECT_THROW(series.resampled(0.0), std::invalid_argument);
}

TEST(TimeSeriesTest, ValuesInOrder) {
  TimeSeries series({{0.0, 3.0}, {1.0, 1.0}, {2.0, 2.0}});
  EXPECT_EQ(series.values(), (std::vector<double>{3.0, 1.0, 2.0}));
}

}  // namespace
}  // namespace eacs::trace
