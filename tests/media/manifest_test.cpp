#include "eacs/media/manifest.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace eacs::media {
namespace {

VideoManifest make_manifest(double duration = 10.0, double segment = 2.0,
                            double vbr = 0.0) {
  return VideoManifest("test", duration, segment, BitrateLadder::table2(),
                       VbrModel{vbr});
}

TEST(VideoManifestTest, SegmentCount) {
  EXPECT_EQ(make_manifest(10.0, 2.0).num_segments(), 5U);
  EXPECT_EQ(make_manifest(11.0, 2.0).num_segments(), 6U);
  EXPECT_EQ(make_manifest(0.5, 2.0).num_segments(), 1U);
}

TEST(VideoManifestTest, LastSegmentShortened) {
  const auto manifest = make_manifest(11.0, 2.0);
  EXPECT_DOUBLE_EQ(manifest.segment_duration(4), 2.0);
  EXPECT_DOUBLE_EQ(manifest.segment_duration(5), 1.0);
}

TEST(VideoManifestTest, SegmentIndexOutOfRangeThrows) {
  const auto manifest = make_manifest();
  EXPECT_THROW(manifest.segment_duration(5), std::out_of_range);
  EXPECT_THROW(manifest.segment(99, 0), std::out_of_range);
}

TEST(VideoManifestTest, CbrSizesMatchNominal) {
  const auto manifest = make_manifest(10.0, 2.0, 0.0);
  // 1.5 Mbps x 2 s = 3 megabits.
  EXPECT_DOUBLE_EQ(manifest.segment_size_megabits(0, 3), 3.0);
  const auto segment = manifest.segment(0, 3);
  EXPECT_DOUBLE_EQ(segment.size_megabytes(), 3.0 / 8.0);
  EXPECT_DOUBLE_EQ(segment.bitrate_mbps, 1.5);
}

TEST(VideoManifestTest, VbrSizesVaryButStayBounded) {
  const auto manifest = make_manifest(600.0, 2.0, 0.2);
  const double nominal = 5.8 * 2.0;
  double min_seen = 1e9;
  double max_seen = 0.0;
  for (std::size_t i = 0; i < manifest.num_segments(); ++i) {
    const double size = manifest.segment_size_megabits(i, 5);
    EXPECT_GE(size, nominal * 0.8 - 1e-9);
    EXPECT_LE(size, nominal * 1.2 + 1e-9);
    min_seen = std::min(min_seen, size);
    max_seen = std::max(max_seen, size);
  }
  EXPECT_GT(max_seen - min_seen, 0.1);  // it actually varies
}

TEST(VideoManifestTest, VbrDeterministicPerVideoId) {
  const auto a1 = make_manifest(100.0, 2.0, 0.2);
  const auto a2 = make_manifest(100.0, 2.0, 0.2);
  for (std::size_t i = 0; i < a1.num_segments(); ++i) {
    EXPECT_DOUBLE_EQ(a1.segment_size_megabits(i, 2), a2.segment_size_megabits(i, 2));
  }
  const VideoManifest other("other", 100.0, 2.0, BitrateLadder::table2(),
                            VbrModel{0.2});
  bool any_differs = false;
  for (std::size_t i = 0; i < a1.num_segments(); ++i) {
    if (std::fabs(a1.segment_size_megabits(i, 2) - other.segment_size_megabits(i, 2)) >
        1e-9) {
      any_differs = true;
      break;
    }
  }
  EXPECT_TRUE(any_differs);
}

TEST(VideoManifestTest, TotalSizeMegabytes) {
  const auto manifest = make_manifest(100.0, 2.0, 0.0);
  // 100 s at 5.8 Mbps = 580 megabits = 72.5 MB.
  EXPECT_NEAR(manifest.total_size_megabytes(5), 72.5, 1e-9);
}

TEST(VideoManifestTest, HigherLevelAlwaysBigger) {
  const auto manifest = make_manifest(60.0, 2.0, 0.2);
  for (std::size_t i = 0; i < manifest.num_segments(); ++i) {
    for (std::size_t level = 1; level < 6; ++level) {
      EXPECT_GT(manifest.segment_size_megabits(i, level),
                manifest.segment_size_megabits(i, level - 1));
    }
  }
}

TEST(VideoManifestTest, InvalidArgumentsThrow) {
  EXPECT_THROW(make_manifest(0.0, 2.0), std::invalid_argument);
  EXPECT_THROW(make_manifest(10.0, 0.0), std::invalid_argument);
  EXPECT_THROW(make_manifest(10.0, 2.0, 1.5), std::invalid_argument);
  EXPECT_THROW(make_manifest(10.0, 2.0, -0.1), std::invalid_argument);
}

TEST(VbrModelTest, WaveformBounded) {
  for (std::size_t i = 0; i < 1000; ++i) {
    const double w = VbrModel::waveform(12345, i);
    EXPECT_GE(w, -1.0);
    EXPECT_LE(w, 1.0);
  }
}

}  // namespace
}  // namespace eacs::media
