#include "eacs/media/bitrate_ladder.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eacs::media {
namespace {

TEST(BitrateLadderTest, Table2MatchesPaper) {
  const auto ladder = BitrateLadder::table2();
  ASSERT_EQ(ladder.size(), 6U);
  EXPECT_DOUBLE_EQ(ladder.lowest_bitrate(), 0.10);
  EXPECT_DOUBLE_EQ(ladder.highest_bitrate(), 5.80);
  EXPECT_EQ(ladder.rung(0).resolution, "144p");
  EXPECT_EQ(ladder.rung(5).resolution, "1080p");
  EXPECT_DOUBLE_EQ(ladder.bitrate(4), 3.0);  // 720p
}

TEST(BitrateLadderTest, Evaluation14MatchesPaper) {
  const auto ladder = BitrateLadder::evaluation14();
  ASSERT_EQ(ladder.size(), 14U);
  const std::vector<double> expected = {0.1, 0.2,  0.24, 0.375, 0.55, 0.75, 1.0,
                                        1.5, 2.3,  2.56, 3.0,   3.6,  4.3,  5.8};
  EXPECT_EQ(ladder.bitrates(), expected);
}

TEST(BitrateLadderTest, SortsInput) {
  BitrateLadder ladder({{3.0, "hi"}, {1.0, "lo"}, {2.0, "mid"}});
  EXPECT_DOUBLE_EQ(ladder.bitrate(0), 1.0);
  EXPECT_DOUBLE_EQ(ladder.bitrate(2), 3.0);
}

TEST(BitrateLadderTest, RejectsBadLadders) {
  EXPECT_THROW(BitrateLadder({}), std::invalid_argument);
  EXPECT_THROW(BitrateLadder({{0.0, ""}}), std::invalid_argument);
  EXPECT_THROW(BitrateLadder({{-1.0, ""}}), std::invalid_argument);
  EXPECT_THROW(BitrateLadder({{1.0, ""}, {1.0, ""}}), std::invalid_argument);
}

TEST(BitrateLadderTest, LevelOf) {
  const auto ladder = BitrateLadder::table2();
  EXPECT_EQ(ladder.level_of(1.5).value(), 3U);
  EXPECT_FALSE(ladder.level_of(1.51).has_value());
}

TEST(BitrateLadderTest, HighestLevelNotAbove) {
  const auto ladder = BitrateLadder::table2();
  EXPECT_EQ(ladder.highest_level_not_above(3.0).value(), 4U);   // exactly 3.0
  EXPECT_EQ(ladder.highest_level_not_above(2.99).value(), 3U);  // 1.5
  EXPECT_EQ(ladder.highest_level_not_above(100.0).value(), 5U);
  EXPECT_FALSE(ladder.highest_level_not_above(0.05).has_value());
}

TEST(BitrateLadderTest, HighestLevelBelowIsStrict) {
  const auto ladder = BitrateLadder::table2();
  EXPECT_EQ(ladder.highest_level_below(3.0).value(), 3U);  // strictly below 3.0
  EXPECT_EQ(ladder.highest_level_below(3.01).value(), 4U);
  EXPECT_FALSE(ladder.highest_level_below(0.1).has_value());
}

TEST(BitrateLadderTest, ClampLevel) {
  const auto ladder = BitrateLadder::table2();
  EXPECT_EQ(ladder.clamp_level(-3), 0U);
  EXPECT_EQ(ladder.clamp_level(2), 2U);
  EXPECT_EQ(ladder.clamp_level(99), 5U);
}

TEST(BitrateLadderTest, LaddersShareNamedRungs) {
  // Every Table II rung appears in the 14-rate evaluation ladder.
  const auto small = BitrateLadder::table2();
  const auto big = BitrateLadder::evaluation14();
  for (std::size_t i = 0; i < small.size(); ++i) {
    EXPECT_TRUE(big.level_of(small.bitrate(i)).has_value())
        << "missing " << small.bitrate(i);
  }
}

}  // namespace
}  // namespace eacs::media
