#include "eacs/media/si_ti.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "eacs/media/catalogue.h"
#include "eacs/media/frames.h"

namespace eacs::media {
namespace {

TEST(FrameTest, DimensionsAndAccess) {
  Frame frame(4, 3);
  EXPECT_EQ(frame.width(), 4U);
  EXPECT_EQ(frame.height(), 3U);
  frame.set(2, 1, 200);
  EXPECT_EQ(frame.at(2, 1), 200);
  EXPECT_EQ(frame.at(0, 0), 0);
}

TEST(FrameTest, EmptyDimensionsThrow) {
  EXPECT_THROW(Frame(0, 4), std::invalid_argument);
  EXPECT_THROW(Frame(4, 0), std::invalid_argument);
}

TEST(SiTiTest, FlatFrameHasZeroSi) {
  Frame frame(16, 16);
  for (std::size_t y = 0; y < 16; ++y) {
    for (std::size_t x = 0; x < 16; ++x) frame.set(x, y, 128);
  }
  EXPECT_DOUBLE_EQ(spatial_information(frame), 0.0);
}

TEST(SiTiTest, EdgeRaisesSi) {
  Frame frame(16, 16);
  for (std::size_t y = 0; y < 16; ++y) {
    for (std::size_t x = 0; x < 16; ++x) frame.set(x, y, x < 8 ? 0 : 255);
  }
  EXPECT_GT(spatial_information(frame), 50.0);
}

TEST(SiTiTest, IdenticalFramesHaveZeroTi) {
  FrameGenerator generator(32, 32, {0.5, 0.0, 7});
  const Frame frame = generator.next();
  EXPECT_DOUBLE_EQ(temporal_information(frame, frame), 0.0);
}

TEST(SiTiTest, DimensionMismatchThrows) {
  Frame a(8, 8);
  Frame b(8, 9);
  EXPECT_THROW(temporal_information(a, b), std::invalid_argument);
  Frame tiny(2, 2);
  EXPECT_THROW(sobel_magnitude(tiny), std::invalid_argument);
}

TEST(SiTiTest, AnalyzeEmptyAndSingle) {
  EXPECT_DOUBLE_EQ(analyze_si_ti({}).si, 0.0);
  FrameGenerator generator(32, 32, {0.5, 0.5, 9});
  const std::vector<Frame> one = generator.generate(1);
  const auto result = analyze_si_ti(one);
  EXPECT_GT(result.si, 0.0);
  EXPECT_DOUBLE_EQ(result.ti, 0.0);
}

TEST(FrameGeneratorTest, SpatialDetailKnobRaisesSi) {
  FrameGenerator low(64, 64, {0.1, 0.2, 42});
  FrameGenerator high(64, 64, {0.9, 0.2, 42});
  const auto low_result = analyze_si_ti(low.generate(5));
  const auto high_result = analyze_si_ti(high.generate(5));
  EXPECT_GT(high_result.si_mean, low_result.si_mean);
}

TEST(FrameGeneratorTest, MotionKnobRaisesTi) {
  FrameGenerator still(64, 64, {0.5, 0.02, 42});
  FrameGenerator moving(64, 64, {0.5, 0.9, 42});
  const auto still_result = analyze_si_ti(still.generate(6));
  const auto moving_result = analyze_si_ti(moving.generate(6));
  EXPECT_GT(moving_result.ti_mean, 2.0 * still_result.ti_mean);
}

TEST(FrameGeneratorTest, DeterministicPerSeed) {
  FrameGenerator a(32, 32, {0.5, 0.5, 11});
  FrameGenerator b(32, 32, {0.5, 0.5, 11});
  const Frame fa = a.next();
  const Frame fb = b.next();
  EXPECT_EQ(fa.pixels(), fb.pixels());
}

TEST(FrameGeneratorTest, BadKnobsThrow) {
  EXPECT_THROW(FrameGenerator(32, 32, {-0.1, 0.5, 1}), std::invalid_argument);
  EXPECT_THROW(FrameGenerator(32, 32, {0.5, 1.5, 1}), std::invalid_argument);
}

TEST(CatalogueTest, TenTestVideos) {
  const auto& videos = test_videos();
  ASSERT_EQ(videos.size(), 10U);
  EXPECT_EQ(videos.front().name, "Speech");
  EXPECT_NO_THROW(test_video("Matrix"));
  EXPECT_THROW(test_video("Nope"), std::out_of_range);
}

TEST(CatalogueTest, SessionSpecsMatchTableV) {
  const auto& sessions = evaluation_sessions();
  ASSERT_EQ(sessions.size(), 5U);
  EXPECT_DOUBLE_EQ(sessions[0].length_s, 198.0);
  EXPECT_DOUBLE_EQ(sessions[1].avg_vibration, 2.46);
  EXPECT_DOUBLE_EQ(sessions[4].length_s, 612.0);
  EXPECT_DOUBLE_EQ(sessions[4].data_size_mb, 173.1);
  // Seeds are distinct and deterministic.
  for (std::size_t i = 1; i < sessions.size(); ++i) {
    EXPECT_NE(sessions[i].seed, sessions[i - 1].seed);
  }
}

TEST(CatalogueTest, KnobsOrderedWithTargets) {
  // Catalogue knobs should be monotone with the Fig. 2(a) targets they
  // stand in for: higher target SI -> higher spatial_detail knob.
  const auto& videos = test_videos();
  for (std::size_t i = 1; i < videos.size(); ++i) {
    EXPECT_GE(videos[i].profile.spatial_detail, videos[i - 1].profile.spatial_detail);
    EXPECT_GE(videos[i].target_si, videos[i - 1].target_si);
  }
}

TEST(CatalogueTest, MeasuredSiTiOrderingMatchesTargets) {
  // Smoke version of the Fig. 2(a) bench: generate frames for the lowest- and
  // highest-complexity catalogue entries and verify the measured P.910 values
  // preserve the intended ordering.
  const auto& speech = test_video("Speech");
  const auto& goodwood = test_video("Goodwood");
  FrameGenerator speech_gen(64, 64, speech.profile);
  FrameGenerator goodwood_gen(64, 64, goodwood.profile);
  const auto speech_result = analyze_si_ti(speech_gen.generate(5));
  const auto goodwood_result = analyze_si_ti(goodwood_gen.generate(5));
  EXPECT_GT(goodwood_result.si_mean, speech_result.si_mean);
  EXPECT_GT(goodwood_result.ti_mean, speech_result.ti_mean);
}

}  // namespace
}  // namespace eacs::media
