#include "eacs/media/codec.h"

#include <gtest/gtest.h>

#include "eacs/media/catalogue.h"

namespace eacs::media {
namespace {

Frame test_frame(std::size_t w = 128, std::size_t h = 72) {
  FrameGenerator generator(w, h, test_video("Sintel").profile);
  return generator.next();
}

TEST(CodecTest, DownsampleDimensionsAndAveraging) {
  Frame source(4, 4);
  for (std::size_t y = 0; y < 4; ++y) {
    for (std::size_t x = 0; x < 4; ++x) source.set(x, y, x < 2 ? 0 : 200);
  }
  const Frame half = downsample(source, 2, 2);
  EXPECT_EQ(half.width(), 2U);
  EXPECT_EQ(half.at(0, 0), 0);
  EXPECT_EQ(half.at(1, 0), 200);
  EXPECT_THROW(downsample(source, 0, 2), std::invalid_argument);
}

TEST(CodecTest, UpsampleInterpolates) {
  Frame source(2, 1);
  source.set(0, 0, 0);
  source.set(1, 0, 200);
  const Frame wide = upsample(source, 5, 1);
  EXPECT_EQ(wide.at(0, 0), 0);
  EXPECT_EQ(wide.at(4, 0), 200);
  EXPECT_NEAR(wide.at(2, 0), 100, 2);
  EXPECT_THROW(upsample(source, 5, 0), std::invalid_argument);
}

TEST(CodecTest, QuantizeStepOneIsIdentity) {
  const Frame source = test_frame();
  const Frame q = quantize(source, 1.0);
  EXPECT_EQ(q.pixels(), source.pixels());
  EXPECT_THROW(quantize(source, 0.5), std::invalid_argument);
}

TEST(CodecTest, QuantizeCoarseStepReducesLevels) {
  const Frame source = test_frame();
  const Frame q = quantize(source, 32.0);
  for (std::size_t i = 0; i < q.pixels().size(); ++i) {
    EXPECT_EQ(q.pixels()[i] % 32, 0) << "pixel " << i;
  }
}

TEST(CodecTest, RungPixelsNamedAndDerived) {
  EXPECT_EQ(rung_pixels({5.8, "1080p"}).height, 1080U);
  EXPECT_EQ(rung_pixels({0.1, "144p"}).width, 256U);
  const auto derived = rung_pixels({1.0, ""});  // unnamed evaluation rung
  EXPECT_GT(derived.height, 144U);
  EXPECT_LT(derived.height, 1080U);
}

TEST(CodecTest, PsnrBasics) {
  const Frame source = test_frame();
  EXPECT_DOUBLE_EQ(psnr(source, source), 100.0);
  const Frame degraded = quantize(source, 32.0);
  const double value = psnr(source, degraded);
  EXPECT_GT(value, 15.0);
  EXPECT_LT(value, 45.0);
  Frame other(4, 4);
  EXPECT_THROW(psnr(source, other), std::invalid_argument);
}

TEST(CodecTest, SsimBasics) {
  const Frame source = test_frame();
  EXPECT_NEAR(ssim(source, source), 1.0, 1e-12);
  const Frame degraded = quantize(downsample(source, 32, 18), 16.0);
  const Frame restored = upsample(degraded, source.width(), source.height());
  const double value = ssim(source, restored);
  EXPECT_GT(value, 0.0);
  EXPECT_LT(value, 0.99);
  Frame other(4, 4);
  EXPECT_THROW(ssim(source, other), std::invalid_argument);
}

TEST(CodecTest, QualityMonotoneAcrossLadder) {
  // Higher rung => higher PSNR and SSIM against the pristine source. A
  // 480x270 source with resolution_scale 0.25 plays the role of a
  // 1080p-class display at laptop cost.
  const Frame source = test_frame(480, 270);
  CodecConfig config;
  config.resolution_scale = 0.25;
  const auto ladder = BitrateLadder::table2();
  double prev_psnr = 0.0;
  double prev_ssim = 0.0;
  for (std::size_t level = 0; level < ladder.size(); ++level) {
    const Frame decoded = simulate_encode(source, ladder.rung(level), config);
    const double p = psnr(source, decoded);
    const double s = ssim(source, decoded);
    EXPECT_GE(p, prev_psnr - 0.2) << "level " << level;
    EXPECT_GE(s, prev_ssim - 0.005) << "level " << level;
    prev_psnr = p;
    prev_ssim = s;
  }
  // And the top rung is decisively better than the bottom.
  const double bottom =
      psnr(source, simulate_encode(source, ladder.rung(0), config));
  const double top =
      psnr(source, simulate_encode(source, ladder.rung(ladder.size() - 1), config));
  EXPECT_GT(top, bottom + 3.0);
}

TEST(CodecTest, EncodeNeverUpscalesAboveSource) {
  const Frame tiny = test_frame(64, 36);
  const Frame decoded = simulate_encode(tiny, {5.8, "1080p"});
  EXPECT_EQ(decoded.width(), 64U);
  EXPECT_EQ(decoded.height(), 36U);
}

TEST(CodecTest, QualitySaturatesLikeQ0) {
  // The q0 shape: the 480p -> 1080p SSIM gain is much smaller than the
  // 144p -> 480p gain.
  const Frame source = test_frame(480, 270);
  CodecConfig config;
  config.resolution_scale = 0.25;
  const auto ladder = BitrateLadder::table2();
  const double s144 = ssim(source, simulate_encode(source, ladder.rung(0), config));
  const double s480 = ssim(source, simulate_encode(source, ladder.rung(3), config));
  const double s1080 = ssim(source, simulate_encode(source, ladder.rung(5), config));
  // Synthetic textures are harsher on downsampling than natural video, so
  // the concavity is milder than q0's; require a 1.5x gain ratio.
  EXPECT_GT(s480 - s144, 1.5 * (s1080 - s480));
}

}  // namespace
}  // namespace eacs::media
