#include "eacs/media/mpd.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eacs::media {
namespace {

TEST(Iso8601Test, FormatAndParse) {
  EXPECT_EQ(iso8601_duration(198.0), "PT198S");
  EXPECT_EQ(iso8601_duration(2.5), "PT2.5S");
  EXPECT_DOUBLE_EQ(parse_iso8601_duration("PT198S"), 198.0);
  EXPECT_DOUBLE_EQ(parse_iso8601_duration("PT2.5S"), 2.5);
  EXPECT_DOUBLE_EQ(parse_iso8601_duration("PT1H2M3S"), 3723.0);
  EXPECT_DOUBLE_EQ(parse_iso8601_duration("PT10M"), 600.0);
}

TEST(Iso8601Test, MalformedThrows) {
  EXPECT_THROW(parse_iso8601_duration("198S"), std::runtime_error);
  EXPECT_THROW(parse_iso8601_duration("PT"), std::runtime_error);
  EXPECT_THROW(parse_iso8601_duration("PT5X"), std::runtime_error);
  EXPECT_THROW(parse_iso8601_duration("PTS"), std::runtime_error);
  EXPECT_THROW(iso8601_duration(-1.0), std::invalid_argument);
}

VideoManifest sample_manifest(double vbr = 0.0) {
  return VideoManifest("trace1", 198.0, 2.0, BitrateLadder::table2(), VbrModel{vbr});
}

TEST(MpdTest, SerializesExpectedStructure) {
  const auto xml = to_mpd_xml(sample_manifest());
  EXPECT_NE(xml.find("<MPD"), std::string::npos);
  EXPECT_NE(xml.find("mediaPresentationDuration=\"PT198S\""), std::string::npos);
  EXPECT_NE(xml.find("<AdaptationSet"), std::string::npos);
  EXPECT_NE(xml.find("<SegmentTemplate"), std::string::npos);
  // 6 representations with bandwidth in bits/s.
  EXPECT_NE(xml.find("bandwidth=\"5800000\""), std::string::npos);
  EXPECT_NE(xml.find("bandwidth=\"100000\""), std::string::npos);
  EXPECT_NE(xml.find("width=\"1920\""), std::string::npos);
  EXPECT_NE(xml.find("height=\"144\""), std::string::npos);
}

TEST(MpdTest, RoundTripCbr) {
  const auto original = sample_manifest();
  const auto parsed = from_mpd_xml(to_mpd_xml(original));
  EXPECT_EQ(parsed.video_id(), "trace1");
  EXPECT_DOUBLE_EQ(parsed.total_duration_s(), 198.0);
  EXPECT_DOUBLE_EQ(parsed.segment_duration_s(), 2.0);
  ASSERT_EQ(parsed.ladder().size(), original.ladder().size());
  for (std::size_t level = 0; level < original.ladder().size(); ++level) {
    EXPECT_NEAR(parsed.ladder().bitrate(level), original.ladder().bitrate(level), 1e-9);
    EXPECT_EQ(parsed.ladder().rung(level).resolution,
              original.ladder().rung(level).resolution);
  }
  EXPECT_EQ(parsed.num_segments(), original.num_segments());
}

TEST(MpdTest, RoundTripVbrSizes) {
  const auto original = sample_manifest(0.2);
  const auto parsed = from_mpd_xml(to_mpd_xml(original));
  EXPECT_DOUBLE_EQ(parsed.vbr().amplitude, 0.2);
  // Segment sizes are deterministic in (video id, index): the parsed
  // manifest reproduces them exactly.
  for (std::size_t i = 0; i < original.num_segments(); i += 7) {
    EXPECT_DOUBLE_EQ(parsed.segment_size_megabits(i, 3),
                     original.segment_size_megabits(i, 3));
  }
}

TEST(MpdTest, RoundTripEvaluationLadder) {
  const VideoManifest original("eval", 612.0, 2.0, BitrateLadder::evaluation14());
  const auto parsed = from_mpd_xml(to_mpd_xml(original));
  EXPECT_EQ(parsed.ladder().size(), 14U);
  EXPECT_DOUBLE_EQ(parsed.ladder().highest_bitrate(), 5.8);
}

TEST(MpdTest, RoundTripBaseUrls) {
  auto original = sample_manifest();
  original.set_base_urls({"https://origin.example.com/v/",
                          "https://edge-1.example.net/v/",
                          "https://edge-2.example.net/v/"});
  const auto xml = to_mpd_xml(original);
  EXPECT_NE(xml.find("<BaseURL>https://origin.example.com/v/</BaseURL>"),
            std::string::npos);
  const auto parsed = from_mpd_xml(xml);
  // Document order is priority order: the first BaseURL is the default
  // origin, so the round-trip must preserve ordering exactly.
  ASSERT_EQ(parsed.base_urls().size(), 3U);
  EXPECT_EQ(parsed.base_urls()[0], "https://origin.example.com/v/");
  EXPECT_EQ(parsed.base_urls()[1], "https://edge-1.example.net/v/");
  EXPECT_EQ(parsed.base_urls()[2], "https://edge-2.example.net/v/");
}

TEST(MpdTest, NoBaseUrlsOmitsElementAndParsesEmpty) {
  const auto original = sample_manifest();
  const auto xml = to_mpd_xml(original);
  EXPECT_EQ(xml.find("<BaseURL"), std::string::npos);
  EXPECT_TRUE(from_mpd_xml(xml).base_urls().empty());
}

TEST(MpdTest, BaseUrlsEscapeRoundTrip) {
  auto original = sample_manifest();
  original.set_base_urls({"https://cdn.example.com/a?b=1&c=<2>"});
  const auto parsed = from_mpd_xml(to_mpd_xml(original));
  ASSERT_EQ(parsed.base_urls().size(), 1U);
  EXPECT_EQ(parsed.base_urls()[0], "https://cdn.example.com/a?b=1&c=<2>");
}

TEST(MpdTest, ParsesForeignMpdWithBaseUrls) {
  const char* foreign = R"(<?xml version="1.0"?>
<MPD xmlns="urn:mpeg:dash:schema:mpd:2011" type="static"
     mediaPresentationDuration="PT60S">
  <BaseURL>https://a.example.com/</BaseURL>
  <BaseURL>https://b.example.com/</BaseURL>
  <Period>
    <AdaptationSet contentType="video">
      <SegmentTemplate timescale="1000" duration="4000"/>
      <Representation id="low" bandwidth="500000"/>
    </AdaptationSet>
  </Period>
</MPD>)";
  const auto manifest = from_mpd_xml(foreign);
  ASSERT_EQ(manifest.base_urls().size(), 2U);
  EXPECT_EQ(manifest.base_urls()[0], "https://a.example.com/");
  EXPECT_EQ(manifest.base_urls()[1], "https://b.example.com/");
}

TEST(MpdTest, ParsesForeignMpdWithoutPrivateAttributes) {
  const char* foreign = R"(<?xml version="1.0"?>
<MPD xmlns="urn:mpeg:dash:schema:mpd:2011" type="static"
     mediaPresentationDuration="PT60S">
  <Period>
    <AdaptationSet contentType="video">
      <SegmentTemplate timescale="1000" duration="4000"/>
      <Representation id="low" bandwidth="500000"/>
      <Representation id="high" bandwidth="3000000" width="1280" height="720"/>
    </AdaptationSet>
  </Period>
</MPD>)";
  const auto manifest = from_mpd_xml(foreign);
  EXPECT_EQ(manifest.video_id(), "imported-mpd");
  EXPECT_DOUBLE_EQ(manifest.total_duration_s(), 60.0);
  EXPECT_DOUBLE_EQ(manifest.segment_duration_s(), 4.0);
  ASSERT_EQ(manifest.ladder().size(), 2U);
  EXPECT_DOUBLE_EQ(manifest.ladder().bitrate(0), 0.5);
  EXPECT_EQ(manifest.ladder().rung(1).resolution, "720p");
  EXPECT_DOUBLE_EQ(manifest.vbr().amplitude, 0.0);
}

TEST(MpdTest, RejectsMalformedDocuments) {
  EXPECT_THROW(from_mpd_xml("<NotMpd/>"), std::runtime_error);
  EXPECT_THROW(from_mpd_xml("<MPD mediaPresentationDuration=\"PT60S\"/>"),
               std::runtime_error);  // no Period
  const char* no_reps = R"(<MPD mediaPresentationDuration="PT60S">
  <Period><AdaptationSet><SegmentTemplate duration="2000" timescale="1000"/>
  </AdaptationSet></Period></MPD>)";
  EXPECT_THROW(from_mpd_xml(no_reps), std::runtime_error);
}

}  // namespace
}  // namespace eacs::media
