#include "eacs/util/table.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eacs {
namespace {

TEST(AsciiTableTest, RendersHeaderAndRows) {
  AsciiTable table("Demo");
  table.set_header({"name", "value"});
  table.add_row({"x", "1"});
  table.add_row({"longer", "22"});
  const auto text = table.render();
  EXPECT_NE(text.find("Demo"), std::string::npos);
  EXPECT_NE(text.find("| name"), std::string::npos);
  EXPECT_NE(text.find("longer"), std::string::npos);
}

TEST(AsciiTableTest, RightAlignment) {
  AsciiTable table;
  table.set_header({"n"});
  table.set_alignment({Align::kRight});
  table.add_row({"7"});
  table.add_row({"123"});
  const auto text = table.render();
  // "7" padded to width 3, right-aligned: "|   7 |"
  EXPECT_NE(text.find("|   7 |"), std::string::npos);
}

TEST(AsciiTableTest, RowWidthMismatchThrows) {
  AsciiTable table;
  table.set_header({"a", "b"});
  EXPECT_THROW(table.add_row({"1"}), std::invalid_argument);
}

TEST(AsciiTableTest, NumFormatting) {
  EXPECT_EQ(AsciiTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::num(3.0, 0), "3");
}

TEST(AsciiTableTest, PercentFormatting) {
  EXPECT_EQ(AsciiTable::percent(0.33, 1), "33.0%");
  EXPECT_EQ(AsciiTable::percent(0.0773, 2), "7.73%");
}

TEST(AsciiTableTest, NoHeaderTable) {
  AsciiTable table;
  table.add_row({"a", "b"});
  const auto text = table.render();
  EXPECT_NE(text.find("| a | b |"), std::string::npos);
}

}  // namespace
}  // namespace eacs
