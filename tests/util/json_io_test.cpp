#include "eacs/util/json_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace eacs::util {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

class JsonIoTest : public ::testing::Test {
 protected:
  std::string path(const std::string& name) const {
    return (std::filesystem::path(::testing::TempDir()) / name).string();
  }

  void TearDown() override {
    for (const auto& p : cleanup_) std::filesystem::remove(p);
  }

  std::string fresh(const std::string& name) {
    const std::string p = path(name);
    std::filesystem::remove(p);
    cleanup_.push_back(p);
    return p;
  }

  std::vector<std::string> cleanup_;
};

TEST_F(JsonIoTest, MissingFileBecomesOneElementArray) {
  const std::string p = fresh("json_io_create.json");
  upsert_json_array_record(p, R"({"experiment": "a", "value": 1})");
  const auto elements = split_json_array(read_file(p));
  ASSERT_EQ(elements.size(), 1U);
  EXPECT_EQ(json_object_string_field(elements[0], "experiment"), "a");
}

TEST_F(JsonIoTest, DistinctExperimentsAccumulateInOrder) {
  const std::string p = fresh("json_io_accumulate.json");
  upsert_json_array_record(p, R"({"experiment": "a", "value": 1})");
  upsert_json_array_record(p, R"({"experiment": "b", "value": 2})");
  upsert_json_array_record(p, R"({"experiment": "c", "value": 3})");
  const auto elements = split_json_array(read_file(p));
  ASSERT_EQ(elements.size(), 3U);
  EXPECT_EQ(json_object_string_field(elements[0], "experiment"), "a");
  EXPECT_EQ(json_object_string_field(elements[1], "experiment"), "b");
  EXPECT_EQ(json_object_string_field(elements[2], "experiment"), "c");
}

TEST_F(JsonIoTest, SameExperimentReplacesInPlace) {
  const std::string p = fresh("json_io_replace.json");
  upsert_json_array_record(p, R"({"experiment": "a", "value": 1})");
  upsert_json_array_record(p, R"({"experiment": "b", "value": 2})");
  upsert_json_array_record(p, R"({"experiment": "a", "value": 99})");
  const auto elements = split_json_array(read_file(p));
  ASSERT_EQ(elements.size(), 2U);
  EXPECT_EQ(json_object_string_field(elements[0], "experiment"), "a");
  EXPECT_NE(elements[0].find("99"), std::string::npos);
  EXPECT_EQ(json_object_string_field(elements[1], "experiment"), "b");
}

TEST_F(JsonIoTest, TruncatedFileIsRejectedNotClobbered) {
  const std::string p = fresh("json_io_truncated.json");
  const std::string truncated = R"([{"experiment": "a", "va)";
  write_file(p, truncated);
  EXPECT_THROW(upsert_json_array_record(p, R"({"experiment": "b"})"),
               std::runtime_error);
  // The corrupted evidence is left intact for inspection.
  EXPECT_EQ(read_file(p), truncated);
}

TEST_F(JsonIoTest, NonArrayFileIsRejected) {
  const std::string p = fresh("json_io_nonarray.json");
  write_file(p, R"({"experiment": "a"})");
  EXPECT_THROW(upsert_json_array_record(p, R"({"experiment": "b"})"),
               std::runtime_error);
}

TEST(JsonIoSplitTest, RespectsStringsAndNesting) {
  const auto elements = split_json_array(
      R"([{"a": "br], ace"}, {"b": {"nested": [1, 2, {"x": "}"}]}}, 3])");
  ASSERT_EQ(elements.size(), 3U);
  EXPECT_EQ(elements[0], R"({"a": "br], ace"})");
  EXPECT_EQ(elements[2], "3");
}

TEST(JsonIoSplitTest, EmptyArrayAndWhitespace) {
  EXPECT_TRUE(split_json_array("[]").empty());
  EXPECT_TRUE(split_json_array("  [ \n ]  ").empty());
  EXPECT_THROW(split_json_array(""), std::runtime_error);
  EXPECT_THROW(split_json_array("["), std::runtime_error);
  EXPECT_THROW(split_json_array("[{]"), std::runtime_error);
  EXPECT_THROW(split_json_array(R"([{"a": 1}, ])"), std::runtime_error);
  EXPECT_THROW(split_json_array(R"([{"a": "unterminated])"), std::runtime_error);
}

TEST(JsonIoSplitTest, FieldLookupIsTopLevelOnly) {
  const std::string object =
      R"({"meta": {"experiment": "inner"}, "experiment": "outer", "x": "y"})";
  EXPECT_EQ(json_object_string_field(object, "experiment"), "outer");
  EXPECT_EQ(json_object_string_field(object, "missing"), "");
  EXPECT_EQ(json_object_string_field(R"({"a": "es\"caped"})", "a"),
            "es\"caped");
}

TEST(JsonIoSnakeCaseTest, TitlesBecomeStableIds) {
  EXPECT_EQ(snake_case_id("Extension: CDN failover"), "extension_cdn_failover");
  EXPECT_EQ(snake_case_id("Fleet planner cache"), "fleet_planner_cache");
  EXPECT_EQ(snake_case_id("already_snake"), "already_snake");
  // Non-alnum runs collapse to one separator; edges are trimmed.
  EXPECT_EQ(snake_case_id("  --A/B  test!!  "), "a_b_test");
  EXPECT_EQ(snake_case_id("MiXeD Case 42"), "mixed_case_42");
  EXPECT_EQ(snake_case_id(""), "");
  EXPECT_EQ(snake_case_id("!!!"), "");
}

TEST_F(JsonIoTest, ConcurrentAppendersAlwaysLeaveAValidArray) {
  const std::string p = fresh("json_io_concurrent.json");
  constexpr int kThreads = 4;
  constexpr int kRounds = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        const std::string record = "{\"experiment\": \"t" + std::to_string(t) +
                                   "_r" + std::to_string(r) + "\"}";
        // Writers race (last writer wins whole-file), but every observable
        // state must be a well-formed array — so no writer may ever throw
        // the truncation error, and the final file must parse.
        upsert_json_array_record(p, record);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto elements = split_json_array(read_file(p));
  EXPECT_GE(elements.size(), 1U);
  for (const auto& element : elements) {
    EXPECT_FALSE(json_object_string_field(element, "experiment").empty());
  }
}

}  // namespace
}  // namespace eacs::util
