#include "eacs/util/least_squares.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "eacs/util/rng.h"

namespace eacs {
namespace {

TEST(LinearSystemTest, SolvesKnownSystem) {
  // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
  const auto x = solve_linear_system({2, 1, 1, 3}, {5, 10}, 2);
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LinearSystemTest, SingularThrows) {
  EXPECT_THROW(solve_linear_system({1, 2, 2, 4}, {1, 2}, 2), std::runtime_error);
}

TEST(LinearSystemTest, DimensionMismatchThrows) {
  EXPECT_THROW(solve_linear_system({1, 2, 3}, {1, 2}, 2), std::invalid_argument);
}

TEST(LinearSystemTest, PivotingHandlesZeroDiagonal) {
  // 0x + y = 2; x + 0y = 3 requires a row swap.
  const auto x = solve_linear_system({0, 1, 1, 0}, {2, 3}, 2);
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(FitLineTest, ExactLine) {
  const std::vector<double> x = {0.0, 1.0, 2.0, 3.0};
  const std::vector<double> y = {1.0, 3.0, 5.0, 7.0};
  const auto fit = fit_line(x, y);
  EXPECT_NEAR(fit.params[0], 1.0, 1e-10);
  EXPECT_NEAR(fit.params[1], 2.0, 1e-10);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-10);
}

TEST(FitLineTest, NoisyLineRecovered) {
  Rng rng(101);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 500; ++i) {
    const double xi = rng.uniform(0.0, 10.0);
    x.push_back(xi);
    y.push_back(2.5 - 0.7 * xi + rng.normal(0.0, 0.1));
  }
  const auto fit = fit_line(x, y);
  EXPECT_NEAR(fit.params[0], 2.5, 0.05);
  EXPECT_NEAR(fit.params[1], -0.7, 0.01);
  EXPECT_GT(fit.r_squared, 0.95);
}

TEST(FitLineTest, SizeMismatchThrows) {
  EXPECT_THROW(fit_line(std::vector<double>{1.0}, std::vector<double>{1.0, 2.0}),
               std::invalid_argument);
}

TEST(LinearLeastSquaresTest, UnderdeterminedThrows) {
  EXPECT_THROW(
      linear_least_squares(std::vector<double>{1.0, 2.0}, std::vector<double>{1.0}, 2),
      std::invalid_argument);
}

TEST(PowerLawTest, ExactRecovery) {
  std::vector<double> x;
  std::vector<double> y;
  for (double xi = 0.5; xi <= 8.0; xi += 0.5) {
    x.push_back(xi);
    y.push_back(3.0 * std::pow(xi, 1.7));
  }
  const auto fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.params[0], 3.0, 1e-8);
  EXPECT_NEAR(fit.params[1], 1.7, 1e-8);
}

TEST(PowerLawTest, SkipsNonPositiveSamples) {
  const std::vector<double> x = {0.0, 1.0, 2.0, 4.0, -1.0};
  const std::vector<double> y = {5.0, 2.0, 4.0, 8.0, 3.0};
  const auto fit = fit_power_law(x, y);  // effective points: (1,2),(2,4),(4,8)
  EXPECT_NEAR(fit.params[0], 2.0, 1e-8);
  EXPECT_NEAR(fit.params[1], 1.0, 1e-8);
}

TEST(PowerLaw2dTest, RecoversPaperImpairmentSurface) {
  // The exact fit DESIGN.md derives from the paper's four reported samples.
  const std::vector<double> v = {2.0, 6.0, 2.0, 6.0};
  const std::vector<double> r = {1.5, 1.5, 5.8, 5.8};
  const std::vector<double> y = {0.049, 0.184, 0.174, 0.549};
  const auto fit = fit_power_law_2d(v, r, y);
  EXPECT_NEAR(fit.params[0], 0.0165, 0.001);
  EXPECT_NEAR(fit.params[1], 1.124, 0.02);
  EXPECT_NEAR(fit.params[2], 0.872, 0.02);
  // All four points reproduced within ~6%.
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double predicted =
        fit.params[0] * std::pow(v[i], fit.params[1]) * std::pow(r[i], fit.params[2]);
    EXPECT_NEAR(predicted / y[i], 1.0, 0.06);
  }
}

TEST(PowerLaw2dTest, NoisyRecovery) {
  Rng rng(103);
  std::vector<double> v;
  std::vector<double> r;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    const double vi = rng.uniform(0.5, 7.0);
    const double ri = rng.uniform(0.1, 6.0);
    v.push_back(vi);
    r.push_back(ri);
    y.push_back(0.02 * std::pow(vi, 1.1) * std::pow(ri, 0.9) *
                std::exp(rng.normal(0.0, 0.05)));
  }
  const auto fit = fit_power_law_2d(v, r, y);
  EXPECT_NEAR(fit.params[0], 0.02, 0.002);
  EXPECT_NEAR(fit.params[1], 1.1, 0.05);
  EXPECT_NEAR(fit.params[2], 0.9, 0.05);
}

TEST(GaussNewtonTest, FitsExponentialDecay) {
  // y = 5 - a * exp(-b * x), the shape of saturating-QoE curves.
  std::vector<double> xs;
  std::vector<double> ys;
  for (double x = 0.1; x <= 6.0; x += 0.2) {
    xs.push_back(x);
    ys.push_back(5.0 - 2.0 * std::exp(-0.8 * x));
  }
  const auto model = [&xs](std::span<const double> p, std::size_t i) {
    return 5.0 - p[0] * std::exp(-p[1] * xs[i]);
  };
  const auto fit = gauss_newton(model, ys, {1.0, 1.0});
  EXPECT_TRUE(fit.converged);
  EXPECT_NEAR(fit.params[0], 2.0, 1e-6);
  EXPECT_NEAR(fit.params[1], 0.8, 1e-6);
}

TEST(GaussNewtonTest, FitsPaperQualityCurve) {
  // q0(r) = 5 - a * r^(-b) with Table III's a=1.036, b=0.429.
  std::vector<double> rates = {0.1, 0.375, 0.75, 1.5, 3.0, 5.8};
  std::vector<double> q;
  for (double r : rates) q.push_back(5.0 - 1.036 * std::pow(r, -0.429));
  const auto model = [&rates](std::span<const double> p, std::size_t i) {
    return 5.0 - p[0] * std::pow(rates[i], -p[1]);
  };
  const auto fit = gauss_newton(model, q, {0.5, 0.5});
  EXPECT_NEAR(fit.params[0], 1.036, 1e-5);
  EXPECT_NEAR(fit.params[1], 0.429, 1e-5);
}

TEST(GaussNewtonTest, NoisyFitStillCloses) {
  Rng rng(107);
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(0.1, 6.0);
    xs.push_back(x);
    ys.push_back(5.0 - 1.5 * std::pow(x, -0.5) + rng.normal(0.0, 0.05));
  }
  const auto model = [&xs](std::span<const double> p, std::size_t i) {
    return 5.0 - p[0] * std::pow(xs[i], -p[1]);
  };
  const auto fit = gauss_newton(model, ys, {1.0, 0.3});
  EXPECT_NEAR(fit.params[0], 1.5, 0.1);
  EXPECT_NEAR(fit.params[1], 0.5, 0.05);
}

TEST(GaussNewtonTest, UnderdeterminedThrows) {
  const auto model = [](std::span<const double>, std::size_t) { return 0.0; };
  EXPECT_THROW(gauss_newton(model, std::vector<double>{1.0}, {1.0, 2.0}),
               std::invalid_argument);
}

}  // namespace
}  // namespace eacs
