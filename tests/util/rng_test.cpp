#include "eacs/util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace eacs {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(13);
  std::vector<int> counts(6, 0);
  for (int i = 0; i < 60000; ++i) {
    const auto v = rng.uniform_int(0, 5);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 5);
    ++counts[static_cast<std::size_t>(v)];
  }
  for (int count : counts) {
    EXPECT_GT(count, 9000);
    EXPECT_LT(count, 11000);
  }
}

TEST(RngTest, UniformIntSingletonRange) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(29);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(0.5);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(RngTest, PoissonSmallMean) {
  Rng rng(31);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.poisson(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(37);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.poisson(100.0);
  EXPECT_NEAR(sum / n, 100.0, 1.0);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(41);
  EXPECT_EQ(rng.poisson(0.0), 0U);
  EXPECT_EQ(rng.poisson(-1.0), 0U);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(43);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(47);
  Rng child = parent.fork(1);
  Rng child2 = parent.fork(1);
  // Two forks from the advanced parent state differ from each other.
  EXPECT_NE(child.next_u64(), child2.next_u64());
}

TEST(RngTest, ForkDeterministic) {
  Rng p1(53);
  Rng p2(53);
  Rng c1 = p1.fork(9);
  Rng c2 = p2.fork(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(59);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = items;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(61);
  std::vector<int> items(100);
  for (int i = 0; i < 100; ++i) items[static_cast<std::size_t>(i)] = i;
  auto shuffled = items;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, items);
}

}  // namespace
}  // namespace eacs
