#include "eacs/util/logging.h"

#include <gtest/gtest.h>

namespace eacs {
namespace {

/// Restores the global level after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }
  LogLevel saved_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LoggingTest, MacroShortCircuitsBelowLevel) {
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  const auto expensive = [&evaluations]() {
    ++evaluations;
    return "payload";
  };
  EACS_LOG_DEBUG << expensive();  // below level: operand must not evaluate
  EXPECT_EQ(evaluations, 0);
  EACS_LOG_ERROR << expensive();  // at level: evaluates (writes to stderr)
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  EACS_LOG_ERROR << [&evaluations]() {
    ++evaluations;
    return "x";
  }();
  EXPECT_EQ(evaluations, 0);
}

TEST_F(LoggingTest, LogMessageRespectsLevelDirectly) {
  set_log_level(LogLevel::kWarn);
  // Only checks it does not crash / deadlock with mixed direct calls.
  log_message(LogLevel::kDebug, "dropped");
  log_message(LogLevel::kError, "emitted");
}

}  // namespace
}  // namespace eacs
