#include "eacs/util/logging.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace eacs {
namespace {

/// Restores the global level after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override { set_log_level(saved_); }
  LogLevel saved_ = LogLevel::kWarn;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LoggingTest, MacroShortCircuitsBelowLevel) {
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  const auto expensive = [&evaluations]() {
    ++evaluations;
    return "payload";
  };
  EACS_LOG_DEBUG << expensive();  // below level: operand must not evaluate
  EXPECT_EQ(evaluations, 0);
  EACS_LOG_ERROR << expensive();  // at level: evaluates (writes to stderr)
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_log_level(LogLevel::kOff);
  int evaluations = 0;
  EACS_LOG_ERROR << [&evaluations]() {
    ++evaluations;
    return "x";
  }();
  EXPECT_EQ(evaluations, 0);
}

TEST_F(LoggingTest, LogMessageRespectsLevelDirectly) {
  set_log_level(LogLevel::kWarn);
  // Only checks it does not crash / deadlock with mixed direct calls.
  log_message(LogLevel::kDebug, "dropped");
  log_message(LogLevel::kError, "emitted");
}

TEST_F(LoggingTest, ConcurrentLoggingFromPoolWorkersIsSafe) {
  // Pool workers log concurrently during parallel sweeps; this stress test
  // exists to run under TSan. Interleaved emits, level flips and macro use
  // from 8 threads must be race-free.
  set_log_level(LogLevel::kError);  // keep stderr quiet for most iterations
  constexpr int kThreads = 8;
  constexpr int kIterations = 200;
  std::atomic<bool> start{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &start] {
      while (!start.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kIterations; ++i) {
        log_message(LogLevel::kDebug, "dropped message");
        EACS_LOG_DEBUG << "thread " << t << " iteration " << i;
        if (i % 50 == 0) {
          // Exercise the level store concurrently with readers.
          set_log_level(t % 2 == 0 ? LogLevel::kError : LogLevel::kOff);
        }
        if (i == kIterations - 1) {
          log_message(LogLevel::kError, "final message (may be dropped)");
        }
      }
    });
  }
  start.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
}

}  // namespace
}  // namespace eacs
