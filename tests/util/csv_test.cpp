#include "eacs/util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <stdexcept>
#include <string>

namespace eacs {
namespace {

TEST(CsvTest, ParseSimple) {
  const auto table = parse_csv("a,b,c\n1,2,3\n4,5,6\n");
  EXPECT_EQ(table.num_rows(), 2U);
  EXPECT_EQ(table.num_cols(), 3U);
  EXPECT_EQ(table.cell(0, "a"), "1");
  EXPECT_EQ(table.cell(1, "c"), "6");
}

TEST(CsvTest, ParseQuotedFields) {
  const auto table = parse_csv("name,note\nx,\"hello, world\"\ny,\"a \"\"quoted\"\" bit\"\n");
  EXPECT_EQ(table.cell(0, "note"), "hello, world");
  EXPECT_EQ(table.cell(1, "note"), "a \"quoted\" bit");
}

TEST(CsvTest, ParseCrlfAndMissingTrailingNewline) {
  const auto table = parse_csv("a,b\r\n1,2\r\n3,4");
  EXPECT_EQ(table.num_rows(), 2U);
  EXPECT_EQ(table.cell(1, "b"), "4");
}

TEST(CsvTest, RaggedRowThrows) {
  EXPECT_THROW(parse_csv("a,b\n1\n"), std::runtime_error);
}

/// Returns the runtime_error message from `fn`, failing if it doesn't throw.
template <typename Fn>
std::string error_message(Fn&& fn) {
  try {
    fn();
  } catch (const std::runtime_error& error) {
    return error.what();
  }
  ADD_FAILURE() << "expected std::runtime_error";
  return {};
}

TEST(CsvTest, RaggedRowErrorCitesLine) {
  const auto message =
      error_message([] { parse_csv("a,b\n1,2\n3,4\n5\n6,7\n"); });
  EXPECT_NE(message.find("line 4"), std::string::npos) << message;
  EXPECT_NE(message.find("1 cells"), std::string::npos) << message;
}

TEST(CsvTest, RaggedRowLineAccountsForQuotedNewlines) {
  // The quoted cell spans lines 2-3, so the ragged row starts on line 4.
  const auto message =
      error_message([] { parse_csv("a,b\n\"x\ny\",2\nonly_one\n"); });
  EXPECT_NE(message.find("line 4"), std::string::npos) << message;
}

TEST(CsvTest, UnterminatedQuoteErrorCitesOpeningLine) {
  const auto message = error_message([] { parse_csv("a\n1\n\"oops\n"); });
  EXPECT_NE(message.find("line 3"), std::string::npos) << message;
}

TEST(CsvTest, NumericErrorsCiteRowAndColumn) {
  const auto table = parse_csv("d,i\n1.5,2\nbad,x\n");
  const auto double_message =
      error_message([&] { table.cell_as_double(1, "d"); });
  EXPECT_NE(double_message.find("row 1"), std::string::npos) << double_message;
  EXPECT_NE(double_message.find("'d'"), std::string::npos) << double_message;
  const auto int_message = error_message([&] { table.cell_as_int(1, "i"); });
  EXPECT_NE(int_message.find("row 1"), std::string::npos) << int_message;
  EXPECT_NE(int_message.find("'i'"), std::string::npos) << int_message;
}

TEST(CsvTest, TrailingGarbageAfterNumberThrows) {
  const auto table = parse_csv("d\n1.5abc\n");
  EXPECT_THROW(table.cell_as_double(0, "d"), std::runtime_error);
}

TEST(CsvTest, EmptyCellIsNotADouble) {
  const auto table = parse_csv("a,b\n,2\n");
  EXPECT_THROW(table.cell_as_double(0, "a"), std::runtime_error);
}

TEST(CsvTest, EmptyInputThrows) {
  EXPECT_THROW(parse_csv(""), std::runtime_error);
}

TEST(CsvTest, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv("a\n\"oops\n"), std::runtime_error);
}

TEST(CsvTest, MissingColumnThrows) {
  const auto table = parse_csv("a\n1\n");
  EXPECT_THROW(table.column_index("nope"), std::out_of_range);
  EXPECT_FALSE(table.has_column("nope"));
  EXPECT_TRUE(table.has_column("a"));
}

TEST(CsvTest, NumericConversions) {
  const auto table = parse_csv("d,i\n3.25,42\n");
  EXPECT_DOUBLE_EQ(table.cell_as_double(0, "d"), 3.25);
  EXPECT_EQ(table.cell_as_int(0, "i"), 42);
}

TEST(CsvTest, BadNumericCellThrows) {
  const auto table = parse_csv("d\nnot_a_number\n");
  EXPECT_THROW(table.cell_as_double(0, "d"), std::runtime_error);
  EXPECT_THROW(table.cell_as_int(0, "d"), std::runtime_error);
}

TEST(CsvTest, ColumnAsDouble) {
  const auto table = parse_csv("x\n1\n2\n3\n");
  EXPECT_EQ(table.column_as_double("x"), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(CsvTest, RoundTripWithQuoting) {
  CsvTable table({"k", "v"});
  table.add_row({"plain", "with,comma"});
  table.add_row({"quote", "has \"q\""});
  table.add_row({"newline", "two\nlines"});
  const auto reparsed = parse_csv(to_csv(table));
  EXPECT_EQ(reparsed.cell(0, "v"), "with,comma");
  EXPECT_EQ(reparsed.cell(1, "v"), "has \"q\"");
  EXPECT_EQ(reparsed.cell(2, "v"), "two\nlines");
}

TEST(CsvTest, AddRowWidthMismatchThrows) {
  CsvTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only_one"}), std::runtime_error);
}

TEST(CsvTest, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "eacs_csv_test.csv";
  CsvTable table({"t", "v"});
  table.add_row({"0.5", "12.25"});
  write_csv_file(path, table);
  const auto loaded = read_csv_file(path);
  EXPECT_EQ(loaded.num_rows(), 1U);
  EXPECT_DOUBLE_EQ(loaded.cell_as_double(0, "v"), 12.25);
  std::filesystem::remove(path);
}

TEST(CsvTest, ReadMissingFileThrows) {
  EXPECT_THROW(read_csv_file("/nonexistent/dir/file.csv"), std::runtime_error);
}

TEST(CsvTest, FormatDoubleRoundTrips) {
  const double value = 0.1 + 0.2;
  const auto text = format_double(value);
  EXPECT_DOUBLE_EQ(std::stod(text), value);
}

}  // namespace
}  // namespace eacs
