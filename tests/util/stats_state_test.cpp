// Checkpoint-safe state round-trips for the streaming aggregators and the
// Rng engine (DESIGN §14). The property that matters downstream is
// *continuation equivalence*: feed half a stream, state()/restore() into a
// fresh object, feed the other half — every subsequent observable must be
// bit-identical to the never-interrupted aggregator, including merges.
#include <cmath>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "eacs/util/rng.h"
#include "eacs/util/stats.h"

namespace eacs {
namespace {

std::vector<double> stream(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs.push_back(rng.uniform(-5.0, 50.0));
  }
  return xs;
}

// ---------------------------------------------------------------------------
// Rng

TEST(RngStateTest, RoundTripContinuesTheExactSequence) {
  Rng rng(0xABCDEF);
  for (int i = 0; i < 100; ++i) (void)rng.uniform();
  (void)rng.normal();  // leave a cached Box-Muller value in flight

  const RngState state = rng.state();
  Rng restored(1);  // different seed: restore must fully overwrite
  restored.restore(state);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(restored.uniform(), rng.uniform());
    EXPECT_EQ(restored.normal(), rng.normal());  // incl. the cached half
  }
}

TEST(RngStateTest, RestoreRejectsAllZeroWords) {
  RngState state;  // all-zero: xoshiro's absorbing state
  Rng rng(7);
  EXPECT_THROW(rng.restore(state), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// RunningStats

TEST(RunningStatsStateTest, SplitStreamMatchesUninterrupted) {
  const std::vector<double> xs = stream(11, 1000);
  RunningStats uninterrupted;
  for (const double x : xs) uninterrupted.add(x);

  RunningStats first;
  for (std::size_t i = 0; i < 500; ++i) first.add(xs[i]);
  RunningStats resumed;
  resumed.restore(first.state());
  for (std::size_t i = 500; i < xs.size(); ++i) resumed.add(xs[i]);

  EXPECT_EQ(resumed.count(), uninterrupted.count());
  EXPECT_EQ(resumed.mean(), uninterrupted.mean());
  EXPECT_EQ(resumed.variance(), uninterrupted.variance());
  EXPECT_EQ(resumed.sum(), uninterrupted.sum());
  EXPECT_EQ(resumed.min(), uninterrupted.min());
  EXPECT_EQ(resumed.max(), uninterrupted.max());
}

TEST(RunningStatsStateTest, RestoredShardMergesLikeTheOriginal) {
  // serialize -> restore -> merge must equal never-serialized merge, bitwise.
  const std::vector<double> xs = stream(12, 400);
  RunningStats left, right;
  for (std::size_t i = 0; i < 200; ++i) left.add(xs[i]);
  for (std::size_t i = 200; i < xs.size(); ++i) right.add(xs[i]);

  RunningStats reference = left;
  reference.merge(right);

  RunningStats restored_left, restored_right;
  restored_left.restore(left.state());
  restored_right.restore(right.state());
  restored_left.merge(restored_right);

  EXPECT_EQ(restored_left.count(), reference.count());
  EXPECT_EQ(restored_left.mean(), reference.mean());
  EXPECT_EQ(restored_left.variance(), reference.variance());
  EXPECT_EQ(restored_left.sum(), reference.sum());
}

// ---------------------------------------------------------------------------
// P2Quantile

TEST(P2QuantileStateTest, SplitStreamMatchesUninterrupted) {
  for (const double p : {0.1, 0.5, 0.9}) {
    const std::vector<double> xs = stream(13, 1000);
    P2Quantile uninterrupted(p);
    for (const double x : xs) uninterrupted.add(x);

    P2Quantile first(p);
    for (std::size_t i = 0; i < 333; ++i) first.add(xs[i]);
    P2Quantile resumed(p);
    resumed.restore(first.state());
    for (std::size_t i = 333; i < xs.size(); ++i) resumed.add(xs[i]);

    EXPECT_EQ(resumed.count(), uninterrupted.count());
    EXPECT_EQ(resumed.value(), uninterrupted.value());
  }
}

TEST(P2QuantileStateTest, RoundTripBelowFiveSamples) {
  // The exact-mode prefix (fewer than 5 samples) must survive the trip too.
  P2Quantile q(0.5);
  q.add(3.0);
  q.add(1.0);
  P2Quantile restored(0.5);
  restored.restore(q.state());
  restored.add(2.0);
  q.add(2.0);
  EXPECT_EQ(restored.value(), q.value());
  EXPECT_EQ(restored.count(), q.count());
}

TEST(P2QuantileStateTest, RestoreValidates) {
  P2Quantile q(0.5);
  for (int i = 0; i < 50; ++i) q.add(static_cast<double>(i));
  P2QuantileState state = q.state();
  state.p = 1.5;  // outside (0, 1)
  P2Quantile victim(0.5);
  EXPECT_THROW(victim.restore(state), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// ReservoirSampler

TEST(ReservoirSamplerStateTest, SplitStreamMatchesUninterrupted) {
  const std::vector<double> xs = stream(14, 5000);
  ReservoirSampler uninterrupted(64, 0xFEED);
  for (const double x : xs) uninterrupted.add(x);

  ReservoirSampler first(64, 0xFEED);
  for (std::size_t i = 0; i < 2500; ++i) first.add(xs[i]);
  ReservoirSampler resumed(64, 0x1);  // seed overwritten by restore
  resumed.restore(first.state());
  for (std::size_t i = 2500; i < xs.size(); ++i) resumed.add(xs[i]);

  EXPECT_EQ(resumed.count(), uninterrupted.count());
  ASSERT_EQ(resumed.sample().size(), uninterrupted.sample().size());
  for (std::size_t i = 0; i < resumed.sample().size(); ++i) {
    EXPECT_EQ(resumed.sample()[i], uninterrupted.sample()[i]);
  }
  for (const double p : {0.05, 0.5, 0.95}) {
    EXPECT_EQ(resumed.quantile(p), uninterrupted.quantile(p));
  }
}

TEST(ReservoirSamplerStateTest, RestoredShardMergesLikeTheOriginal) {
  // The fleet merge path: region reservoirs fold into the fleet reservoir.
  // Restored shards must merge bit-identically to never-serialized ones —
  // the merge draws from *both* Rng engines, so the engine state matters.
  const std::vector<double> xs = stream(15, 3000);
  ReservoirSampler left(32, 0xAA);
  ReservoirSampler right(32, 0xBB);
  for (std::size_t i = 0; i < 1500; ++i) left.add(xs[i]);
  for (std::size_t i = 1500; i < xs.size(); ++i) right.add(xs[i]);

  ReservoirSampler reference(32, 0xCC);
  reference.merge(left);
  reference.merge(right);

  ReservoirSampler restored_left(32, 0x1), restored_right(32, 0x2);
  restored_left.restore(left.state());
  restored_right.restore(right.state());
  ReservoirSampler target(32, 0xCC);
  target.merge(restored_left);
  target.merge(restored_right);

  EXPECT_EQ(target.count(), reference.count());
  ASSERT_EQ(target.sample().size(), reference.sample().size());
  for (std::size_t i = 0; i < target.sample().size(); ++i) {
    EXPECT_EQ(target.sample()[i], reference.sample()[i]);
  }
}

TEST(ReservoirSamplerStateTest, RestoreValidates) {
  ReservoirSampler sampler(8, 42);
  for (int i = 0; i < 100; ++i) sampler.add(static_cast<double>(i));
  {
    ReservoirSamplerState state = sampler.state();
    state.capacity = 0;
    ReservoirSampler victim(8, 1);
    EXPECT_THROW(victim.restore(state), std::invalid_argument);
  }
  {
    ReservoirSamplerState state = sampler.state();
    state.items.push_back(1.0);  // more items than capacity
    ReservoirSampler victim(8, 1);
    EXPECT_THROW(victim.restore(state), std::invalid_argument);
  }
  {
    ReservoirSamplerState state = sampler.state();
    state.count = 3;  // fewer seen than retained
    ReservoirSampler victim(8, 1);
    EXPECT_THROW(victim.restore(state), std::invalid_argument);
  }
}

}  // namespace
}  // namespace eacs
