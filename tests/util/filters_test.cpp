#include "eacs/util/filters.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace eacs {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(EmaFilterTest, FirstSamplePrimes) {
  EmaFilter filter(0.5);
  EXPECT_FALSE(filter.primed());
  EXPECT_DOUBLE_EQ(filter.update(4.0), 4.0);
  EXPECT_TRUE(filter.primed());
}

TEST(EmaFilterTest, ConvergesToConstant) {
  EmaFilter filter(0.3);
  double y = 0.0;
  for (int i = 0; i < 100; ++i) y = filter.update(10.0);
  EXPECT_NEAR(y, 10.0, 1e-9);
}

TEST(EmaFilterTest, StepResponse) {
  EmaFilter filter(0.5);
  filter.update(0.0);
  EXPECT_DOUBLE_EQ(filter.update(1.0), 0.5);
  EXPECT_DOUBLE_EQ(filter.update(1.0), 0.75);
}

TEST(EmaFilterTest, InvalidAlphaThrows) {
  EXPECT_THROW(EmaFilter(0.0), std::invalid_argument);
  EXPECT_THROW(EmaFilter(1.5), std::invalid_argument);
}

TEST(EmaFilterTest, ResetClearsState) {
  EmaFilter filter(0.5);
  filter.update(7.0);
  filter.reset();
  EXPECT_FALSE(filter.primed());
  EXPECT_DOUBLE_EQ(filter.update(3.0), 3.0);
}

TEST(HighPassFilterTest, RejectsDcImmediately) {
  HighPassFilter filter(0.5, 50.0);
  for (int i = 0; i < 500; ++i) {
    const double y = filter.update(9.81);
    EXPECT_NEAR(y, 0.0, 1e-9);
  }
}

TEST(HighPassFilterTest, PassesHighFrequency) {
  HighPassFilter filter(0.5, 50.0);
  // 10 Hz sine, amplitude 1, sampled at 50 Hz; well above the 0.5 Hz cutoff.
  double peak = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double t = i / 50.0;
    const double y = filter.update(std::sin(2.0 * kPi * 10.0 * t));
    if (i > 100) peak = std::max(peak, std::fabs(y));
  }
  EXPECT_GT(peak, 0.9);
}

TEST(HighPassFilterTest, AttenuatesLowFrequency) {
  HighPassFilter filter(2.0, 50.0);
  // 0.05 Hz sine: far below the 2 Hz cutoff -> strongly attenuated.
  double peak = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const double t = i / 50.0;
    const double y = filter.update(std::sin(2.0 * kPi * 0.05 * t));
    if (i > 2000) peak = std::max(peak, std::fabs(y));
  }
  EXPECT_LT(peak, 0.1);
}

TEST(HighPassFilterTest, InvalidParametersThrow) {
  EXPECT_THROW(HighPassFilter(0.0, 50.0), std::invalid_argument);
  EXPECT_THROW(HighPassFilter(30.0, 50.0), std::invalid_argument);  // >= Nyquist
  EXPECT_THROW(HighPassFilter(1.0, 0.0), std::invalid_argument);
}

TEST(HighPassFilterTest, GravityPlusVibrationKeepsVibration) {
  HighPassFilter filter(0.5, 50.0);
  // Gravity + 3 m/s^2 sine at 5 Hz: the filter should keep ~3 amplitude.
  double peak = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double t = i / 50.0;
    const double y = filter.update(9.81 + 3.0 * std::sin(2.0 * kPi * 5.0 * t));
    if (i > 300) peak = std::max(peak, std::fabs(y));
  }
  EXPECT_NEAR(peak, 3.0, 0.3);
}

TEST(MovingRmsTest, ConstantInput) {
  MovingRms rms(4);
  double y = 0.0;
  for (int i = 0; i < 10; ++i) y = rms.update(2.0);
  EXPECT_NEAR(y, 2.0, 1e-12);
}

TEST(MovingRmsTest, WindowedEviction) {
  MovingRms rms(2);
  rms.update(3.0);
  rms.update(4.0);
  // window = {3, 4}: rms = sqrt(12.5)
  EXPECT_NEAR(rms.value(), std::sqrt(12.5), 1e-12);
  rms.update(0.0);
  // window = {4, 0}: rms = sqrt(8)
  EXPECT_NEAR(rms.value(), std::sqrt(8.0), 1e-12);
}

TEST(MovingRmsTest, SineRmsIsAmplitudeOverSqrt2) {
  MovingRms rms(500);
  double y = 0.0;
  for (int i = 0; i < 500; ++i) {
    const double t = i / 50.0;
    y = rms.update(5.0 * std::sin(2.0 * kPi * 2.0 * t));
  }
  EXPECT_NEAR(y, 5.0 / std::sqrt(2.0), 0.05);
}

TEST(MovingRmsTest, ZeroWindowThrows) {
  EXPECT_THROW(MovingRms(0), std::invalid_argument);
}

TEST(MovingRmsTest, ResetClears) {
  MovingRms rms(3);
  rms.update(5.0);
  rms.reset();
  EXPECT_EQ(rms.count(), 0U);
  EXPECT_DOUBLE_EQ(rms.value(), 0.0);
}

}  // namespace
}  // namespace eacs
