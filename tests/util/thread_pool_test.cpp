#include "eacs/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace eacs::util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4U);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroWorkersClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1U);
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, PoolIsReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { ++counter; });
    }
    pool.wait();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPoolTest, MemberParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  pool.parallel_for(visits.size(), [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The pool survives an exception and keeps working.
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 42) throw std::invalid_argument("42");
                                 }),
               std::invalid_argument);
}

TEST(FreeParallelForTest, SerialWhenJobsIsOne) {
  // jobs<=1 must run inline on the calling thread, in index order.
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  parallel_for(1, 8, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  const std::vector<std::size_t> expected = {0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(order, expected);
}

TEST(FreeParallelForTest, SingleItemRunsInline) {
  const auto caller = std::this_thread::get_id();
  bool ran = false;
  parallel_for(8, 1, [&](std::size_t i) {
    EXPECT_EQ(i, 0U);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST(FreeParallelForTest, ZeroItemsIsANoOp) {
  parallel_for(4, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(FreeParallelForTest, CoversAllIndicesAtManyJobCounts) {
  for (const std::size_t jobs : {1U, 2U, 3U, 8U, 16U}) {
    std::vector<std::atomic<int>> visits(257);
    parallel_for(jobs, visits.size(), [&](std::size_t i) { ++visits[i]; });
    long long total = 0;
    for (auto& v : visits) total += v.load();
    EXPECT_EQ(total, 257) << "jobs=" << jobs;
  }
}

TEST(ParallelMapTest, PreservesIndexOrder) {
  for (const std::size_t jobs : {1U, 2U, 8U}) {
    const auto squares =
        parallel_map(jobs, 100, [](std::size_t i) { return i * i; });
    ASSERT_EQ(squares.size(), 100U) << "jobs=" << jobs;
    for (std::size_t i = 0; i < squares.size(); ++i) {
      EXPECT_EQ(squares[i], i * i) << "jobs=" << jobs;
    }
  }
}

TEST(ParallelMapTest, WorksWithNonTrivialValueTypes) {
  const auto words = parallel_map(
      4, 10, [](std::size_t i) { return std::string(i, 'x'); });
  for (std::size_t i = 0; i < words.size(); ++i) {
    EXPECT_EQ(words[i].size(), i);
  }
}

TEST(ParallelMapTest, ExceptionPropagates) {
  EXPECT_THROW(parallel_map(4, 16,
                            [](std::size_t i) -> int {
                              if (i == 7) throw std::runtime_error("seven");
                              return 0;
                            }),
               std::runtime_error);
}

}  // namespace
}  // namespace eacs::util
