#include "eacs/util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace eacs::util {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 4U);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroWorkersClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 1U);
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, PoolIsReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) {
      pool.submit([&counter] { ++counter; });
    }
    pool.wait();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPoolTest, MemberParallelForVisitsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  pool.parallel_for(visits.size(), [&](std::size_t i) { ++visits[i]; });
  for (std::size_t i = 0; i < visits.size(); ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The pool survives an exception and keeps working.
  std::atomic<int> counter{0};
  pool.submit([&counter] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, ParallelForPropagatesException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 42) throw std::invalid_argument("42");
                                 }),
               std::invalid_argument);
}

TEST(FreeParallelForTest, SerialWhenJobsIsOne) {
  // jobs<=1 must run inline on the calling thread, in index order.
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  parallel_for(1, 8, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  const std::vector<std::size_t> expected = {0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(order, expected);
}

TEST(FreeParallelForTest, SingleItemRunsInline) {
  const auto caller = std::this_thread::get_id();
  bool ran = false;
  parallel_for(8, 1, [&](std::size_t i) {
    EXPECT_EQ(i, 0U);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ran = true;
  });
  EXPECT_TRUE(ran);
}

TEST(FreeParallelForTest, ZeroItemsIsANoOp) {
  parallel_for(4, 0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(FreeParallelForTest, CoversAllIndicesAtManyJobCounts) {
  for (const std::size_t jobs : {1U, 2U, 3U, 8U, 16U}) {
    std::vector<std::atomic<int>> visits(257);
    parallel_for(jobs, visits.size(), [&](std::size_t i) { ++visits[i]; });
    long long total = 0;
    for (auto& v : visits) total += v.load();
    EXPECT_EQ(total, 257) << "jobs=" << jobs;
  }
}

TEST(ParallelMapTest, PreservesIndexOrder) {
  for (const std::size_t jobs : {1U, 2U, 8U}) {
    const auto squares =
        parallel_map(jobs, 100, [](std::size_t i) { return i * i; });
    ASSERT_EQ(squares.size(), 100U) << "jobs=" << jobs;
    for (std::size_t i = 0; i < squares.size(); ++i) {
      EXPECT_EQ(squares[i], i * i) << "jobs=" << jobs;
    }
  }
}

TEST(ParallelMapTest, WorksWithNonTrivialValueTypes) {
  const auto words = parallel_map(
      4, 10, [](std::size_t i) { return std::string(i, 'x'); });
  for (std::size_t i = 0; i < words.size(); ++i) {
    EXPECT_EQ(words[i].size(), i);
  }
}

TEST(ParallelMapTest, ExceptionPropagates) {
  EXPECT_THROW(parallel_map(4, 16,
                            [](std::size_t i) -> int {
                              if (i == 7) throw std::runtime_error("seven");
                              return 0;
                            }),
               std::runtime_error);
}

// --- effective_workers / arena-merge stress ---------------------------------

// A work item with deliberately non-associative floating-point content: any
// reordering of the reduction would change low-order bits.
double noisy_work(std::size_t i) {
  double x = 1.0 + static_cast<double>(i) * 1e-3;
  for (int k = 0; k < 8; ++k) x = std::sin(x) + std::sqrt(x + 1.0);
  return x;
}

std::uint64_t bits_of(double x) {
  std::uint64_t out = 0;
  std::memcpy(&out, &x, sizeof(out));
  return out;
}

TEST(FreeParallelForTest, EffectiveWorkersClampsSerialAndHardware) {
  EXPECT_EQ(effective_workers(1, 100), 1U);
  EXPECT_EQ(effective_workers(0, 100), 1U);
  EXPECT_EQ(effective_workers(8, 1), 1U);
  EXPECT_EQ(effective_workers(8, 0), 1U);
  const std::size_t hw =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  EXPECT_LE(effective_workers(64, 1000), hw);
  EXPECT_LE(effective_workers(8, 4), 4U);
  EXPECT_GE(effective_workers(8, 4), 1U);
}

TEST(ThreadPoolTest, ParallelForWorkersHandsOutStableRunnerIndices) {
  ThreadPool pool(4);
  constexpr std::size_t kItems = 200;
  std::vector<std::atomic<int>> visits(kItems);
  std::vector<std::atomic<std::size_t>> runner(kItems);
  pool.parallel_for_workers(kItems, [&](std::size_t worker, std::size_t i) {
    EXPECT_LT(worker, 4U);
    runner[i].store(worker);
    ++visits[i];
  });
  for (std::size_t i = 0; i < kItems; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
    EXPECT_LT(runner[i].load(), 4U);
  }
}

// The arena pattern parallel_map uses, run raw on a real pool with
// sleep-jittered item latencies so items land in the arenas in a
// scheduling-dependent order — the index merge must erase that.
TEST(ThreadPoolTest, ArenaMergeIsDeterministicUnderJitteredLatencies) {
  constexpr std::size_t kItems = 64;
  std::vector<double> expected(kItems);
  for (std::size_t i = 0; i < kItems; ++i) expected[i] = noisy_work(i);

  for (int round = 0; round < 3; ++round) {
    struct alignas(kCacheLineBytes) Arena {
      std::vector<std::pair<std::size_t, double>> items;
    };
    std::vector<Arena> arenas(4);
    ThreadPool pool(4);
    pool.parallel_for_workers(kItems, [&](std::size_t worker, std::size_t i) {
      std::this_thread::sleep_for(std::chrono::microseconds((i * 97) % 500));
      arenas[worker].items.emplace_back(i, noisy_work(i));
    });
    std::vector<double> out(kItems);
    for (auto& arena : arenas) {
      for (auto& [i, value] : arena.items) out[i] = value;
    }
    for (std::size_t i = 0; i < kItems; ++i) {
      EXPECT_EQ(bits_of(out[i]), bits_of(expected[i]))
          << "round " << round << " index " << i;
    }
  }
}

TEST(ThreadPoolTest, ParallelForWorkersPropagatesFirstException) {
  ThreadPool pool(4);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for_workers(100,
                                [&](std::size_t, std::size_t i) {
                                  ++ran;
                                  if (i == 13) throw std::logic_error("13");
                                }),
      std::logic_error);
  // The pool is still serviceable afterwards.
  pool.parallel_for_workers(8, [&](std::size_t, std::size_t) { ++ran; });
  EXPECT_GE(ran.load(), 9);
}

TEST(ParallelMapTest, BitIdenticalAcrossJobCounts) {
  const auto reference = parallel_map(1, 128, noisy_work);
  for (const std::size_t jobs : {2U, 4U, 8U}) {
    const auto out = parallel_map(jobs, 128, noisy_work);
    ASSERT_EQ(out.size(), reference.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(bits_of(out[i]), bits_of(reference[i]))
          << "jobs=" << jobs << " index " << i;
    }
  }
}

TEST(ParallelMapTest, SleepJitteredItemsStillLandAtTheirIndex) {
  const auto out = parallel_map(8, 48, [](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::microseconds((i * 131) % 400));
    return static_cast<double>(i) * 1.5;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<double>(i) * 1.5);
  }
}

TEST(ParallelMapTest, ExceptionWithArenasStillPropagates) {
  // Force the arena path with a real pool regardless of this machine's core
  // count: jobs > 1 and n > 1, fn throws mid-stream.
  EXPECT_THROW(parallel_map(8, 64,
                            [](std::size_t i) -> double {
                              if (i == 31) throw std::runtime_error("31");
                              return noisy_work(i);
                            }),
               std::runtime_error);
}

}  // namespace
}  // namespace eacs::util
