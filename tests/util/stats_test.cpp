#include "eacs/util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "eacs/util/rng.h"

namespace eacs {
namespace {

TEST(StatsTest, MeanBasics) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(StatsTest, VarianceAndStddev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{5.0}), 0.0);
}

TEST(StatsTest, Rms) {
  const std::vector<double> xs = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(rms(xs), std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(rms(std::vector<double>{}), 0.0);
}

TEST(StatsTest, HarmonicMeanBasics) {
  const std::vector<double> xs = {1.0, 2.0, 4.0};
  EXPECT_NEAR(harmonic_mean(xs), 3.0 / (1.0 + 0.5 + 0.25), 1e-12);
}

TEST(StatsTest, HarmonicMeanIgnoresNonPositive) {
  const std::vector<double> xs = {0.0, -5.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(harmonic_mean(xs), 2.0);
  EXPECT_DOUBLE_EQ(harmonic_mean(std::vector<double>{0.0, -1.0}), 0.0);
}

TEST(StatsTest, HarmonicMeanDampsSpikes) {
  // One 100 Mbps spike among 1 Mbps samples barely moves the harmonic mean —
  // the property FESTIVE and the paper's online algorithm rely on.
  const std::vector<double> spiky = {1.0, 1.0, 1.0, 1.0, 100.0};
  EXPECT_LT(harmonic_mean(spiky), 1.3);
  EXPECT_GT(mean(spiky), 20.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

TEST(StatsTest, MinMax) {
  const std::vector<double> xs = {3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 7.0);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(StatsTest, PearsonConstantInputIsZero) {
  const std::vector<double> xs = {1.0, 1.0, 1.0};
  const std::vector<double> ys = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(RunningStatsTest, MatchesBatchStatistics) {
  Rng rng(71);
  std::vector<double> xs;
  RunningStats stats;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    xs.push_back(x);
    stats.add(x);
  }
  EXPECT_NEAR(stats.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(stats.variance(), variance(xs), 1e-6);
  EXPECT_DOUBLE_EQ(stats.min(), min_of(xs));
  EXPECT_DOUBLE_EQ(stats.max(), max_of(xs));
  EXPECT_EQ(stats.count(), xs.size());
}

TEST(RunningStatsTest, MergeEqualsSingleStream) {
  Rng rng(73);
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    all.add(x);
    (i < 700 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.count(), all.count());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  RunningStats b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1U);
  b.merge(a);
  EXPECT_EQ(b.count(), 1U);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(SlidingWindowTest, EvictsOldestFirst) {
  SlidingWindow window(3);
  window.push(1.0);
  window.push(2.0);
  window.push(3.0);
  window.push(4.0);  // evicts 1.0
  const auto values = window.values();
  EXPECT_EQ(values, (std::vector<double>{2.0, 3.0, 4.0}));
  EXPECT_TRUE(window.full());
}

TEST(SlidingWindowTest, StatsOverWindowOnly) {
  SlidingWindow window(2);
  window.push(10.0);
  window.push(2.0);
  window.push(4.0);  // window = {2, 4}
  EXPECT_DOUBLE_EQ(window.mean(), 3.0);
  EXPECT_NEAR(window.harmonic_mean(), 2.0 / (0.5 + 0.25), 1e-12);
}

TEST(SlidingWindowTest, ClearResets) {
  SlidingWindow window(2);
  window.push(1.0);
  window.clear();
  EXPECT_EQ(window.size(), 0U);
  EXPECT_DOUBLE_EQ(window.mean(), 0.0);
}

TEST(SlidingWindowTest, ZeroCapacityThrows) {
  EXPECT_THROW(SlidingWindow(0), std::invalid_argument);
}

TEST(P2QuantileTest, ValidatesProbability) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(-0.5), std::invalid_argument);
}

TEST(P2QuantileTest, ExactBelowFiveSamples) {
  P2Quantile median(0.5);
  EXPECT_DOUBLE_EQ(median.value(), 0.0);  // empty convention
  median.add(7.0);
  EXPECT_DOUBLE_EQ(median.value(), 7.0);
  median.add(1.0);
  median.add(3.0);
  // Exactly the interpolated percentile over the retained samples.
  EXPECT_DOUBLE_EQ(median.value(),
                   percentile(std::vector<double>{7.0, 1.0, 3.0}, 50.0));
}

TEST(P2QuantileTest, TracksExactQuantilesWithinTolerance) {
  // The pinned-tolerance contract against the exact sorted quantile, over a
  // deterministic but shuffled heavy-ish stream. 2% of the spread is the
  // acceptance bound the fleet reporting relies on.
  Rng rng(0xC0FFEE);
  for (const double p : {0.25, 0.5, 0.9, 0.99}) {
    P2Quantile q(p);
    std::vector<double> all;
    for (std::size_t i = 0; i < 20000; ++i) {
      const double u = rng.uniform();
      const double x = u * u * 100.0;  // skewed toward 0, tail to 100
      q.add(x);
      all.push_back(x);
    }
    const double exact = percentile(all, p * 100.0);
    const double spread = percentile(all, 99.9) - percentile(all, 0.1);
    EXPECT_NEAR(q.value(), exact, 0.02 * spread)
        << "p=" << p;
    EXPECT_EQ(q.count(), all.size());
  }
}

TEST(P2QuantileTest, DeterministicAcrossRuns) {
  const auto run = [] {
    P2Quantile q(0.9);
    Rng rng(42);
    for (std::size_t i = 0; i < 1000; ++i) q.add(rng.uniform() * 10.0);
    return q.value();
  };
  EXPECT_EQ(run(), run());
}

TEST(ReservoirSamplerTest, ValidatesCapacity) {
  EXPECT_THROW(ReservoirSampler(0), std::invalid_argument);
}

TEST(ReservoirSamplerTest, RetainsEverythingUnderCapacity) {
  ReservoirSampler sampler(100);
  for (double x : {5.0, 1.0, 9.0, 3.0}) sampler.add(x);
  EXPECT_EQ(sampler.count(), 4U);
  EXPECT_EQ(sampler.sample().size(), 4U);
  // Below capacity the reservoir is the stream: quantiles are exact.
  EXPECT_DOUBLE_EQ(sampler.quantile(0.5),
                   percentile(std::vector<double>{5.0, 1.0, 9.0, 3.0}, 50.0));
  EXPECT_DOUBLE_EQ(sampler.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(sampler.quantile(1.0), 9.0);
}

TEST(ReservoirSamplerTest, QuantilesApproximateExactSortedQuantiles) {
  // Pinned tolerance vs. the exact sorted quantile: a 1024-slot reservoir
  // over 50k skewed samples must land each probe within 5% of the spread.
  ReservoirSampler sampler(1024, 0x5EED);
  Rng rng(0xFEED);
  std::vector<double> all;
  for (std::size_t i = 0; i < 50000; ++i) {
    const double u = rng.uniform();
    const double x = u * u * u * 1000.0;
    sampler.add(x);
    all.push_back(x);
  }
  EXPECT_EQ(sampler.count(), all.size());
  EXPECT_EQ(sampler.sample().size(), 1024U);
  const double spread = percentile(all, 99.0) - percentile(all, 1.0);
  for (const double p : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(sampler.quantile(p), percentile(all, p * 100.0), 0.05 * spread)
        << "p=" << p;
  }
}

TEST(ReservoirSamplerTest, DeterministicInSeed) {
  const auto run = [](std::uint64_t seed) {
    ReservoirSampler sampler(32, seed);
    Rng rng(7);
    for (std::size_t i = 0; i < 500; ++i) sampler.add(rng.uniform());
    return sampler.quantile(0.5);
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(run(1), run(2));  // the eviction stream really depends on the seed
}

TEST(ReservoirSamplerTest, MergeAccumulatesShards) {
  // Sharded aggregation: N per-shard reservoirs merged in shard order must
  // (a) count the union stream, (b) stay deterministic, and (c) estimate
  // quantiles of the union within the pinned tolerance.
  std::vector<double> all;
  ReservoirSampler merged(512, 0xABCD);
  Rng rng(11);
  for (std::size_t shard = 0; shard < 8; ++shard) {
    ReservoirSampler local(512, 0x1000 + shard);
    for (std::size_t i = 0; i < 4000; ++i) {
      // Shards see shifted distributions, like regions of different load.
      const double x = rng.uniform() * 50.0 + static_cast<double>(shard) * 10.0;
      local.add(x);
      all.push_back(x);
    }
    merged.merge(local);
  }
  EXPECT_EQ(merged.count(), all.size());
  const double spread = percentile(all, 99.0) - percentile(all, 1.0);
  for (const double p : {0.25, 0.5, 0.75}) {
    EXPECT_NEAR(merged.quantile(p), percentile(all, p * 100.0), 0.06 * spread)
        << "p=" << p;
  }
}

TEST(ReservoirSamplerTest, MergeGroupingsAgreeOnCountAndTolerance) {
  // Merge is statistically associative: ((A+B)+C) and (A+(B+C)) see the same
  // union count and agree on quantiles within the sampling tolerance.
  const auto fill = [](std::uint64_t seed, double offset) {
    ReservoirSampler sampler(256, seed);
    Rng rng(seed ^ 0x9E37);
    for (std::size_t i = 0; i < 3000; ++i) sampler.add(rng.uniform() * 20.0 + offset);
    return sampler;
  };
  const ReservoirSampler a = fill(1, 0.0);
  const ReservoirSampler b = fill(2, 5.0);
  const ReservoirSampler c = fill(3, 10.0);

  ReservoirSampler left = a;
  left.merge(b);
  left.merge(c);
  ReservoirSampler bc = b;
  bc.merge(c);
  ReservoirSampler right = a;
  right.merge(bc);

  EXPECT_EQ(left.count(), 9000U);
  EXPECT_EQ(right.count(), 9000U);
  EXPECT_NEAR(left.quantile(0.5), right.quantile(0.5), 2.0);
}

TEST(ReservoirSamplerTest, MergeWithEmptySides) {
  ReservoirSampler empty(16, 1);
  ReservoirSampler full(16, 2);
  for (double x : {1.0, 2.0, 3.0}) full.add(x);

  ReservoirSampler a = full;
  a.merge(empty);  // no-op
  EXPECT_EQ(a.count(), 3U);
  EXPECT_DOUBLE_EQ(a.quantile(0.5), 2.0);

  ReservoirSampler b = empty;
  b.merge(full);  // adopts the other sample
  EXPECT_EQ(b.count(), 3U);
  EXPECT_DOUBLE_EQ(b.quantile(0.5), 2.0);
}

}  // namespace
}  // namespace eacs
