#include "eacs/util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "eacs/util/rng.h"

namespace eacs {
namespace {

TEST(StatsTest, MeanBasics) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(StatsTest, VarianceAndStddev) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
  EXPECT_DOUBLE_EQ(variance(std::vector<double>{5.0}), 0.0);
}

TEST(StatsTest, Rms) {
  const std::vector<double> xs = {3.0, 4.0};
  EXPECT_DOUBLE_EQ(rms(xs), std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(rms(std::vector<double>{}), 0.0);
}

TEST(StatsTest, HarmonicMeanBasics) {
  const std::vector<double> xs = {1.0, 2.0, 4.0};
  EXPECT_NEAR(harmonic_mean(xs), 3.0 / (1.0 + 0.5 + 0.25), 1e-12);
}

TEST(StatsTest, HarmonicMeanIgnoresNonPositive) {
  const std::vector<double> xs = {0.0, -5.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(harmonic_mean(xs), 2.0);
  EXPECT_DOUBLE_EQ(harmonic_mean(std::vector<double>{0.0, -1.0}), 0.0);
}

TEST(StatsTest, HarmonicMeanDampsSpikes) {
  // One 100 Mbps spike among 1 Mbps samples barely moves the harmonic mean —
  // the property FESTIVE and the paper's online algorithm rely on.
  const std::vector<double> spiky = {1.0, 1.0, 1.0, 1.0, 100.0};
  EXPECT_LT(harmonic_mean(spiky), 1.3);
  EXPECT_GT(mean(spiky), 20.0);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
}

TEST(StatsTest, MinMax) {
  const std::vector<double> xs = {3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_of(xs), -1.0);
  EXPECT_DOUBLE_EQ(max_of(xs), 7.0);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys = {2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg = {8.0, 6.0, 4.0, 2.0};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(StatsTest, PearsonConstantInputIsZero) {
  const std::vector<double> xs = {1.0, 1.0, 1.0};
  const std::vector<double> ys = {1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

TEST(RunningStatsTest, MatchesBatchStatistics) {
  Rng rng(71);
  std::vector<double> xs;
  RunningStats stats;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    xs.push_back(x);
    stats.add(x);
  }
  EXPECT_NEAR(stats.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(stats.variance(), variance(xs), 1e-6);
  EXPECT_DOUBLE_EQ(stats.min(), min_of(xs));
  EXPECT_DOUBLE_EQ(stats.max(), max_of(xs));
  EXPECT_EQ(stats.count(), xs.size());
}

TEST(RunningStatsTest, MergeEqualsSingleStream) {
  Rng rng(73);
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.uniform(-5.0, 5.0);
    all.add(x);
    (i < 700 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.count(), all.count());
}

TEST(RunningStatsTest, MergeWithEmpty) {
  RunningStats a;
  RunningStats b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1U);
  b.merge(a);
  EXPECT_EQ(b.count(), 1U);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(SlidingWindowTest, EvictsOldestFirst) {
  SlidingWindow window(3);
  window.push(1.0);
  window.push(2.0);
  window.push(3.0);
  window.push(4.0);  // evicts 1.0
  const auto values = window.values();
  EXPECT_EQ(values, (std::vector<double>{2.0, 3.0, 4.0}));
  EXPECT_TRUE(window.full());
}

TEST(SlidingWindowTest, StatsOverWindowOnly) {
  SlidingWindow window(2);
  window.push(10.0);
  window.push(2.0);
  window.push(4.0);  // window = {2, 4}
  EXPECT_DOUBLE_EQ(window.mean(), 3.0);
  EXPECT_NEAR(window.harmonic_mean(), 2.0 / (0.5 + 0.25), 1e-12);
}

TEST(SlidingWindowTest, ClearResets) {
  SlidingWindow window(2);
  window.push(1.0);
  window.clear();
  EXPECT_EQ(window.size(), 0U);
  EXPECT_DOUBLE_EQ(window.mean(), 0.0);
}

TEST(SlidingWindowTest, ZeroCapacityThrows) {
  EXPECT_THROW(SlidingWindow(0), std::invalid_argument);
}

}  // namespace
}  // namespace eacs
