#include "eacs/util/xml.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eacs {
namespace {

TEST(XmlNodeTest, AttributesSetAndOverwrite) {
  XmlNode node("a");
  node.set_attribute("k", "1");
  node.set_attribute("k", "2");
  EXPECT_EQ(node.attribute("k").value(), "2");
  EXPECT_FALSE(node.attribute("missing").has_value());
  EXPECT_THROW(node.required_attribute("missing"), std::runtime_error);
}

TEST(XmlNodeTest, TypedAttributes) {
  XmlNode node("a");
  node.set_attribute("d", "2.5");
  node.set_attribute("i", "42");
  node.set_attribute("junk", "xyz");
  EXPECT_DOUBLE_EQ(node.attribute_as_double("d"), 2.5);
  EXPECT_EQ(node.attribute_as_int("i"), 42);
  EXPECT_THROW(node.attribute_as_double("junk"), std::runtime_error);
  EXPECT_THROW(node.attribute_as_int("d"), std::runtime_error);
}

TEST(XmlNodeTest, ChildNavigation) {
  XmlNode root("root");
  root.add_child("a");
  root.add_child("b");
  root.add_child("a");
  EXPECT_NE(root.find_child("a"), nullptr);
  EXPECT_EQ(root.find_child("zzz"), nullptr);
  EXPECT_EQ(root.find_children("a").size(), 2U);
  EXPECT_NO_THROW(root.required_child("b"));
  EXPECT_THROW(root.required_child("zzz"), std::runtime_error);
}

TEST(XmlNodeTest, EmptyNameThrows) {
  EXPECT_THROW(XmlNode(""), std::invalid_argument);
}

TEST(XmlTest, EscapeRoundTrip) {
  EXPECT_EQ(xml_escape("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&apos;");
}

TEST(XmlTest, SerializeBasicTree) {
  XmlNode root("MPD");
  root.set_attribute("type", "static");
  auto& period = root.add_child("Period");
  period.set_attribute("id", "0");
  const auto text = to_xml(root);
  EXPECT_NE(text.find("<?xml"), std::string::npos);
  EXPECT_NE(text.find("<MPD type=\"static\">"), std::string::npos);
  EXPECT_NE(text.find("<Period id=\"0\"/>"), std::string::npos);
}

TEST(XmlTest, ParseBasicDocument) {
  const auto root = parse_xml(
      "<?xml version=\"1.0\"?>\n"
      "<!-- comment -->\n"
      "<root a=\"1\" b='two'>\n"
      "  <child>text &amp; more</child>\n"
      "  <empty/>\n"
      "</root>\n");
  EXPECT_EQ(root.name(), "root");
  EXPECT_EQ(root.attribute("a").value(), "1");
  EXPECT_EQ(root.attribute("b").value(), "two");
  EXPECT_EQ(root.required_child("child").text(), "text & more");
  EXPECT_NE(root.find_child("empty"), nullptr);
}

TEST(XmlTest, RoundTripPreservesStructure) {
  XmlNode root("a");
  root.set_attribute("x", "1 < 2");
  auto& b = root.add_child("b");
  b.set_text("hello & goodbye");
  b.set_attribute("q", "\"quoted\"");
  root.add_child("c");
  const auto reparsed = parse_xml(to_xml(root));
  EXPECT_EQ(reparsed.attribute("x").value(), "1 < 2");
  EXPECT_EQ(reparsed.required_child("b").text(), "hello & goodbye");
  EXPECT_EQ(reparsed.required_child("b").attribute("q").value(), "\"quoted\"");
  EXPECT_NE(reparsed.find_child("c"), nullptr);
}

TEST(XmlTest, NestedChildrenRoundTrip) {
  XmlNode root("l0");
  root.add_child("l1").add_child("l2").set_attribute("deep", "yes");
  const auto reparsed = parse_xml(to_xml(root));
  EXPECT_EQ(reparsed.required_child("l1").required_child("l2").attribute("deep").value(),
            "yes");
}

TEST(XmlTest, MalformedInputsThrow) {
  EXPECT_THROW(parse_xml(""), std::runtime_error);
  EXPECT_THROW(parse_xml("<a>"), std::runtime_error);               // unterminated
  EXPECT_THROW(parse_xml("<a></b>"), std::runtime_error);           // mismatch
  EXPECT_THROW(parse_xml("<a x=1/>"), std::runtime_error);          // unquoted attr
  EXPECT_THROW(parse_xml("<a>&unknown;</a>"), std::runtime_error);  // bad entity
  EXPECT_THROW(parse_xml("<a/><b/>"), std::runtime_error);          // two roots
  EXPECT_THROW(parse_xml("<!-- only a comment -->"), std::runtime_error);
}

TEST(XmlTest, ColonAndDashInNames) {
  const auto root = parse_xml("<ns:tag eacs:attr=\"v\" data-x=\"y\"/>");
  EXPECT_EQ(root.name(), "ns:tag");
  EXPECT_EQ(root.attribute("eacs:attr").value(), "v");
  EXPECT_EQ(root.attribute("data-x").value(), "y");
}

TEST(XmlTest, WhitespaceOnlyTextDropped) {
  const auto root = parse_xml("<a>\n  <b/>\n</a>");
  EXPECT_TRUE(root.text().empty());
}

}  // namespace
}  // namespace eacs
