// libFuzzer target for the CSV trace-parsing stack: parse_csv plus the two
// schema loaders layered on top of it. Any input must either parse into a
// validated trace or be rejected with the documented exception types
// (std::runtime_error with a line-numbered message from the parsers,
// std::out_of_range for a missing column). Anything else — a crash, a
// sanitizer report, an unexpected exception escaping — is a finding.
//
// Built two ways:
//   * with clang + -fsanitize=fuzzer,address as a real libFuzzer binary
//     (EACS_LIBFUZZER=ON, the CI fuzz-smoke leg);
//   * with any compiler as fuzz_csv_trace_replay (replay_main.cpp), which
//     replays tests/fuzz/corpus/csv_trace/ as a plain ctest regression.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string_view>

#include "eacs/trace/trace_io.h"
#include "eacs/util/csv.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  try {
    const eacs::CsvTable table = eacs::parse_csv(text);
    try {
      (void)eacs::trace::time_series_from_csv(table);
    } catch (const std::runtime_error&) {
    } catch (const std::out_of_range&) {
    }
    try {
      (void)eacs::trace::accel_from_csv(table);
    } catch (const std::runtime_error&) {
    } catch (const std::out_of_range&) {
    }
  } catch (const std::runtime_error&) {
    // Malformed CSV, rejected with a line-numbered message: expected.
  }
  return 0;
}
