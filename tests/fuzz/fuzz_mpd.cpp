// libFuzzer target for the MPD manifest parser. from_mpd_xml must either
// produce a manifest that survives re-serialisation or throw the documented
// std::runtime_error / std::invalid_argument; crashes, sanitizer reports and
// other escaping exceptions are findings.
//
// Built both as a clang libFuzzer binary (EACS_LIBFUZZER=ON) and as the plain
// fuzz_mpd_replay regression binary that replays tests/fuzz/corpus/mpd/.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string_view>

#include "eacs/media/mpd.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  try {
    const auto manifest = eacs::media::from_mpd_xml(text);
    // Anything that parsed must round-trip back to XML without throwing.
    (void)eacs::media::to_mpd_xml(manifest);
  } catch (const std::runtime_error&) {
  } catch (const std::invalid_argument&) {
  }
  return 0;
}
