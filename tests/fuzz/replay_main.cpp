// Plain-main driver that replays corpus files through a fuzz entry point.
// Linked against each fuzz_*.cpp to produce a *_replay binary any compiler
// can build; ctest runs it over the checked-in corpus so the fuzz targets
// stay compiled and the corpus keeps passing even without clang/libFuzzer.
//
// Usage: fuzz_x_replay <file-or-directory>...   (directories are recursed)

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

std::size_t replay_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.string().c_str());
    std::exit(1);
  }
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path path(argv[i]);
    if (std::filesystem::is_directory(path)) {
      for (const auto& entry :
           std::filesystem::recursive_directory_iterator(path)) {
        if (entry.is_regular_file()) replayed += replay_file(entry.path());
      }
    } else {
      replayed += replay_file(path);
    }
  }
  if (replayed == 0) {
    std::fprintf(stderr, "no corpus inputs found\n");
    return 1;
  }
  std::printf("replayed %zu corpus inputs\n", replayed);
  return 0;
}
