// Property suite: parser robustness. The CSV and XML parsers consume
// user-supplied files (trace imports, foreign MPDs); feeding them random
// garbage and random mutations of valid documents must either parse or
// throw — never crash, hang, or corrupt state.

#include <gtest/gtest.h>

#include <string>

#include "eacs/media/mpd.h"
#include "eacs/util/csv.h"
#include "eacs/util/rng.h"
#include "eacs/util/xml.h"

namespace eacs {
namespace {

std::string random_bytes(Rng& rng, std::size_t max_length) {
  const auto length = static_cast<std::size_t>(rng.uniform_int(0, max_length));
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<char>(rng.uniform_int(1, 127)));
  }
  return out;
}

std::string mutate(Rng& rng, std::string text) {
  const auto mutations = static_cast<std::size_t>(rng.uniform_int(1, 8));
  for (std::size_t m = 0; m < mutations && !text.empty(); ++m) {
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<long long>(text.size()) - 1));
    switch (rng.uniform_int(0, 2)) {
      case 0:  // flip a character
        text[pos] = static_cast<char>(rng.uniform_int(32, 126));
        break;
      case 1:  // delete a span
        text.erase(pos, static_cast<std::size_t>(rng.uniform_int(1, 5)));
        break;
      default:  // duplicate a span
        text.insert(pos, text.substr(pos, 3));
        break;
    }
  }
  return text;
}

class ParserFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserFuzz, CsvSurvivesGarbage) {
  Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    const std::string input = random_bytes(rng, 200);
    try {
      const auto table = parse_csv(input);
      // If it parsed, basic invariants hold.
      EXPECT_GE(table.num_cols(), 1U);
    } catch (const std::runtime_error&) {
      // Rejecting is fine.
    }
  }
}

TEST_P(ParserFuzz, XmlSurvivesGarbage) {
  Rng rng(GetParam() ^ 0x1);
  for (int i = 0; i < 300; ++i) {
    const std::string input = random_bytes(rng, 200);
    try {
      const auto root = parse_xml(input);
      EXPECT_FALSE(root.name().empty());
    } catch (const std::runtime_error&) {
    }
  }
}

TEST_P(ParserFuzz, MutatedMpdEitherParsesOrThrows) {
  Rng rng(GetParam() ^ 0x2);
  const media::VideoManifest manifest("fuzz", 60.0, 2.0,
                                      media::BitrateLadder::table2());
  const std::string valid = media::to_mpd_xml(manifest);
  for (int i = 0; i < 200; ++i) {
    const std::string input = mutate(rng, valid);
    try {
      const auto parsed = media::from_mpd_xml(input);
      // A successfully parsed mutant is still a coherent manifest.
      EXPECT_GE(parsed.ladder().size(), 1U);
      EXPECT_GT(parsed.total_duration_s(), 0.0);
      EXPECT_GT(parsed.segment_duration_s(), 0.0);
    } catch (const std::exception&) {
      // invalid_argument/runtime_error both acceptable rejections.
    }
  }
}

TEST_P(ParserFuzz, MutatedCsvTraceEitherParsesOrThrows) {
  Rng rng(GetParam() ^ 0x3);
  std::string valid = "t_s,value\n";
  for (int i = 0; i < 20; ++i) {
    valid += std::to_string(i * 0.5) + "," + std::to_string(-90.0 - i) + "\n";
  }
  for (int i = 0; i < 200; ++i) {
    const std::string input = mutate(rng, valid);
    try {
      const auto table = parse_csv(input);
      if (table.has_column("t_s") && table.has_column("value")) {
        for (std::size_t row = 0; row < table.num_rows(); ++row) {
          try {
            (void)table.cell_as_double(row, "value");
          } catch (const std::runtime_error&) {
          }
        }
      }
    } catch (const std::runtime_error&) {
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Values(91, 92, 93));

}  // namespace
}  // namespace eacs
