// Property suite for the decision cache's load-bearing claim: with
// canonicalize-then-solve, caching NEVER changes a decision. For random
// context streams, the rung sequence produced through a cache of any
// capacity — including the 1-slot pathological thrasher — is EXPECT_EQ to
// the sequence produced by solving every canonicalized snapshot cold, and
// the exact-key mode is EXPECT_EQ to solving the raw snapshots directly.
// Alongside, the counters must balance exactly: hits + misses == lookups,
// and every miss is one cold solve.

#include <algorithm>
#include <cstddef>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "eacs/core/cost_stats.h"
#include "eacs/core/decision_cache.h"
#include "eacs/core/horizon.h"
#include "eacs/core/objective.h"
#include "eacs/media/bitrate_ladder.h"
#include "eacs/util/rng.h"

namespace eacs::core {
namespace {

constexpr std::size_t kHorizon = 4;

Objective make_objective() {
  ObjectiveConfig config;
  config.alpha = 0.5;
  config.context_aware = true;
  return Objective(qoe::QoeModel{}, power::PowerModel{}, config);
}

std::vector<TaskEnvironment> make_window() {
  const auto ladder = media::BitrateLadder::evaluation14();
  std::vector<TaskEnvironment> tasks(kHorizon);
  for (std::size_t i = 0; i < kHorizon; ++i) {
    tasks[i].index = i;
    tasks[i].duration_s = 2.0;
    for (std::size_t level = 0; level < ladder.size(); ++level) {
      tasks[i].size_megabits.push_back(ladder.bitrate(level) * 2.0);
    }
  }
  return tasks;
}

/// A context stream shaped like a population's: a handful of base states,
/// revisited with jitter. Quantization's whole job is to coalesce those
/// jittered revisits, so the stream must contain them (fully independent
/// uniform draws would almost never share a bucket key).
std::vector<DecisionSnapshot> random_snapshots(std::size_t n,
                                               std::uint64_t seed,
                                               std::uint64_t ladder_id) {
  eacs::Rng rng(seed);
  struct State {
    double buffer_s, bandwidth_mbps, vibration, confidence, signal_dbm;
  };
  std::vector<State> states;
  for (int s = 0; s < 10; ++s) {
    states.push_back({rng.uniform(0.0, 30.0), rng.uniform(0.2, 40.0),
                      rng.uniform(0.0, 7.5), rng.uniform(0.0, 1.0),
                      rng.uniform(-118.0, -82.0)});
  }
  std::vector<DecisionSnapshot> snapshots;
  std::optional<std::size_t> prev;
  for (std::size_t i = 0; i < n; ++i) {
    const State& state =
        states[static_cast<std::size_t>(rng.uniform_int(0, 9))];
    DecisionSnapshot snapshot;
    snapshot.buffer_s = std::max(0.0, state.buffer_s + rng.uniform(-0.5, 0.5));
    snapshot.bandwidth_mbps =
        state.bandwidth_mbps * rng.uniform(0.95, 1.05);
    snapshot.vibration =
        std::max(0.0, state.vibration + rng.uniform(-0.05, 0.05));
    snapshot.confidence = state.confidence;
    snapshot.signal_dbm = state.signal_dbm + rng.uniform(-1.0, 1.0);
    snapshot.segments_remaining = kHorizon;
    snapshot.prev_level = prev;
    snapshot.ladder_id = ladder_id;
    snapshot.alpha = 0.5;
    // Occasional degenerate inputs: the cache must key them safely too.
    if (i % 17 == 0) snapshot.bandwidth_mbps = 0.0;
    snapshots.push_back(snapshot);
    // "Previous rung" dwells for stretches, like a steady-state session.
    if (i % 8 == 0) prev = static_cast<std::size_t>(rng.uniform_int(0, 13));
  }
  return snapshots;
}

/// The planner evaluated on a canonical decision — the same composition the
/// fleet and the rolling-horizon selector use on a miss.
std::size_t solve_canonical(const Objective& objective,
                            std::vector<TaskEnvironment>& window,
                            const CanonicalDecision& canonical) {
  for (TaskEnvironment& env : window) {
    env.signal_dbm = canonical.signal_dbm;
    env.vibration = canonical.vibration;
    env.bandwidth_mbps = canonical.bandwidth_mbps;
  }
  return plan_horizon_first_action(objective, window, canonical.buffer_s,
                                   canonical.prev_level);
}

struct Params {
  std::uint64_t seed;
  std::size_t capacity;
};

class DecisionCacheProperties : public ::testing::TestWithParam<Params> {};

TEST_P(DecisionCacheProperties, CachedDecisionsEqualColdSolvesAtAnyCapacity) {
  const auto [seed, capacity] = GetParam();
  const Objective objective = make_objective();
  auto window = make_window();
  auto reference_window = make_window();
  const std::uint64_t ladder_id = hash_task_ladder(window);

  DecisionCacheConfig config;
  config.exact = false;
  config.prev_level_bucket = 2;
  config.capacity = capacity;
  DecisionCache cache(config);
  DecisionCache reference(config);  // canonicalization only, never stored to

  CostStats stats;
  std::uint64_t solves = 0;
  const auto snapshots = random_snapshots(400, seed, ladder_id);
  {
    CostStatsScope scope(stats);
    for (const DecisionSnapshot& snapshot : snapshots) {
      const std::size_t cached = cache.level_for(
          cache.canonicalize(snapshot), [&](const CanonicalDecision& c) {
            ++solves;
            return solve_canonical(objective, window, c);
          });
      const std::size_t cold = solve_canonical(
          objective, reference_window, reference.canonicalize(snapshot));
      ASSERT_EQ(cached, cold);  // caching/eviction never changes a decision
    }
  }
  // Counter conservation: every lookup is exactly one hit or one miss, every
  // miss is exactly one cold solve, and the scope mirrors the cache.
  EXPECT_EQ(cache.stats().lookups(), snapshots.size());
  EXPECT_EQ(cache.stats().misses, solves);
  EXPECT_EQ(stats.cache_hits, cache.stats().hits);
  EXPECT_EQ(stats.cache_misses, cache.stats().misses);
  EXPECT_EQ(stats.cache_evictions, cache.stats().evictions);
  if (capacity == 0) {
    EXPECT_EQ(cache.stats().hits, 0u);  // quantize-only: nothing stored
    EXPECT_EQ(solves, snapshots.size());
  } else {
    EXPECT_GT(cache.stats().hits, 0u);  // quantization must coalesce some
  }
}

TEST_P(DecisionCacheProperties, ExactKeyCacheMatchesRawSolvesBitwise) {
  const auto [seed, capacity] = GetParam();
  const Objective objective = make_objective();
  auto window = make_window();
  auto raw_window = make_window();
  const std::uint64_t ladder_id = hash_task_ladder(window);

  DecisionCacheConfig config;  // exact = true
  config.capacity = capacity;
  DecisionCache cache(config);

  for (const DecisionSnapshot& snapshot :
       random_snapshots(200, seed ^ 0x9E3779B9u, ladder_id)) {
    const std::size_t cached = cache.level_for(
        cache.canonicalize(snapshot), [&](const CanonicalDecision& c) {
          return solve_canonical(objective, window, c);
        });
    // The uncached planner on the raw snapshot, bit-for-bit.
    for (TaskEnvironment& env : raw_window) {
      env.signal_dbm = snapshot.signal_dbm;
      env.vibration = snapshot.vibration;
      env.bandwidth_mbps = snapshot.bandwidth_mbps;
    }
    const std::size_t uncached = plan_horizon_first_action(
        objective, raw_window, snapshot.buffer_s, snapshot.prev_level);
    ASSERT_EQ(cached, uncached);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Capacities, DecisionCacheProperties,
    ::testing::Values(Params{0xA11CE, 0}, Params{0xA11CE, 1},
                      Params{0xB0B, 64}, Params{0xB0B, 8192},
                      Params{0xC4FE, 1}, Params{0xC4FE, 8192}));

}  // namespace
}  // namespace eacs::core
