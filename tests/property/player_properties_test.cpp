// Property suite: player-simulator invariants over randomized sessions and
// every policy family. Parameterized over (seed, policy kind).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "eacs/abr/bba.h"
#include "eacs/abr/bola.h"
#include "eacs/abr/festive.h"
#include "eacs/abr/fixed.h"
#include "eacs/abr/mpc.h"
#include "eacs/core/horizon.h"
#include "eacs/core/online.h"
#include "eacs/player/player.h"
#include "eacs/trace/session.h"
#include "eacs/trace/signal_gen.h"
#include "eacs/trace/throughput_gen.h"
#include "eacs/trace/accel_gen.h"
#include "eacs/util/rng.h"

namespace eacs::player {
namespace {

enum class PolicyKind { kFixedTop, kFixedBottom, kFestive, kBba, kBola, kMpc,
                        kOurs, kHorizon };

const char* kind_name(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFixedTop: return "FixedTop";
    case PolicyKind::kFixedBottom: return "FixedBottom";
    case PolicyKind::kFestive: return "Festive";
    case PolicyKind::kBba: return "Bba";
    case PolicyKind::kBola: return "Bola";
    case PolicyKind::kMpc: return "Mpc";
    case PolicyKind::kOurs: return "Ours";
    case PolicyKind::kHorizon: return "Horizon";
  }
  return "?";
}

std::unique_ptr<AbrPolicy> make_policy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFixedTop: return std::make_unique<abr::FixedBitrate>();
    case PolicyKind::kFixedBottom:
      return std::make_unique<abr::FixedBitrate>(0, "Bottom");
    case PolicyKind::kFestive: return std::make_unique<abr::Festive>();
    case PolicyKind::kBba: return std::make_unique<abr::Bba>(5.0, 30.0);
    case PolicyKind::kBola: return std::make_unique<abr::Bola>(5.0, 30.0);
    case PolicyKind::kMpc: return std::make_unique<abr::Mpc>();
    case PolicyKind::kOurs: {
      core::Objective objective(qoe::QoeModel{}, power::PowerModel{},
                                core::ObjectiveConfig{});
      return std::make_unique<core::OnlineBitrateSelector>(
          objective, core::OnlineOptions{.startup_level = 2});
    }
    case PolicyKind::kHorizon: {
      core::Objective objective(qoe::QoeModel{}, power::PowerModel{},
                                core::ObjectiveConfig{});
      return std::make_unique<core::RollingHorizonSelector>(
          objective, core::HorizonOptions{.horizon = 4, .startup_level = 2});
    }
  }
  return nullptr;
}

/// Random session: arbitrary blend severity, random duration.
trace::SessionTraces random_session(std::uint64_t seed) {
  eacs::Rng rng(seed);
  trace::SessionTraces session;
  session.spec.id = static_cast<int>(seed % 100);
  session.spec.length_s = rng.uniform(60.0, 240.0);
  const double severity = rng.uniform(0.0, 1.0);
  const double margin = session.spec.length_s + 300.0;  // generous slack

  trace::SignalStrengthGenerator signal_gen(trace::SignalModel::blended(severity),
                                            seed ^ 0x51);
  session.signal_dbm = signal_gen.generate(margin);
  trace::ThroughputGenerator throughput_gen(trace::ThroughputModel{}, seed ^ 0x7417);
  session.throughput_mbps = throughput_gen.generate(session.signal_dbm);
  trace::AccelGenerator accel_gen(trace::AccelModel::moving_vehicle(), seed ^ 0xACC);
  session.accel =
      accel_gen.generate_calibrated(margin, rng.uniform(0.5, 7.0));
  return session;
}

struct Params {
  std::uint64_t seed;
  PolicyKind kind;
};

class PlayerInvariants : public ::testing::TestWithParam<Params> {};

TEST_P(PlayerInvariants, HoldOverRandomSessions) {
  const auto [seed, kind] = GetParam();
  const auto session = random_session(seed);
  const media::VideoManifest manifest("prop", session.spec.length_s, 2.0,
                                      media::BitrateLadder::evaluation14(),
                                      media::VbrModel{0.15});
  const PlayerSimulator simulator(manifest);
  auto policy = make_policy(kind);
  const auto result = simulator.run(*policy, session);

  // 1. Every segment downloaded exactly once, in order.
  ASSERT_EQ(result.tasks.size(), manifest.num_segments());
  for (std::size_t i = 0; i < result.tasks.size(); ++i) {
    EXPECT_EQ(result.tasks[i].segment_index, i);
  }

  // 2. Download windows are ordered and non-overlapping.
  for (std::size_t i = 1; i < result.tasks.size(); ++i) {
    EXPECT_GE(result.tasks[i].download_start_s,
              result.tasks[i - 1].download_end_s - 1e-9);
  }

  // 3. Wall-clock conservation: playback starts at startup_delay, plays the
  //    whole video, pausing only for the recorded stalls.
  double video_duration = 0.0;
  for (const auto& task : result.tasks) video_duration += task.duration_s;
  EXPECT_NEAR(result.session_end_s,
              result.startup_delay_s + video_duration + result.total_rebuffer_s,
              1e-6);

  // 4. Per-task sanity: sizes/durations positive, stalls non-negative,
  //    recorded throughput consistent with the download window.
  double total_mb = 0.0;
  std::size_t switches = 0;
  for (std::size_t i = 0; i < result.tasks.size(); ++i) {
    const auto& task = result.tasks[i];
    EXPECT_GT(task.size_mb, 0.0);
    EXPECT_GT(task.duration_s, 0.0);
    EXPECT_GE(task.rebuffer_s, 0.0);
    EXPECT_GT(task.throughput_mbps, 0.0);
    EXPECT_LE(task.buffer_before_s,
              simulator.config().buffer_threshold_s + 1e-6);
    EXPECT_NEAR(task.size_mb,
                manifest.segment_size_megabits(i, task.level) / 8.0, 1e-9);
    total_mb += task.size_mb;
    if (i > 0 && task.level != result.tasks[i - 1].level) ++switches;
  }
  EXPECT_NEAR(result.total_downloaded_mb(), total_mb, 1e-9);
  EXPECT_EQ(result.switch_count, switches);

  // 5. Rebuffer bookkeeping matches the per-task records.
  double stall_sum = 0.0;
  for (const auto& task : result.tasks) stall_sum += task.rebuffer_s;
  EXPECT_NEAR(result.total_rebuffer_s, stall_sum, 1e-9);
}

std::vector<Params> all_params() {
  std::vector<Params> params;
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    for (PolicyKind kind :
         {PolicyKind::kFixedTop, PolicyKind::kFixedBottom, PolicyKind::kFestive,
          PolicyKind::kBba, PolicyKind::kBola, PolicyKind::kMpc, PolicyKind::kOurs,
          PolicyKind::kHorizon}) {
      params.push_back({seed, kind});
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllPoliciesAndSeeds, PlayerInvariants,
                         ::testing::ValuesIn(all_params()),
                         [](const ::testing::TestParamInfo<Params>& info) {
                           return std::string(kind_name(info.param.kind)) + "_seed" +
                                  std::to_string(info.param.seed);
                         });

}  // namespace
}  // namespace eacs::player
