// Property suite for the parallel experiment engine: every sim sweep
// (Section V evaluation, fault study, robustness ensemble, CEM training)
// must produce bit-identical results at jobs = 1, 2 and 8. This is the
// engine's core guarantee (DESIGN.md, "Parallel execution model"): each
// unit of work is a pure function of its index, and reductions happen
// serially in index order, so the thread count can never leak into a
// number.

#include <gtest/gtest.h>

#include "eacs/sim/evaluation.h"
#include "eacs/sim/fault_study.h"
#include "eacs/sim/robustness.h"
#include "eacs/sim/training.h"
#include "../test_helpers.h"

namespace eacs::sim {
namespace {

using eacs::testing::make_session;

const std::size_t kJobCounts[] = {1, 2, 8};

std::vector<trace::SessionTraces> mini_sessions() {
  auto quiet = make_session(100.0, 25.0, -88.0, 0.5);
  quiet.spec.id = 1;
  quiet.spec.length_s = 100.0;
  auto shaky = make_session(100.0, 7.0, -107.0, 6.5);
  shaky.spec.id = 2;
  shaky.spec.length_s = 100.0;
  auto mid = make_session(100.0, 12.0, -98.0, 3.0);
  mid.spec.id = 3;
  mid.spec.length_s = 100.0;
  return {quiet, shaky, mid};
}

void expect_identical_rows(const EvaluationResult& a, const EvaluationResult& b,
                           std::size_t jobs) {
  ASSERT_EQ(a.rows.size(), b.rows.size()) << "jobs=" << jobs;
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    const SessionMetrics& x = a.rows[i];
    const SessionMetrics& y = b.rows[i];
    EXPECT_EQ(x.algorithm, y.algorithm) << "row " << i << " jobs=" << jobs;
    EXPECT_EQ(x.session_id, y.session_id) << "row " << i << " jobs=" << jobs;
    // EXPECT_EQ on doubles is exact: the guarantee is bit-identity, not
    // closeness.
    EXPECT_EQ(x.total_energy_j, y.total_energy_j) << "row " << i << " jobs=" << jobs;
    EXPECT_EQ(x.base_energy_j, y.base_energy_j) << "row " << i << " jobs=" << jobs;
    EXPECT_EQ(x.extra_energy_j, y.extra_energy_j) << "row " << i << " jobs=" << jobs;
    EXPECT_EQ(x.mean_qoe, y.mean_qoe) << "row " << i << " jobs=" << jobs;
    EXPECT_EQ(x.mean_bitrate_mbps, y.mean_bitrate_mbps)
        << "row " << i << " jobs=" << jobs;
    EXPECT_EQ(x.downloaded_mb, y.downloaded_mb) << "row " << i << " jobs=" << jobs;
    EXPECT_EQ(x.rebuffer_s, y.rebuffer_s) << "row " << i << " jobs=" << jobs;
    EXPECT_EQ(x.rebuffer_events, y.rebuffer_events) << "row " << i << " jobs=" << jobs;
    EXPECT_EQ(x.switch_count, y.switch_count) << "row " << i << " jobs=" << jobs;
    EXPECT_EQ(x.startup_delay_s, y.startup_delay_s) << "row " << i << " jobs=" << jobs;
    EXPECT_EQ(x.wasted_energy_j, y.wasted_energy_j) << "row " << i << " jobs=" << jobs;
    EXPECT_EQ(x.wasted_mb, y.wasted_mb) << "row " << i << " jobs=" << jobs;
    EXPECT_EQ(x.retries, y.retries) << "row " << i << " jobs=" << jobs;
    EXPECT_EQ(x.abandoned_segments, y.abandoned_segments)
        << "row " << i << " jobs=" << jobs;
  }
}

TEST(ParallelDeterminism, EvaluationIsBitIdenticalAcrossJobCounts) {
  const auto sessions = mini_sessions();
  EvaluationConfig config;
  config.exec.jobs = 1;
  const EvaluationResult serial = Evaluation(config).run(sessions);
  ASSERT_EQ(serial.rows.size(), 15U);  // 5 algorithms x 3 sessions

  for (const std::size_t jobs : kJobCounts) {
    config.exec.jobs = jobs;
    const EvaluationResult parallel = Evaluation(config).run(sessions);
    expect_identical_rows(serial, parallel, jobs);
  }
}

TEST(ParallelDeterminism, EvaluationAggregatesAreBitIdentical) {
  const auto sessions = mini_sessions();
  EvaluationConfig config;
  const EvaluationResult serial = Evaluation(config).run(sessions);
  config.exec.jobs = 8;
  const EvaluationResult parallel = Evaluation(config).run(sessions);
  for (const auto& algo : {"FESTIVE", "BBA", "Ours", "Optimal"}) {
    EXPECT_EQ(serial.mean_energy_saving(algo), parallel.mean_energy_saving(algo));
    EXPECT_EQ(serial.mean_extra_energy_saving(algo),
              parallel.mean_extra_energy_saving(algo));
    EXPECT_EQ(serial.mean_qoe(algo), parallel.mean_qoe(algo));
    EXPECT_EQ(serial.mean_qoe_degradation(algo), parallel.mean_qoe_degradation(algo));
    EXPECT_EQ(serial.saving_degradation_ratio(algo),
              parallel.saving_degradation_ratio(algo));
  }
}

TEST(ParallelDeterminism, FaultStudyIsBitIdenticalAcrossJobCounts) {
  FaultStudyConfig config;
  // A 2x2 grid keeps the test fast while still crossing both sweep axes.
  config.outage_rates_per_min = {0.0, 1.0};
  config.failure_probs = {0.0, 0.1};
  config.evaluation.session_options.margin_s = 60.0;

  config.evaluation.exec.jobs = 1;
  const FaultStudyResult serial = run_fault_study(config);
  ASSERT_FALSE(serial.cells.empty());

  for (const std::size_t jobs : kJobCounts) {
    config.evaluation.exec.jobs = jobs;
    const FaultStudyResult parallel = run_fault_study(config);
    ASSERT_EQ(serial.cells.size(), parallel.cells.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < serial.cells.size(); ++i) {
      const FaultCell& x = serial.cells[i];
      const FaultCell& y = parallel.cells[i];
      EXPECT_EQ(x.algorithm, y.algorithm) << "cell " << i << " jobs=" << jobs;
      EXPECT_EQ(x.outage_rate_per_min, y.outage_rate_per_min)
          << "cell " << i << " jobs=" << jobs;
      EXPECT_EQ(x.failure_prob, y.failure_prob) << "cell " << i << " jobs=" << jobs;
      EXPECT_EQ(x.mean_qoe, y.mean_qoe) << "cell " << i << " jobs=" << jobs;
      EXPECT_EQ(x.total_energy_j, y.total_energy_j) << "cell " << i << " jobs=" << jobs;
      EXPECT_EQ(x.wasted_energy_j, y.wasted_energy_j)
          << "cell " << i << " jobs=" << jobs;
      EXPECT_EQ(x.rebuffer_s, y.rebuffer_s) << "cell " << i << " jobs=" << jobs;
      EXPECT_EQ(x.retries, y.retries) << "cell " << i << " jobs=" << jobs;
      EXPECT_EQ(x.abandoned_segments, y.abandoned_segments)
          << "cell " << i << " jobs=" << jobs;
      EXPECT_EQ(x.qoe_delta, y.qoe_delta) << "cell " << i << " jobs=" << jobs;
      EXPECT_EQ(x.energy_delta_j, y.energy_delta_j) << "cell " << i << " jobs=" << jobs;
      EXPECT_EQ(x.rebuffer_delta_s, y.rebuffer_delta_s)
          << "cell " << i << " jobs=" << jobs;
    }
  }
}

TEST(ParallelDeterminism, RobustnessStudyIsBitIdenticalAcrossJobCounts) {
  EvaluationConfig config;
  config.session_options.margin_s = 60.0;
  const RobustnessResult serial =
      run_robustness_study(config, 3, 2026, ExecutionPolicy{1});

  for (const std::size_t jobs : kJobCounts) {
    const RobustnessResult parallel =
        run_robustness_study(config, 3, 2026, ExecutionPolicy{jobs});
    ASSERT_EQ(serial.per_algorithm.size(), parallel.per_algorithm.size());
    for (const auto& [algo, dist] : serial.per_algorithm) {
      const auto& other = parallel.per_algorithm.at(algo);
      EXPECT_EQ(dist.energy_saving.mean(), other.energy_saving.mean())
          << algo << " jobs=" << jobs;
      EXPECT_EQ(dist.energy_saving.stddev(), other.energy_saving.stddev())
          << algo << " jobs=" << jobs;
      EXPECT_EQ(dist.extra_energy_saving.mean(), other.extra_energy_saving.mean())
          << algo << " jobs=" << jobs;
      EXPECT_EQ(dist.qoe_degradation.mean(), other.qoe_degradation.mean())
          << algo << " jobs=" << jobs;
      EXPECT_EQ(dist.mean_qoe.mean(), other.mean_qoe.mean())
          << algo << " jobs=" << jobs;
    }
  }
}

TEST(ParallelDeterminism, CemTrainingIsBitIdenticalAcrossJobCounts) {
  auto sessions = mini_sessions();
  sessions.resize(2);
  const CemTrainer trainer(CemTrainer::make_episodes(std::move(sessions)));
  CemConfig config;
  config.population = 8;
  config.elites = 2;
  config.iterations = 2;
  config.seed = 4242;

  config.exec.jobs = 1;
  const TrainingResult serial = trainer.train(config);

  for (const std::size_t jobs : kJobCounts) {
    config.exec.jobs = jobs;
    const TrainingResult parallel = trainer.train(config);
    ASSERT_EQ(serial.weights.size(), parallel.weights.size()) << "jobs=" << jobs;
    for (std::size_t i = 0; i < serial.weights.size(); ++i) {
      EXPECT_EQ(serial.weights[i], parallel.weights[i])
          << "weight " << i << " jobs=" << jobs;
    }
    ASSERT_EQ(serial.reward_history.size(), parallel.reward_history.size());
    for (std::size_t i = 0; i < serial.reward_history.size(); ++i) {
      EXPECT_EQ(serial.reward_history[i], parallel.reward_history[i])
          << "iteration " << i << " jobs=" << jobs;
    }
    EXPECT_EQ(serial.final_reward, parallel.final_reward) << "jobs=" << jobs;
  }
}

}  // namespace
}  // namespace eacs::sim
