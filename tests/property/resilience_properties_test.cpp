// Property suite for the fault-injection + retry machinery: determinism in
// (config, seed), bounded retries, monotone backoff, and guaranteed
// termination even under a total outage.

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "eacs/abr/fixed.h"
#include "eacs/net/fault_injector.h"
#include "eacs/player/player.h"
#include "eacs/util/rng.h"
#include "../test_helpers.h"

namespace eacs::player {
namespace {

using eacs::testing::make_manifest;
using eacs::testing::make_session;

net::FaultSpec random_spec(std::uint64_t seed) {
  eacs::Rng rng(seed);
  net::FaultSpec spec;
  spec.outage_rate_per_min = rng.uniform(0.2, 2.0);
  spec.outage_mean_s = rng.uniform(2.0, 10.0);
  spec.failure_prob = rng.uniform(0.0, 0.4);
  spec.stall_prob = rng.uniform(0.0, 0.15);
  spec.seed = seed;
  return spec;
}

class ResilienceProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ResilienceProperties, IdenticalConfigAndSeedReproduceEverything) {
  const auto session = make_session(40.0, 10.0);
  const auto spec = random_spec(GetParam());

  // Same (trace, spec): identical outage schedules, bit-for-bit.
  const net::FaultInjector a(session.throughput_mbps, spec, &session.signal_dbm);
  const net::FaultInjector b(session.throughput_mbps, spec, &session.signal_dbm);
  ASSERT_EQ(a.outage_schedule().size(), b.outage_schedule().size());
  for (std::size_t i = 0; i < a.outage_schedule().size(); ++i) {
    EXPECT_EQ(a.outage_schedule()[i].start_s, b.outage_schedule()[i].start_s);
    EXPECT_EQ(a.outage_schedule()[i].end_s, b.outage_schedule()[i].end_s);
  }

  // Same (player, policy, session, injector): identical playback, bit-for-bit.
  const PlayerSimulator simulator(make_manifest(40.0, 2.0));
  abr::FixedBitrate policy_a(6, "Fixed6");
  abr::FixedBitrate policy_b(6, "Fixed6");
  const auto x = simulator.run(policy_a, session, a);
  const auto y = simulator.run(policy_b, session, b);

  ASSERT_EQ(x.tasks.size(), y.tasks.size());
  for (std::size_t i = 0; i < x.tasks.size(); ++i) {
    EXPECT_EQ(x.tasks[i].level, y.tasks[i].level);
    EXPECT_EQ(x.tasks[i].download_end_s, y.tasks[i].download_end_s);
    EXPECT_EQ(x.tasks[i].retries, y.tasks[i].retries);
    EXPECT_EQ(x.tasks[i].wasted_mb, y.tasks[i].wasted_mb);
    EXPECT_EQ(x.tasks[i].backoff_s, y.tasks[i].backoff_s);
    EXPECT_EQ(x.tasks[i].rebuffer_s, y.tasks[i].rebuffer_s);
  }
  EXPECT_EQ(x.session_end_s, y.session_end_s);
  EXPECT_EQ(x.total_rebuffer_s, y.total_rebuffer_s);
  EXPECT_EQ(x.total_wasted_mb, y.total_wasted_mb);
  EXPECT_EQ(x.total_backoff_s, y.total_backoff_s);
}

TEST_P(ResilienceProperties, RetriesAreBoundedByMaxRetries) {
  const auto session = make_session(40.0, 8.0);
  const auto spec = random_spec(GetParam() ^ 0xBEEF);
  const net::FaultInjector faults(session.throughput_mbps, spec, &session.signal_dbm);

  const PlayerSimulator simulator(make_manifest(40.0, 2.0));
  abr::FixedBitrate policy(9, "Fixed9");
  const auto result = simulator.run(policy, session, faults);

  const auto& res = simulator.config().resilience;
  ASSERT_EQ(result.tasks.size(), simulator.manifest().num_segments());
  std::size_t sum = 0;
  for (const auto& task : result.tasks) {
    EXPECT_LE(task.retries, res.max_retries);
    sum += task.retries;
  }
  EXPECT_EQ(sum, result.total_retries);
}

TEST_P(ResilienceProperties, BackoffIsMonotoneAndBounded) {
  ResilienceConfig config;
  config.backoff_jitter = 0.0;
  // Without jitter the schedule is exactly min(base * factor^a, max),
  // non-decreasing in the attempt number.
  double prev = 0.0;
  for (std::size_t attempt = 0; attempt < 10; ++attempt) {
    const double wait = retry_backoff_s(config, GetParam(), 3, attempt);
    EXPECT_GE(wait, prev);
    EXPECT_NEAR(wait,
                std::min(config.backoff_base_s *
                             std::pow(config.backoff_factor,
                                      static_cast<double>(attempt)),
                         config.backoff_max_s),
                1e-12);
    prev = wait;
  }

  // With jitter every wait stays within [base, base * (1 + jitter)] of its
  // attempt's deterministic base, and is itself deterministic in the seed.
  config.backoff_jitter = 0.25;
  for (std::size_t attempt = 0; attempt < 10; ++attempt) {
    const double base = std::min(
        config.backoff_base_s *
            std::pow(config.backoff_factor, static_cast<double>(attempt)),
        config.backoff_max_s);
    const double wait = retry_backoff_s(config, GetParam(), 3, attempt);
    EXPECT_GE(wait, base);
    EXPECT_LE(wait, base * (1.0 + config.backoff_jitter));
    EXPECT_EQ(wait, retry_backoff_s(config, GetParam(), 3, attempt));
  }
}

TEST_P(ResilienceProperties, BackoffIsAPureFunctionOfSeedSegmentAttempt) {
  // The schedule must depend on nothing but (config, seed, segment, attempt):
  // no hidden state, no call-order sensitivity. Build a reference table, then
  // re-query in reverse order, interleaved with decoy lookups, through a
  // copied config — every value bit-identical.
  const ResilienceConfig config;
  const std::uint64_t seed = GetParam();
  constexpr std::size_t kSegments = 7;
  constexpr std::size_t kAttempts = 6;
  double reference[kSegments][kAttempts];
  for (std::size_t s = 0; s < kSegments; ++s) {
    for (std::size_t a = 0; a < kAttempts; ++a) {
      reference[s][a] = retry_backoff_s(config, seed, s, a);
    }
  }
  const ResilienceConfig copy = config;
  for (std::size_t s = kSegments; s-- > 0;) {
    for (std::size_t a = kAttempts; a-- > 0;) {
      (void)retry_backoff_s(copy, seed ^ 0xDEC0'11DEULL, a, s);  // decoy
      EXPECT_EQ(retry_backoff_s(copy, seed, s, a), reference[s][a]);
    }
  }
  // The jitter really keys on its inputs: a different seed or segment index
  // must perturb at least one entry of the table.
  bool seed_matters = false;
  bool segment_matters = false;
  for (std::size_t a = 0; a < kAttempts; ++a) {
    if (retry_backoff_s(config, seed ^ 1, 0, a) != reference[0][a]) {
      seed_matters = true;
    }
    if (retry_backoff_s(config, seed, kSegments, a) != reference[0][a]) {
      segment_matters = true;
    }
  }
  EXPECT_TRUE(seed_matters);
  EXPECT_TRUE(segment_matters);
}

TEST_P(ResilienceProperties, BackoffScheduleIdenticalAcrossThreadCounts) {
  // Concurrent evaluation is how the parallel sweeps consume the schedule:
  // whatever the thread count or interleaving, every (segment, attempt)
  // lookup lands on the serial value bit-for-bit.
  const ResilienceConfig config;
  const std::uint64_t seed = GetParam() ^ 0x7EA2'F00DULL;
  constexpr std::size_t kSegments = 32;
  constexpr std::size_t kAttempts = 5;
  std::vector<double> serial(kSegments * kAttempts);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    serial[i] = retry_backoff_s(config, seed, i / kAttempts, i % kAttempts);
  }
  for (const std::size_t jobs : {2U, 8U}) {
    std::vector<double> parallel(serial.size());
    std::vector<std::thread> workers;
    for (std::size_t w = 0; w < jobs; ++w) {
      workers.emplace_back([&, w] {
        for (std::size_t i = w; i < parallel.size(); i += jobs) {
          parallel[i] = retry_backoff_s(config, seed, i / kAttempts, i % kAttempts);
        }
      });
    }
    for (auto& worker : workers) worker.join();
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(parallel[i], serial[i]) << "jobs=" << jobs << " item " << i;
    }
  }
}

TEST_P(ResilienceProperties, BackoffNeverExceedsTheJitteredCap) {
  // The cap holds for any attempt index, including ones far beyond
  // max_retries where factor^attempt is astronomically large.
  ResilienceConfig config;
  config.backoff_jitter = 0.25;
  const double cap = config.backoff_max_s * (1.0 + config.backoff_jitter);
  for (const std::size_t attempt : {0UL, 1UL, 5UL, 17UL, 60UL, 200UL}) {
    const double wait = retry_backoff_s(config, GetParam(), 11, attempt);
    EXPECT_TRUE(std::isfinite(wait));
    EXPECT_GT(wait, 0.0);
    EXPECT_LE(wait, cap);
  }
}

TEST_P(ResilienceProperties, TotalOutageStillTerminatesWithFiniteAccounting) {
  // The entire session (trace + margin) sits inside one outage window: every
  // regular attempt times out and even the rescue fetch crawls on a dead
  // link. The session must still terminate with finite accounting.
  const auto session = make_session(8.0, 10.0, -90.0, 0.0, 60.0);
  net::FaultSpec spec;
  spec.outages = {{0.0, 1e6}};
  spec.seed = GetParam();
  const net::FaultInjector faults(session.throughput_mbps, spec);

  const PlayerSimulator simulator(make_manifest(8.0, 2.0));
  abr::FixedBitrate policy(4, "Fixed4");
  const auto result = simulator.run(policy, session, faults);

  const auto& res = simulator.config().resilience;
  ASSERT_EQ(result.tasks.size(), simulator.manifest().num_segments());
  // The first segment starts inside the dead window: it must burn all its
  // retries and fall back to the lowest-rung rescue fetch. (The rescue drags
  // the wall clock to the window's far edge, so later segments may see a
  // healthy link again — the property is termination, not uniform misery.)
  EXPECT_EQ(result.tasks.front().retries, res.max_retries);
  EXPECT_EQ(result.tasks.front().level,
            simulator.manifest().ladder().lowest_level());
  for (const auto& task : result.tasks) {
    EXPECT_LE(task.retries, res.max_retries);
  }
  EXPECT_TRUE(std::isfinite(result.session_end_s));
  EXPECT_TRUE(std::isfinite(result.total_rebuffer_s));
  EXPECT_GE(result.total_rebuffer_s, 0.0);
  EXPECT_TRUE(std::isfinite(result.total_backoff_s));
  EXPECT_GE(result.total_retries, res.max_retries);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ResilienceProperties,
                         ::testing::Values(1ULL, 2ULL, 3ULL, 17ULL, 99ULL,
                                           0xFA01'7EC7ULL));

}  // namespace
}  // namespace eacs::player
