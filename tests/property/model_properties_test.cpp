// Property suite: monotonicity and bounds of the QoE and power models, plus
// MPD round-trip losslessness, over randomized parameter draws.

#include <gtest/gtest.h>

#include <cmath>

#include "eacs/media/mpd.h"
#include "eacs/power/model.h"
#include "eacs/qoe/model.h"
#include "eacs/util/rng.h"

namespace eacs {
namespace {

class ModelProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelProperties, QoeBoundsAndMonotonicity) {
  eacs::Rng rng(GetParam());
  const qoe::QoeModel model;
  for (int trial = 0; trial < 200; ++trial) {
    const double r = rng.uniform(0.01, 8.0);
    const double v = rng.uniform(0.0, 8.0);
    const double q = model.perceived_quality(r, v);
    EXPECT_GE(q, 1.0);
    EXPECT_LE(q, 5.0);
    // More vibration never improves perceived quality.
    EXPECT_LE(model.perceived_quality(r, v + 1.0), q + 1e-12);
    // Original quality is non-decreasing in bitrate.
    EXPECT_GE(model.original_quality(r + 0.5), model.original_quality(r) - 1e-12);
    // Impairment is non-negative and grows with both arguments.
    const double impairment = model.vibration_impairment(v, r);
    EXPECT_GE(impairment, 0.0);
    EXPECT_GE(model.vibration_impairment(v + 0.5, r), impairment - 1e-12);
    EXPECT_GE(model.vibration_impairment(v, r + 0.5), impairment - 1e-12);
  }
}

TEST_P(ModelProperties, SegmentQoeNeverExceedsOriginalQuality) {
  eacs::Rng rng(GetParam() ^ 0xA);
  const qoe::QoeModel model;
  for (int trial = 0; trial < 200; ++trial) {
    qoe::SegmentContext ctx;
    ctx.bitrate_mbps = rng.uniform(0.05, 6.0);
    ctx.vibration = rng.uniform(0.0, 7.0);
    ctx.prev_bitrate_mbps = rng.uniform(0.0, 6.0);
    ctx.rebuffer_s = rng.uniform(0.0, 4.0);
    EXPECT_LE(model.segment_qoe(ctx), model.original_quality(ctx.bitrate_mbps) + 1e-12);
  }
}

TEST_P(ModelProperties, PowerMonotonicity) {
  eacs::Rng rng(GetParam() ^ 0xB);
  const power::PowerModel model;
  for (int trial = 0; trial < 200; ++trial) {
    const double s = rng.uniform(-118.0, -80.0);
    const double mb = rng.uniform(0.0, 50.0);
    // Weaker signal never cheapens a transfer.
    EXPECT_GE(model.download_energy(mb, s - 2.0), model.download_energy(mb, s) - 1e-9);
    // More data never costs less.
    EXPECT_GE(model.download_energy(mb + 1.0, s), model.download_energy(mb, s));
    // Task energy is additive in its parts.
    power::TaskEnergyInput input;
    input.size_mb = mb;
    input.signal_dbm = s;
    input.bitrate_mbps = rng.uniform(0.1, 5.8);
    input.play_s = rng.uniform(0.5, 4.0);
    input.rebuffer_s = rng.uniform(0.0, 2.0);
    const double expected = model.download_energy(mb, s) +
                            model.playback_power(input.bitrate_mbps) * input.play_s +
                            model.pause_power() * input.rebuffer_s;
    EXPECT_NEAR(model.task_energy(input), expected, 1e-9);
  }
}

TEST_P(ModelProperties, MpdRoundTripIsLossless) {
  eacs::Rng rng(GetParam() ^ 0xC);
  for (int trial = 0; trial < 10; ++trial) {
    // Random ladder (3-10 rungs), random durations, random VBR.
    std::vector<media::BitrateRung> rungs;
    double rate = rng.uniform(0.05, 0.3);
    const auto rung_count = static_cast<std::size_t>(rng.uniform_int(3, 10));
    for (std::size_t i = 0; i < rung_count; ++i) {
      rungs.push_back({rate, ""});
      rate *= rng.uniform(1.3, 2.2);
    }
    const media::VideoManifest original(
        "prop" + std::to_string(trial), rng.uniform(30.0, 600.0),
        rng.uniform(1.0, 6.0), media::BitrateLadder(rungs),
        media::VbrModel{rng.uniform(0.0, 0.3)});
    const auto parsed = media::from_mpd_xml(media::to_mpd_xml(original));
    ASSERT_EQ(parsed.num_segments(), original.num_segments());
    ASSERT_EQ(parsed.ladder().size(), original.ladder().size());
    // MPD carries bandwidth as integer bits/s and durations on an integer
    // (microsecond) timescale, so round-trips are exact only up to that
    // quantisation. The last segment's duration is total - (N-1)*segdur, so
    // it additionally absorbs N times the per-segment rounding: its
    // tolerance scales with the segment count.
    const double duration_slack =
        static_cast<double>(original.num_segments()) * 1e-6;  // seconds
    for (std::size_t i = 0; i < original.num_segments();
         i += std::max<std::size_t>(1, original.num_segments() / 7)) {
      for (std::size_t level = 0; level < original.ladder().size(); ++level) {
        const double want = original.segment_size_megabits(i, level);
        const double slack =
            want * 1e-4 + original.ladder().bitrate(level) * duration_slack + 1e-6;
        EXPECT_NEAR(parsed.segment_size_megabits(i, level), want, slack);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelProperties,
                         ::testing::Values(31, 32, 33, 34));

}  // namespace
}  // namespace eacs
