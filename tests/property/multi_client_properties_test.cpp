// Property suite: multi-client simulator invariants over random fleet
// configurations.

#include <gtest/gtest.h>

#include <memory>

#include "eacs/abr/bba.h"
#include "eacs/abr/festive.h"
#include "eacs/abr/fixed.h"
#include "eacs/player/multi_client.h"
#include "eacs/util/rng.h"
#include "../test_helpers.h"

namespace eacs::player {
namespace {

class MultiClientProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MultiClientProperties, PerClientInvariantsHold) {
  eacs::Rng rng(GetParam());
  const double duration = rng.uniform(40.0, 120.0);
  const auto manifest = eacs::testing::make_manifest(duration, 2.0);
  const auto session = eacs::testing::make_session(duration, 10.0, -100.0, 4.0);

  // Random fleet: 2-5 clients with mixed policies and join times.
  const auto fleet_size = static_cast<std::size_t>(rng.uniform_int(2, 5));
  std::vector<std::unique_ptr<AbrPolicy>> policies;
  std::vector<ClientSetup> clients;
  for (std::size_t i = 0; i < fleet_size; ++i) {
    switch (rng.uniform_int(0, 2)) {
      case 0: policies.push_back(std::make_unique<abr::Festive>()); break;
      case 1: policies.push_back(std::make_unique<abr::Bba>(5.0, 30.0)); break;
      default:
        policies.push_back(std::make_unique<abr::FixedBitrate>(
            static_cast<std::size_t>(rng.uniform_int(0, 13)), "Fixed"));
    }
    clients.push_back(
        {&manifest, policies.back().get(), &session, rng.uniform(0.0, 10.0)});
  }

  trace::TimeSeries capacity;
  capacity.append(0.0, rng.uniform(8.0, 30.0));
  capacity.append(4000.0, rng.uniform(8.0, 30.0));
  MultiClientSimulator simulator(capacity);
  const auto results = simulator.run(clients);
  ASSERT_EQ(results.size(), fleet_size);

  for (std::size_t c = 0; c < fleet_size; ++c) {
    const auto& result = results[c];
    // Every segment downloaded once, in order, after the join time.
    ASSERT_EQ(result.tasks.size(), manifest.num_segments());
    EXPECT_GE(result.tasks.front().download_start_s, clients[c].join_time_s - 1e-9);
    for (std::size_t i = 0; i < result.tasks.size(); ++i) {
      EXPECT_EQ(result.tasks[i].segment_index, i);
      if (i > 0) {
        EXPECT_GE(result.tasks[i].download_start_s,
                  result.tasks[i - 1].download_end_s - 1e-9);
      }
      EXPECT_GT(result.tasks[i].throughput_mbps, 0.0);
      EXPECT_GE(result.tasks[i].rebuffer_s, 0.0);
      EXPECT_NEAR(result.tasks[i].size_mb,
                  manifest.segment_size_megabits(i, result.tasks[i].level) / 8.0,
                  1e-9);
    }
    // Stall bookkeeping consistent.
    double stall_sum = 0.0;
    for (const auto& task : result.tasks) stall_sum += task.rebuffer_s;
    EXPECT_NEAR(result.total_rebuffer_s, stall_sum, 1e-9);
  }
}

TEST_P(MultiClientProperties, AggregateThroughputBoundedByCapacity) {
  eacs::Rng rng(GetParam() ^ 0xCAFE);
  const auto manifest = eacs::testing::make_manifest(60.0, 2.0);
  const auto session = eacs::testing::make_session(60.0, 10.0);
  const double link = rng.uniform(6.0, 20.0);
  trace::TimeSeries capacity;
  capacity.append(0.0, link);
  capacity.append(4000.0, link);

  abr::FixedBitrate a(10, "A");
  abr::FixedBitrate b(10, "B");
  std::vector<ClientSetup> clients = {{&manifest, &a, &session, 0.0},
                                      {&manifest, &b, &session, 0.0}};
  MultiClientSimulator simulator(capacity);
  const auto results = simulator.run(clients);

  // Total bits delivered cannot exceed capacity * elapsed time.
  double total_megabits = 0.0;
  double last_end = 0.0;
  for (const auto& result : results) {
    total_megabits += result.total_downloaded_mb() * 8.0;
    last_end = std::max(last_end, result.tasks.back().download_end_s);
  }
  EXPECT_LE(total_megabits, link * last_end * 1.02 + 1.0);  // 2% step slack
}

INSTANTIATE_TEST_SUITE_P(Seeds, MultiClientProperties,
                         ::testing::Values(41, 42, 43, 44, 45));

}  // namespace
}  // namespace eacs::player
