// Property suite: the trace-driven downloader is the exact inverse of the
// throughput trace's time-integral.

#include <gtest/gtest.h>

#include "eacs/net/downloader.h"
#include "eacs/util/rng.h"

namespace eacs::net {
namespace {

trace::TimeSeries random_trace(std::uint64_t seed) {
  eacs::Rng rng(seed);
  trace::TimeSeries series;
  double t = 0.0;
  for (int i = 0; i < 200; ++i) {
    series.append(t, rng.uniform(0.5, 30.0));
    t += rng.uniform(0.2, 2.0);
  }
  return series;
}

class DownloaderProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DownloaderProperties, IntegralInverseDuality) {
  // integral_over(start, end) == size for every completed download.
  const auto series = random_trace(GetParam());
  const SegmentDownloader downloader(series);
  eacs::Rng rng(GetParam() ^ 0xD0);
  for (int trial = 0; trial < 100; ++trial) {
    const double start = rng.uniform(0.0, series.end_time() * 0.6);
    const double size = rng.uniform(0.1, 40.0);
    const auto result = downloader.download(start, size);
    EXPECT_GT(result.end_s, start);
    EXPECT_NEAR(series.integral_over(start, result.end_s), size, 1e-6)
        << "start " << start << " size " << size;
  }
}

TEST_P(DownloaderProperties, MonotoneInSize) {
  const auto series = random_trace(GetParam());
  const SegmentDownloader downloader(series);
  eacs::Rng rng(GetParam() ^ 0xD1);
  for (int trial = 0; trial < 50; ++trial) {
    const double start = rng.uniform(0.0, series.end_time() * 0.5);
    const double small = rng.uniform(0.1, 10.0);
    const double large = small + rng.uniform(0.1, 10.0);
    EXPECT_LT(downloader.download(start, small).end_s,
              downloader.download(start, large).end_s);
  }
}

TEST_P(DownloaderProperties, ChainingIsAdditive) {
  // Downloading s1 then s2 (starting where s1 ended) lands exactly where a
  // single s1+s2 download lands.
  const auto series = random_trace(GetParam());
  const SegmentDownloader downloader(series);
  eacs::Rng rng(GetParam() ^ 0xD2);
  for (int trial = 0; trial < 50; ++trial) {
    const double start = rng.uniform(0.0, series.end_time() * 0.4);
    const double s1 = rng.uniform(0.1, 15.0);
    const double s2 = rng.uniform(0.1, 15.0);
    const auto first = downloader.download(start, s1);
    const auto second = downloader.download(first.end_s, s2);
    const auto combined = downloader.download(start, s1 + s2);
    EXPECT_NEAR(second.end_s, combined.end_s, 1e-6);
  }
}

TEST_P(DownloaderProperties, LaterStartNeverFinishesEarlier) {
  const auto series = random_trace(GetParam());
  const SegmentDownloader downloader(series);
  eacs::Rng rng(GetParam() ^ 0xD3);
  for (int trial = 0; trial < 50; ++trial) {
    const double start = rng.uniform(0.0, series.end_time() * 0.5);
    const double delta = rng.uniform(0.1, 20.0);
    const double size = rng.uniform(0.5, 20.0);
    EXPECT_LE(downloader.download(start, size).end_s,
              downloader.download(start + delta, size).end_s + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DownloaderProperties,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

}  // namespace
}  // namespace eacs::net
