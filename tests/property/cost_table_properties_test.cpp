// Certification suite for the TaskCostTable hot-path cache: cached edge
// costs, plans and online decisions must be BIT-IDENTICAL (EXPECT_EQ on
// doubles, no tolerance) to the pre-table Objective::task_cost formulation,
// over randomized ladders / signal / vibration / bandwidth, for all three
// solvers and the rolling-horizon selector. Also pins the deterministic
// CostStats eval counters: O(N*M) model evaluations per cached plan vs.
// O(N*M^2) for the reference formulation.

#include <gtest/gtest.h>

#include <limits>
#include <optional>
#include <vector>

#include "eacs/core/cost_stats.h"
#include "eacs/core/cost_table.h"
#include "eacs/core/graph.h"
#include "eacs/core/horizon.h"
#include "eacs/core/optimal.h"
#include "eacs/util/rng.h"

namespace eacs::core {
namespace {

Objective make_objective(double alpha, bool context_aware = true) {
  ObjectiveConfig config;
  config.alpha = alpha;
  config.context_aware = context_aware;
  return Objective(qoe::QoeModel{}, power::PowerModel{}, config);
}

/// Randomized task environments with a randomized (strictly ascending)
/// ladder: sizes, duration, signal, vibration and bandwidth all drawn fresh.
std::vector<TaskEnvironment> random_tasks(std::size_t n, std::size_t m,
                                          std::uint64_t seed) {
  eacs::Rng rng(seed);
  std::vector<TaskEnvironment> tasks;
  tasks.reserve(n);
  std::vector<double> sizes;
  double size = rng.uniform(0.1, 1.0);
  for (std::size_t level = 0; level < m; ++level) {
    sizes.push_back(size);
    size += rng.uniform(0.05, 3.0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    TaskEnvironment env;
    env.index = i;
    env.duration_s = rng.uniform(0.5, 6.0);
    env.signal_dbm = rng.uniform(-120.0, -80.0);
    env.vibration = rng.uniform(0.0, 8.0);  // past the clamp-inducing range
    env.bandwidth_mbps = rng.uniform(0.3, 40.0);
    env.size_megabits = sizes;
    tasks.push_back(std::move(env));
  }
  return tasks;
}

/// A degenerate ladder with duplicated rungs: duplicate sizes produce exact
/// cost ties between levels, the regime where solver tie-breaking matters.
std::vector<TaskEnvironment> tied_tasks(std::size_t n, std::uint64_t seed) {
  auto tasks = random_tasks(n, 6, seed);
  for (auto& env : tasks) {
    env.size_megabits = {1.0, 1.0, 2.0, 2.0, 3.0, 3.0};
  }
  return tasks;
}

/// The pre-change formulation of a plan's cost, summed edge by edge.
double legacy_plan_cost(const Objective& objective,
                        const std::vector<TaskEnvironment>& tasks,
                        const std::vector<std::size_t>& levels, double buffer_s) {
  double cost = objective.task_cost(tasks[0], levels[0], std::nullopt, buffer_s);
  for (std::size_t i = 1; i < tasks.size(); ++i) {
    cost += objective.task_cost(tasks[i], levels[i], levels[i - 1], buffer_s);
  }
  return cost;
}

struct Params {
  std::uint64_t seed;
  std::size_t num_levels;
  double alpha;
};

class CostTableBitIdentity : public ::testing::TestWithParam<Params> {};

TEST_P(CostTableBitIdentity, EdgeCostEqualsTaskCostExactly) {
  const auto [seed, m, alpha] = GetParam();
  const Objective objective = make_objective(alpha);
  const auto tasks = random_tasks(8, m, seed);
  for (const double buffer_s : {5.0, 30.0}) {
    for (const auto& env : tasks) {
      const TaskCostTable table(objective, env, buffer_s);
      ASSERT_EQ(table.num_levels(), m);
      for (std::size_t j = 0; j < m; ++j) {
        EXPECT_EQ(table.edge_cost(j),
                  objective.task_cost(env, j, std::nullopt, buffer_s))
            << "level " << j << " buffer " << buffer_s;
        for (std::size_t jp = 0; jp < m; ++jp) {
          EXPECT_EQ(table.edge_cost(j, jp),
                    objective.task_cost(env, j, jp, buffer_s))
              << "level " << j << " prev " << jp << " buffer " << buffer_s;
        }
      }
    }
  }
}

TEST_P(CostTableBitIdentity, ComponentsMatchTheirModelDefinitions) {
  const auto [seed, m, alpha] = GetParam();
  const Objective objective = make_objective(alpha);
  const auto tasks = random_tasks(4, m, seed);
  const double buffer_s = 30.0;
  for (const auto& env : tasks) {
    const TaskCostTable table(objective, env, buffer_s);
    const std::size_t top = m - 1;
    EXPECT_EQ(table.energy_max(), objective.task_energy(env, top, buffer_s));
    EXPECT_EQ(table.quality_max(),
              objective.task_qoe(env, top, std::nullopt,
                                 objective.config().buffer_threshold_s));
    for (std::size_t j = 0; j < m; ++j) {
      EXPECT_EQ(table.energy(j), objective.task_energy(env, j, buffer_s));
      EXPECT_EQ(table.rebuffer_s(j),
                objective.expected_rebuffer_s(env.size_megabits[j],
                                              env.bandwidth_mbps, buffer_s));
    }
  }
}

TEST_P(CostTableBitIdentity, CachedDpPlanBitIdenticalToReference) {
  const auto [seed, m, alpha] = GetParam();
  const Objective objective = make_objective(alpha);
  OptimalPlanner planner(objective);
  const auto tasks = random_tasks(30, m, seed);
  const auto cached = planner.plan(tasks, PlannerMethod::kDagDp);
  const auto reference = planner.plan_reference(tasks);
  EXPECT_EQ(cached.levels, reference.levels);
  EXPECT_EQ(cached.total_cost, reference.total_cost);  // bitwise, no tolerance
  EXPECT_EQ(legacy_plan_cost(objective, tasks, cached.levels, 30.0),
            cached.total_cost);
}

TEST_P(CostTableBitIdentity, ContextAwareAblationStaysBitIdentical) {
  const auto [seed, m, alpha] = GetParam();
  const Objective objective = make_objective(alpha, /*context_aware=*/false);
  OptimalPlanner planner(objective);
  const auto tasks = random_tasks(15, m, seed);
  const auto cached = planner.plan(tasks, PlannerMethod::kDagDp);
  const auto reference = planner.plan_reference(tasks);
  EXPECT_EQ(cached.levels, reference.levels);
  EXPECT_EQ(cached.total_cost, reference.total_cost);
}

TEST_P(CostTableBitIdentity, AllThreeSolversReturnIdenticalPlans) {
  const auto [seed, m, alpha] = GetParam();
  const Objective objective = make_objective(alpha);
  OptimalPlanner planner(objective);
  const auto tasks = random_tasks(20, m, seed);

  const auto dp = planner.plan(tasks, PlannerMethod::kDagDp);
  const auto dijkstra = planner.plan(tasks, PlannerMethod::kDijkstra);
  const auto graph = build_selection_graph(objective, tasks);
  const auto bellman_ford = bellman_ford_shortest_path(graph);

  EXPECT_EQ(dp.levels, dijkstra.levels);
  EXPECT_EQ(dp.levels, bellman_ford.levels);
  // Total costs accumulate in different orders (DP prefix sums vs. offset
  // Dijkstra vs. BF), so cost equality is near, not bitwise.
  EXPECT_NEAR(dp.total_cost, dijkstra.total_cost, 1e-9);
  EXPECT_NEAR(dp.total_cost, bellman_ford.total_cost, 1e-9);
}

TEST_P(CostTableBitIdentity, ReferenceLevelMatchesLegacyArgmin) {
  const auto [seed, m, alpha] = GetParam();
  const Objective objective = make_objective(alpha);
  const auto tasks = random_tasks(12, m, seed);
  for (const double buffer_s : {2.0, 30.0}) {
    for (const auto& env : tasks) {
      std::size_t legacy_best = 0;
      double legacy_cost = objective.task_cost(env, 0, std::nullopt, buffer_s);
      for (std::size_t level = 1; level < m; ++level) {
        const double cost = objective.task_cost(env, level, std::nullopt, buffer_s);
        if (cost < legacy_cost) {
          legacy_cost = cost;
          legacy_best = level;
        }
      }
      EXPECT_EQ(objective.reference_level(env, buffer_s), legacy_best);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomLadders, CostTableBitIdentity,
    ::testing::Values(Params{101, 2, 0.5}, Params{102, 5, 0.5},
                      Params{103, 14, 0.5}, Params{104, 9, 0.2},
                      Params{105, 14, 0.8}, Params{106, 3, 0.0},
                      Params{107, 16, 1.0}, Params{108, 7, 0.35}),
    [](const ::testing::TestParamInfo<Params>& info) {
      return "seed" + std::to_string(info.param.seed) + "_m" +
             std::to_string(info.param.num_levels) + "_alpha" +
             std::to_string(static_cast<int>(info.param.alpha * 100));
    });

TEST(CostTableTies, DuplicateRungsBreakTiesIdenticallyAcrossSolvers) {
  // Duplicate ladder sizes make distinct levels carry bitwise-equal edge
  // costs; all three solvers must still reconstruct the same plan (the
  // lowest-index tie-break).
  for (std::uint64_t seed = 201; seed <= 206; ++seed) {
    const Objective objective = make_objective(seed % 2 == 0 ? 0.5 : 0.3);
    OptimalPlanner planner(objective);
    const auto tasks = tied_tasks(15, seed);
    const auto dp = planner.plan(tasks, PlannerMethod::kDagDp);
    const auto dijkstra = planner.plan(tasks, PlannerMethod::kDijkstra);
    const auto bellman_ford =
        bellman_ford_shortest_path(build_selection_graph(objective, tasks));
    EXPECT_EQ(dp.levels, planner.plan_reference(tasks).levels) << "seed " << seed;
    EXPECT_EQ(dp.levels, dijkstra.levels) << "seed " << seed;
    EXPECT_EQ(dp.levels, bellman_ford.levels) << "seed " << seed;
  }
}

TEST(CostTableReweight, ReweightedTableMatchesFreshObjective) {
  // The Pareto sweep's reuse path: build at one alpha, reweight to another,
  // compare against a table/objective built at the target alpha directly.
  const auto tasks = random_tasks(10, 11, 301);
  const Objective base = make_objective(0.0);
  auto tables = build_cost_tables(base, tasks, 30.0);
  for (const double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const Objective fresh = make_objective(alpha);
    for (auto& table : tables) table.reweight(alpha);
    const auto reweighted = plan_over_cost_tables(tables);
    const auto direct = OptimalPlanner(fresh).plan(tasks, PlannerMethod::kDagDp);
    EXPECT_EQ(reweighted.levels, direct.levels) << "alpha " << alpha;
    EXPECT_EQ(reweighted.total_cost, direct.total_cost) << "alpha " << alpha;
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      for (std::size_t j = 0; j < tables[i].num_levels(); ++j) {
        EXPECT_EQ(tables[i].edge_cost(j),
                  fresh.task_cost(tasks[i], j, std::nullopt, 30.0));
      }
    }
  }
}

TEST(CostTableHorizon, SelectorMatchesLegacyTaskCostFormulation) {
  // Reimplements the pre-table rolling-horizon DP with Objective::task_cost
  // and asserts the selector (now table-backed) commits the same level.
  const media::VideoManifest manifest("cert", 120.0, 2.0,
                                      media::BitrateLadder::evaluation14());
  const std::size_t m = manifest.ladder().size();
  for (std::uint64_t seed = 401; seed <= 404; ++seed) {
    eacs::Rng rng(seed);
    const Objective objective = make_objective(0.5);
    RollingHorizonSelector selector(objective, {.horizon = 5});
    net::HarmonicMeanEstimator estimator(20);
    for (int i = 0; i < 10; ++i) estimator.observe(rng.uniform(1.0, 25.0));

    player::AbrContext ctx;
    ctx.segment_index = static_cast<std::size_t>(rng.uniform_int(0, 50));
    ctx.num_segments = manifest.num_segments();
    ctx.buffer_s = rng.uniform(0.0, 30.0);
    ctx.startup_phase = false;
    ctx.prev_level = static_cast<std::size_t>(rng.uniform_int(0, 13));
    ctx.manifest = &manifest;
    ctx.bandwidth = &estimator;
    ctx.vibration_level = rng.uniform(0.0, 7.5);
    ctx.signal_dbm = rng.uniform(-118.0, -82.0);

    // Legacy window construction + DP, verbatim from the pre-table selector.
    const std::size_t remaining = manifest.num_segments() - ctx.segment_index;
    const std::size_t window = std::min<std::size_t>(5, remaining);
    std::vector<TaskEnvironment> tasks;
    for (std::size_t k = 0; k < window; ++k) {
      TaskEnvironment env;
      env.index = ctx.segment_index + k;
      env.duration_s = manifest.segment_duration(env.index);
      env.signal_dbm = ctx.signal_dbm;
      env.vibration = ctx.vibration_level;
      env.bandwidth_mbps = estimator.estimate();
      for (std::size_t level = 0; level < m; ++level) {
        env.size_megabits.push_back(manifest.segment_size_megabits(env.index, level));
      }
      tasks.push_back(std::move(env));
    }
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> dp(m, kInf);
    std::vector<std::size_t> first_action(m, 0);
    for (std::size_t j = 0; j < m; ++j) {
      dp[j] = objective.task_cost(tasks[0], j, ctx.prev_level, ctx.buffer_s);
      first_action[j] = j;
    }
    std::vector<double> next(m, kInf);
    std::vector<std::size_t> next_first(m, 0);
    for (std::size_t k = 1; k < tasks.size(); ++k) {
      std::fill(next.begin(), next.end(), kInf);
      for (std::size_t j = 0; j < m; ++j) {
        for (std::size_t jp = 0; jp < m; ++jp) {
          const double candidate =
              dp[jp] + objective.task_cost(tasks[k], j, jp, ctx.buffer_s);
          if (candidate < next[j]) {
            next[j] = candidate;
            next_first[j] = first_action[jp];
          }
        }
      }
      dp.swap(next);
      first_action.swap(next_first);
    }
    std::size_t best = 0;
    for (std::size_t j = 1; j < m; ++j) {
      if (dp[j] < dp[best]) best = j;
    }

    EXPECT_EQ(selector.choose_level(ctx), first_action[best]) << "seed " << seed;
  }
}

TEST(CostStatsCounters, CachedPlanDoesLinearModelEvals) {
  const std::size_t n = 25;
  const std::size_t m = 14;
  const Objective objective = make_objective(0.5);
  OptimalPlanner planner(objective);
  const auto tasks = random_tasks(n, m, 501);

  CostStats cached;
  {
    CostStatsScope scope(cached);
    planner.plan(tasks, PlannerMethod::kDagDp);
  }
  // One table per task: M power evals + (M+1) QoE evals each — O(N*M).
  EXPECT_EQ(cached.power_model_evals, n * m);
  EXPECT_EQ(cached.qoe_model_evals, n * (m + 1));
  EXPECT_EQ(cached.tables_built, n);
  EXPECT_EQ(cached.edge_evals, m + (n - 1) * m * m);
  EXPECT_EQ(cached.plans, 1U);

  CostStats reference;
  {
    CostStatsScope scope(reference);
    planner.plan_reference(tasks);
  }
  // Uncached: every edge re-evaluates 2 energy + 2 QoE models — O(N*M^2).
  const std::uint64_t edges = m + (n - 1) * m * m;
  EXPECT_EQ(reference.edge_evals, edges);
  EXPECT_EQ(reference.power_model_evals, 2 * edges);
  EXPECT_EQ(reference.qoe_model_evals, 2 * edges);
  EXPECT_EQ(reference.tables_built, 0U);

  // The headline ratio the CI perf-smoke pins: cached does strictly fewer
  // model evaluations by an O(M) factor.
  EXPECT_LT(cached.model_evals() * 20, reference.model_evals());
}

TEST(CostStatsCounters, ScopesNestAndRestore) {
  const auto tasks = random_tasks(3, 4, 502);
  const Objective objective = make_objective(0.5);
  CostStats outer;
  {
    CostStatsScope outer_scope(outer);
    CostStats inner;
    {
      CostStatsScope inner_scope(inner);
      (void)objective.task_cost(tasks[0], 0, std::nullopt, 30.0);
    }
    EXPECT_EQ(inner.edge_evals, 1U);
    EXPECT_EQ(inner.power_model_evals, 2U);
    EXPECT_EQ(inner.qoe_model_evals, 2U);
    (void)objective.task_cost(tasks[0], 1, std::nullopt, 30.0);
  }
  EXPECT_EQ(outer.edge_evals, 1U);  // only the call outside the inner scope
  EXPECT_EQ(CostStatsScope::current(), nullptr);
}

TEST(EmptyLadderGuards, PlannerAndGraphThrowInvalidArgument) {
  // Regression: an all-empty ladder used to run straight into
  // size_megabits.front()/at() undefined behaviour downstream.
  const Objective objective = make_objective(0.5);
  OptimalPlanner planner(objective);
  std::vector<TaskEnvironment> tasks(3);
  for (auto& env : tasks) {
    env.duration_s = 2.0;
    env.bandwidth_mbps = 10.0;
  }
  EXPECT_THROW(planner.plan(tasks, PlannerMethod::kDagDp), std::invalid_argument);
  EXPECT_THROW(planner.plan(tasks, PlannerMethod::kDijkstra), std::invalid_argument);
  EXPECT_THROW(planner.plan_reference(tasks), std::invalid_argument);
  EXPECT_THROW(build_selection_graph(objective, tasks), std::invalid_argument);
  EXPECT_THROW(TaskCostTable(objective, tasks[0], 30.0), std::invalid_argument);
  EXPECT_THROW(build_cost_tables(objective, tasks, 30.0), std::invalid_argument);
}

}  // namespace
}  // namespace eacs::core
