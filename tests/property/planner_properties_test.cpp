// Property suite: optimality and consistency of the planners, parameterized
// over random task environments.

#include <gtest/gtest.h>

#include "eacs/core/optimal.h"
#include "eacs/util/rng.h"

namespace eacs::core {
namespace {

Objective make_objective(double alpha) {
  ObjectiveConfig config;
  config.alpha = alpha;
  return Objective(qoe::QoeModel{}, power::PowerModel{}, config);
}

std::vector<TaskEnvironment> random_tasks(std::size_t n, std::uint64_t seed) {
  eacs::Rng rng(seed);
  const auto ladder = media::BitrateLadder::evaluation14();
  std::vector<TaskEnvironment> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    TaskEnvironment env;
    env.index = i;
    env.duration_s = 2.0;
    env.signal_dbm = rng.uniform(-118.0, -82.0);
    env.vibration = rng.uniform(0.0, 7.5);
    env.bandwidth_mbps = rng.uniform(0.5, 40.0);
    for (std::size_t level = 0; level < ladder.size(); ++level) {
      env.size_megabits.push_back(ladder.bitrate(level) * 2.0);
    }
    tasks.push_back(std::move(env));
  }
  return tasks;
}

double plan_cost(const Objective& objective, const std::vector<TaskEnvironment>& tasks,
                 const std::vector<std::size_t>& levels) {
  double cost = objective.task_cost(tasks[0], levels[0], std::nullopt, 30.0);
  for (std::size_t i = 1; i < tasks.size(); ++i) {
    cost += objective.task_cost(tasks[i], levels[i], levels[i - 1], 30.0);
  }
  return cost;
}

struct Params {
  std::uint64_t seed;
  double alpha;
};

class PlannerProperties : public ::testing::TestWithParam<Params> {};

TEST_P(PlannerProperties, PlanBeatsEveryConstantLevelPlan) {
  const auto [seed, alpha] = GetParam();
  const Objective objective = make_objective(alpha);
  const auto tasks = random_tasks(25, seed);
  OptimalPlanner planner(objective);
  const auto plan = planner.plan(tasks);
  const double optimal_cost = plan_cost(objective, tasks, plan.levels);
  for (std::size_t level = 0; level < 14; ++level) {
    const std::vector<std::size_t> constant(tasks.size(), level);
    EXPECT_LE(optimal_cost, plan_cost(objective, tasks, constant) + 1e-9)
        << "constant level " << level;
  }
}

TEST_P(PlannerProperties, PlanBeatsRandomPlans) {
  const auto [seed, alpha] = GetParam();
  const Objective objective = make_objective(alpha);
  const auto tasks = random_tasks(25, seed);
  OptimalPlanner planner(objective);
  const auto plan = planner.plan(tasks);
  const double optimal_cost = plan_cost(objective, tasks, plan.levels);
  eacs::Rng rng(seed ^ 0xFEED);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::size_t> random_levels(tasks.size());
    for (auto& level : random_levels) {
      level = static_cast<std::size_t>(rng.uniform_int(0, 13));
    }
    EXPECT_LE(optimal_cost, plan_cost(objective, tasks, random_levels) + 1e-9);
  }
}

TEST_P(PlannerProperties, DijkstraAgreesWithDp) {
  const auto [seed, alpha] = GetParam();
  const Objective objective = make_objective(alpha);
  const auto tasks = random_tasks(30, seed);
  OptimalPlanner planner(objective);
  const auto dp = planner.plan(tasks, PlannerMethod::kDagDp);
  const auto dijkstra = planner.plan(tasks, PlannerMethod::kDijkstra);
  EXPECT_NEAR(dp.total_cost, dijkstra.total_cost, 1e-6);
  EXPECT_NEAR(plan_cost(objective, tasks, dijkstra.levels), dp.total_cost, 1e-6);
}

TEST_P(PlannerProperties, ReportedCostMatchesRecomputation) {
  const auto [seed, alpha] = GetParam();
  const Objective objective = make_objective(alpha);
  const auto tasks = random_tasks(20, seed);
  OptimalPlanner planner(objective);
  const auto plan = planner.plan(tasks);
  EXPECT_NEAR(plan.total_cost, plan_cost(objective, tasks, plan.levels), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndAlphas, PlannerProperties,
    ::testing::Values(Params{1, 0.5}, Params{2, 0.5}, Params{3, 0.5},
                      Params{4, 0.2}, Params{5, 0.2}, Params{6, 0.8},
                      Params{7, 0.8}, Params{8, 0.0}, Params{9, 1.0}),
    [](const ::testing::TestParamInfo<Params>& info) {
      return "seed" + std::to_string(info.param.seed) + "_alpha" +
             std::to_string(static_cast<int>(info.param.alpha * 100));
    });

class ReferenceMonotonicity : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReferenceMonotonicity, ReferenceLevelNonIncreasingInAlpha) {
  // The weighted-sum argmin walks down the energy/QoE Pareto front as the
  // energy weight grows.
  const auto tasks = random_tasks(10, GetParam());
  for (const auto& env : tasks) {
    std::size_t prev_level = 13;
    for (double alpha = 0.0; alpha <= 1.0 + 1e-9; alpha += 0.1) {
      const Objective objective = make_objective(std::min(alpha, 1.0));
      const std::size_t level = objective.reference_level(env, 30.0);
      EXPECT_LE(level, prev_level) << "alpha " << alpha;
      prev_level = level;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReferenceMonotonicity,
                         ::testing::Values(11, 12, 13, 14, 15));

}  // namespace
}  // namespace eacs::core
