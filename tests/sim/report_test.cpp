#include "eacs/sim/report.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "../test_helpers.h"

namespace eacs::sim {
namespace {

EvaluationResult quick_result() {
  auto session = eacs::testing::make_session(60.0, 20.0, -95.0, 3.0);
  session.spec.id = 1;
  session.spec.length_s = 60.0;
  return Evaluation{}.run({session});
}

TEST(ReportTest, EvaluationCsvHasOneRowPerMetrics) {
  const auto result = quick_result();
  const auto table = evaluation_to_csv(result);
  EXPECT_EQ(table.num_rows(), result.rows.size());
  EXPECT_TRUE(table.has_column("total_energy_j"));
  // Round-trippable numerics.
  for (std::size_t row = 0; row < table.num_rows(); ++row) {
    EXPECT_GT(table.cell_as_double(row, "total_energy_j"), 0.0);
    EXPECT_GE(table.cell_as_double(row, "mean_qoe"), 1.0);
  }
}

TEST(ReportTest, SummaryCsvMatchesAccessors) {
  const auto result = quick_result();
  const auto table = summary_to_csv(result);
  EXPECT_EQ(table.num_rows(), result.algorithms().size());
  for (std::size_t row = 0; row < table.num_rows(); ++row) {
    const std::string algorithm = table.cell(row, "algorithm");
    EXPECT_NEAR(table.cell_as_double(row, "energy_saving"),
                result.mean_energy_saving(algorithm), 1e-12);
    EXPECT_NEAR(table.cell_as_double(row, "mean_qoe"), result.mean_qoe(algorithm),
                1e-12);
  }
}

TEST(ReportTest, RobustnessCsvShape) {
  const auto robustness = run_robustness_study({}, 1, 5);
  const auto table = robustness_to_csv(robustness);
  // 4 algorithms x 4 metrics.
  EXPECT_EQ(table.num_rows(), 16U);
  EXPECT_TRUE(table.has_column("stddev"));
}

TEST(ReportTest, FileWritersRoundTrip) {
  const auto result = quick_result();
  const auto dir = std::filesystem::temp_directory_path();
  const auto eval_path = dir / "eacs_eval_report.csv";
  const auto summary_path = dir / "eacs_summary_report.csv";
  write_evaluation_csv(eval_path, result);
  write_summary_csv(summary_path, result);
  const auto eval_loaded = eacs::read_csv_file(eval_path);
  const auto summary_loaded = eacs::read_csv_file(summary_path);
  EXPECT_EQ(eval_loaded.num_rows(), result.rows.size());
  EXPECT_EQ(summary_loaded.num_rows(), result.algorithms().size());
  std::filesystem::remove(eval_path);
  std::filesystem::remove(summary_path);
}

}  // namespace
}  // namespace eacs::sim
