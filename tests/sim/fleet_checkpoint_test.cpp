// Deterministic fleet checkpoint/resume (DESIGN §14).
//
// The headline contract: run_fleet_until(T) + resume_fleet == run_fleet,
// EXPECT_EQ on every aggregate — not approximately, bitwise — for both
// policies, with and without faults, at several cut points including
// degenerate ones (before the first arrival, after the drain). The sidecar
// file round-trips the checkpoint exactly, and the config fingerprint
// refuses to resume under a config that would silently diverge.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <limits>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "eacs/sim/fleet.h"
#include "eacs/sim/fleet_checkpoint.h"

namespace eacs::sim {
namespace {

FleetConfig small_fleet() {
  FleetConfig config;
  config.network.num_cells = 8;
  config.num_sessions = 400;
  config.arrival_rate_per_s = 4.0;
  config.segments_per_session = 12;
  config.regions = 4;
  return config;
}

FleetConfig faulted_fleet() {
  FleetConfig config = small_fleet();
  config.faults.outages.push_back(
      {.t0_s = 10.0, .t1_s = 45.0, .first_cell = 0, .num_cells = 4});
  config.faults.surges.push_back(
      {.t0_s = 5.0, .t1_s = 25.0, .rate_multiplier = 3.0});
  config.faults.seeded.horizon_s = 200.0;
  config.faults.seeded.brownout_prob = 0.4;
  config.faults.seeded.collapse_prob = 0.4;
  return config;
}

void expect_metrics_eq(const FleetMetrics& a, const FleetMetrics& b) {
  EXPECT_EQ(a.sessions, b.sessions);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.requests, b.requests);
  EXPECT_EQ(a.handoffs, b.handoffs);
  EXPECT_EQ(a.stall_events, b.stall_events);
  EXPECT_EQ(a.peak_live_sessions, b.peak_live_sessions);
  EXPECT_EQ(a.escape_handoffs, b.escape_handoffs);
  EXPECT_EQ(a.backoff_retries, b.backoff_retries);
  EXPECT_EQ(a.abandoned_sessions, b.abandoned_sessions);
  EXPECT_EQ(a.policy_sheds, b.policy_sheds);
  EXPECT_EQ(a.policy_recoveries, b.policy_recoveries);
  EXPECT_EQ(a.shed_decisions, b.shed_decisions);
  EXPECT_EQ(a.degraded_time_s, b.degraded_time_s);
  EXPECT_EQ(a.wasted_energy_j, b.wasted_energy_j);
  EXPECT_EQ(a.planner.plans, b.planner.plans);
  EXPECT_EQ(a.planner.cache_hits, b.planner.cache_hits);
  EXPECT_EQ(a.planner.cache_misses, b.planner.cache_misses);
  EXPECT_EQ(a.planner.cache_evictions, b.planner.cache_evictions);
  EXPECT_EQ(a.planner.model_evals(), b.planner.model_evals());
  EXPECT_EQ(a.qoe.mean(), b.qoe.mean());
  EXPECT_EQ(a.qoe.variance(), b.qoe.variance());
  EXPECT_EQ(a.energy_j.sum(), b.energy_j.sum());
  EXPECT_EQ(a.bitrate_mbps.mean(), b.bitrate_mbps.mean());
  EXPECT_EQ(a.rebuffer_s.sum(), b.rebuffer_s.sum());
  EXPECT_EQ(a.startup_s.mean(), b.startup_s.mean());
  EXPECT_EQ(a.qoe_quantile(0.5), b.qoe_quantile(0.5));
  EXPECT_EQ(a.energy_quantile(0.9), b.energy_quantile(0.9));
  EXPECT_EQ(a.rebuffer_quantile(0.99), b.rebuffer_quantile(0.99));
  ASSERT_EQ(a.regions.size(), b.regions.size());
  for (std::size_t r = 0; r < a.regions.size(); ++r) {
    EXPECT_EQ(a.regions[r].events, b.regions[r].events);
    EXPECT_EQ(a.regions[r].sessions, b.regions[r].sessions);
    EXPECT_EQ(a.regions[r].median_qoe, b.regions[r].median_qoe);
    EXPECT_EQ(a.regions[r].median_energy_j, b.regions[r].median_energy_j);
    EXPECT_EQ(a.regions[r].planner.cache_hits, b.regions[r].planner.cache_hits);
    EXPECT_EQ(a.regions[r].wasted_energy_j, b.regions[r].wasted_energy_j);
  }
}

TEST(FleetCheckpointTest, ResumeMatchesUninterruptedRun) {
  for (const FleetPolicy policy :
       {FleetPolicy::kThroughput, FleetPolicy::kPlanner}) {
    for (const bool faulted : {false, true}) {
      FleetConfig config = faulted ? faulted_fleet() : small_fleet();
      config.policy = policy;
      const FleetMetrics reference = run_fleet(config);
      for (const double cut : {0.5, 30.0, 75.0}) {
        const FleetCheckpoint checkpoint = run_fleet_until(config, cut);
        EXPECT_EQ(checkpoint.checkpoint_t_s, cut);
        const FleetMetrics resumed = resume_fleet(config, checkpoint);
        expect_metrics_eq(resumed, reference);
      }
    }
  }
}

TEST(FleetCheckpointTest, ResumeMatchesAtAnyJobCount) {
  // Checkpoint under one job count, resume under others: the §6 contract
  // extends to the cut.
  FleetConfig config = faulted_fleet();
  config.policy = FleetPolicy::kPlanner;
  config.exec = ExecutionPolicy{1};
  const FleetMetrics reference = run_fleet(config);
  const FleetCheckpoint checkpoint = run_fleet_until(config, 40.0);
  for (const std::size_t jobs : {1, 2, 8}) {
    FleetConfig resumed_config = config;
    resumed_config.exec = ExecutionPolicy{jobs};
    const FleetMetrics resumed = resume_fleet(resumed_config, checkpoint);
    expect_metrics_eq(resumed, reference);
  }
}

TEST(FleetCheckpointTest, CutAfterDrainResumesToSameResult) {
  const FleetConfig config = small_fleet();
  const FleetMetrics reference = run_fleet(config);
  // 1e9 s is long past the drain: the checkpoint holds only finished state.
  const FleetCheckpoint checkpoint = run_fleet_until(config, 1e9);
  for (const auto& region : checkpoint.regions) {
    EXPECT_TRUE(region.events.empty());
    EXPECT_EQ(region.live, 0U);
  }
  expect_metrics_eq(resume_fleet(config, checkpoint), reference);
}

TEST(FleetCheckpointTest, EventAtCutTimeBelongsToResumedRun) {
  // Arrivals land at exact multiples of 1/rate = 0.25 s. A cut at exactly
  // 0.25 must leave that arrival in the checkpoint (strict < convention), so
  // the pending event count across regions is num_sessions minus the
  // arrivals strictly before the cut (session 0 at t = 0).
  const FleetConfig config = small_fleet();
  const FleetCheckpoint checkpoint = run_fleet_until(config, 0.25);
  std::size_t pending_arrivals = 0;
  for (const auto& region : checkpoint.regions) {
    for (const auto& event : region.events) {
      if (event.kind == 0) ++pending_arrivals;
      EXPECT_GE(event.t_s, 0.25);
    }
  }
  EXPECT_EQ(pending_arrivals, config.num_sessions - 1);
}

TEST(FleetCheckpointTest, ValidatesCutTime) {
  const FleetConfig config = small_fleet();
  EXPECT_THROW(run_fleet_until(config, 0.0), std::invalid_argument);
  EXPECT_THROW(run_fleet_until(config, -1.0), std::invalid_argument);
  EXPECT_THROW(
      run_fleet_until(config, std::numeric_limits<double>::quiet_NaN()),
      std::invalid_argument);
  EXPECT_THROW(
      run_fleet_until(config, std::numeric_limits<double>::infinity()),
      std::invalid_argument);
}

TEST(FleetCheckpointTest, FingerprintRejectsForeignConfig) {
  const FleetConfig config = small_fleet();
  const FleetCheckpoint checkpoint = run_fleet_until(config, 30.0);

  // Any result-shaping change must be refused...
  FleetConfig changed = config;
  changed.seed ^= 1;
  EXPECT_THROW(resume_fleet(changed, checkpoint), std::invalid_argument);
  changed = config;
  changed.planner_alpha = 0.7;
  EXPECT_THROW(resume_fleet(changed, checkpoint), std::invalid_argument);
  changed = config;
  changed.resilience.max_retries = 3;
  EXPECT_THROW(resume_fleet(changed, checkpoint), std::invalid_argument);
  changed = config;
  changed.faults.outages.push_back({.t0_s = 1.0, .t1_s = 2.0});
  EXPECT_THROW(resume_fleet(changed, checkpoint), std::invalid_argument);
  changed = config;
  changed.ladder_mbps.back() = 5.0;
  EXPECT_THROW(resume_fleet(changed, checkpoint), std::invalid_argument);

  // ...but exec.jobs is explicitly outside the fingerprint (§6).
  FleetConfig rejobbed = config;
  rejobbed.exec = ExecutionPolicy{8};
  EXPECT_EQ(fleet_config_fingerprint(rejobbed),
            fleet_config_fingerprint(config));
}

TEST(FleetCheckpointTest, SidecarRoundTripsBitExactly) {
  FleetConfig config = faulted_fleet();
  config.policy = FleetPolicy::kPlanner;
  const FleetCheckpoint checkpoint = run_fleet_until(config, 30.0);

  const std::string path =
      (std::filesystem::path(::testing::TempDir()) / "fleet_ckpt_test.txt")
          .string();
  save_fleet_checkpoint(checkpoint, path);
  const FleetCheckpoint loaded = load_fleet_checkpoint(path);
  std::remove(path.c_str());

  EXPECT_EQ(loaded.config_fingerprint, checkpoint.config_fingerprint);
  EXPECT_EQ(loaded.checkpoint_t_s, checkpoint.checkpoint_t_s);
  ASSERT_EQ(loaded.regions.size(), checkpoint.regions.size());
  for (std::size_t r = 0; r < loaded.regions.size(); ++r) {
    const auto& a = loaded.regions[r];
    const auto& b = checkpoint.regions[r];
    EXPECT_EQ(a.live, b.live);
    EXPECT_EQ(a.events, b.events);     // bit-exact doubles via bit_cast
    EXPECT_EQ(a.arena, b.arena);       // every SoA vector, field for field
    EXPECT_EQ(a.cell_active, b.cell_active);
    EXPECT_EQ(a.qoe, b.qoe);
    EXPECT_EQ(a.qoe_sample, b.qoe_sample);  // reservoir incl. Rng engine
    EXPECT_EQ(a.median_qoe, b.median_qoe);  // P^2 markers
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.cache.entries, b.cache.entries);
  }

  // And the loaded checkpoint resumes to the uninterrupted result.
  expect_metrics_eq(resume_fleet(config, loaded), run_fleet(config));
}

TEST(FleetCheckpointTest, LoadRejectsMissingTruncatedAndForeignFiles) {
  EXPECT_THROW(load_fleet_checkpoint("/nonexistent/fleet.ckpt"),
               std::runtime_error);

  const auto dir = std::filesystem::path(::testing::TempDir());
  {
    const std::string path = (dir / "fleet_ckpt_bad_magic.txt").string();
    std::ofstream out(path);
    out << "NOT_A_CHECKPOINT 1\n";
    out.close();
    EXPECT_THROW(load_fleet_checkpoint(path), std::runtime_error);
    std::remove(path.c_str());
  }
  {
    // A valid prefix cut mid-stream must throw, not fabricate state.
    const FleetCheckpoint checkpoint =
        run_fleet_until(small_fleet(), 30.0);
    const std::string full = (dir / "fleet_ckpt_full.txt").string();
    save_fleet_checkpoint(checkpoint, full);
    std::ifstream in(full);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    in.close();
    std::remove(full.c_str());
    const std::string truncated = (dir / "fleet_ckpt_trunc.txt").string();
    std::ofstream out(truncated);
    out << contents.substr(0, contents.size() / 2);
    out.close();
    EXPECT_THROW(load_fleet_checkpoint(truncated), std::runtime_error);
    std::remove(truncated.c_str());
  }
}

TEST(FleetCheckpointTest, RegionCountMismatchThrows) {
  const FleetConfig config = small_fleet();
  FleetCheckpoint checkpoint = run_fleet_until(config, 30.0);
  checkpoint.regions.pop_back();
  EXPECT_THROW(resume_fleet(config, checkpoint), std::invalid_argument);
}

}  // namespace
}  // namespace eacs::sim
