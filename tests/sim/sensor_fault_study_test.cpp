// Sensor-fault study acceptance tests.
//
// The two contract-level facts the ISSUE pins down:
//  * an inactive injector is a strict no-op — every playback field
//    bit-identical to a run without one;
//  * 100% accelerometer loss converges to the conservative-prior plan with no
//    NaN/Inf anywhere in the result, and a stream of NaN garbage lands on the
//    exact same plan (lost is lost, whatever the failure mode).

#include "eacs/sim/sensor_fault_study.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "eacs/core/online.h"
#include "eacs/player/player.h"
#include "eacs/player/session_invariants.h"
#include "eacs/sensors/sensor_faults.h"
#include "../test_helpers.h"

namespace eacs::sim {
namespace {

using eacs::testing::make_manifest;
using eacs::testing::make_session;

core::Objective make_objective() {
  core::ObjectiveConfig config;
  return core::Objective(qoe::QoeModel{}, power::PowerModel{}, config);
}

sensors::SensorFaultSpec whole_stream(sensors::SensorFaultType type,
                                      double nan_prob = 0.5) {
  sensors::SensorFaultSpec spec;
  spec.accel_episodes = {{type, 0.0, 1e9}};
  spec.nan_prob = nan_prob;
  return spec;
}

TEST(SensorFaultStudyTest, InactiveInjectorIsBitIdentical) {
  const auto manifest = make_manifest(60.0, 2.0);
  const auto session = make_session(60.0, 8.0, -85.0, 3.0);
  const player::PlayerSimulator simulator(manifest);
  const sensors::SensorFaultInjector inactive(
      session.accel, trace::signal_samples(session.signal_dbm), {});
  ASSERT_FALSE(inactive.active());

  core::OnlineBitrateSelector bare(make_objective(), {.startup_level = 3});
  const auto clean = simulator.run(bare, session);
  core::OnlineBitrateSelector attached(make_objective(), {.startup_level = 3});
  const auto with_injector = simulator.run(attached, session, inactive);

  ASSERT_EQ(clean.tasks.size(), with_injector.tasks.size());
  EXPECT_EQ(clean.startup_delay_s, with_injector.startup_delay_s);
  EXPECT_EQ(clean.total_rebuffer_s, with_injector.total_rebuffer_s);
  EXPECT_EQ(clean.session_end_s, with_injector.session_end_s);
  for (std::size_t i = 0; i < clean.tasks.size(); ++i) {
    EXPECT_EQ(clean.tasks[i].level, with_injector.tasks[i].level);
    EXPECT_EQ(clean.tasks[i].download_end_s, with_injector.tasks[i].download_end_s);
    EXPECT_EQ(clean.tasks[i].vibration, with_injector.tasks[i].vibration);
    EXPECT_EQ(clean.tasks[i].perceived_vibration,
              with_injector.tasks[i].perceived_vibration);
  }
}

TEST(SensorFaultStudyTest, TotalDropoutConvergesToTheConservativePrior) {
  const auto manifest = make_manifest(60.0, 2.0);
  // Quiet session: the true vibration is ~0, so the prior fallback is visible.
  const auto session = make_session(60.0, 8.0, -85.0, 0.0);
  const player::PlayerSimulator simulator(manifest);
  const sensors::SensorFaultInjector dropout(
      session.accel, trace::signal_samples(session.signal_dbm),
      whole_stream(sensors::SensorFaultType::kDropout));

  core::OnlineBitrateSelector ours(make_objective(), {.startup_level = 3});
  const auto result = simulator.run(ours, session, dropout);

  const double prior = sensors::VibrationConfig{}.prior_vibration;
  ASSERT_FALSE(result.tasks.empty());
  for (const auto& task : result.tasks) {
    EXPECT_TRUE(std::isfinite(task.perceived_vibration));
    EXPECT_DOUBLE_EQ(task.perceived_vibration, prior);
    EXPECT_NEAR(task.vibration, 0.0, 0.2);  // the true context stays quiet
  }
  // No NaN/Inf anywhere in the result.
  EXPECT_TRUE(player::SessionInvariantChecker::check_result(
                  result, manifest.ladder().size())
                  .empty());
}

TEST(SensorFaultStudyTest, NanFloodLandsOnTheSamePlanAsDropout) {
  const auto manifest = make_manifest(60.0, 2.0);
  const auto session = make_session(60.0, 8.0, -85.0, 0.0);
  const player::PlayerSimulator simulator(manifest);
  const auto signal = trace::signal_samples(session.signal_dbm);
  const sensors::SensorFaultInjector dropout(
      session.accel, signal, whole_stream(sensors::SensorFaultType::kDropout));
  const sensors::SensorFaultInjector nan_flood(
      session.accel, signal,
      whole_stream(sensors::SensorFaultType::kNanCorruption, /*nan_prob=*/1.0));

  core::OnlineBitrateSelector a(make_objective(), {.startup_level = 3});
  const auto dropped = simulator.run(a, session, dropout);
  core::OnlineBitrateSelector b(make_objective(), {.startup_level = 3});
  const auto poisoned = simulator.run(b, session, nan_flood);

  ASSERT_EQ(dropped.tasks.size(), poisoned.tasks.size());
  for (std::size_t i = 0; i < dropped.tasks.size(); ++i) {
    EXPECT_EQ(dropped.tasks[i].level, poisoned.tasks[i].level) << "task " << i;
    EXPECT_TRUE(std::isfinite(poisoned.tasks[i].perceived_vibration));
  }
}

TEST(SensorFaultStudyTest, StudyGridIsFiniteAndDeterministic) {
  SensorFaultStudyConfig config;
  config.scenarios = {SensorFaultScenario::kDropout,
                      SensorFaultScenario::kSignalDropout};
  config.intensities = {1.0};
  const auto first = run_sensor_fault_study(config);
  ASSERT_EQ(first.cells.size(), 2U);
  for (const auto& cell : first.cells) {
    EXPECT_TRUE(std::isfinite(cell.mean_qoe));
    EXPECT_TRUE(std::isfinite(cell.total_energy_j));
    EXPECT_TRUE(std::isfinite(cell.mean_context_error));
    EXPECT_GT(cell.mean_qoe, 0.0);
  }
  EXPECT_TRUE(std::isfinite(first.clean_ours.mean_qoe));
  EXPECT_TRUE(std::isfinite(first.context_blind.mean_qoe));

  // Total accel loss forces the prior everywhere: the perceived-vs-true gap
  // must be visible, and it must vanish for the signal-only scenario.
  const auto& accel_cell = first.cell(SensorFaultScenario::kDropout, 1.0);
  EXPECT_GT(accel_cell.mean_context_error, 0.5);
  const auto& signal_cell = first.cell(SensorFaultScenario::kSignalDropout, 1.0);
  EXPECT_DOUBLE_EQ(signal_cell.mean_context_error, 0.0);

  const auto second = run_sensor_fault_study(config);
  for (std::size_t i = 0; i < first.cells.size(); ++i) {
    EXPECT_EQ(first.cells[i].mean_qoe, second.cells[i].mean_qoe);
    EXPECT_EQ(first.cells[i].total_energy_j, second.cells[i].total_energy_j);
  }
  EXPECT_EQ(first.clean_ours.mean_qoe, second.clean_ours.mean_qoe);
}

TEST(SensorFaultStudyTest, ConfigValidation) {
  SensorFaultStudyConfig empty_axis;
  empty_axis.intensities.clear();
  EXPECT_THROW(run_sensor_fault_study(empty_axis), std::invalid_argument);

  SensorFaultStudyConfig config;
  config.scenarios = {SensorFaultScenario::kDropout};
  config.intensities = {1.0};
  const auto result = run_sensor_fault_study(config);
  EXPECT_THROW(result.cell(SensorFaultScenario::kCombined, 1.0),
               std::out_of_range);
  EXPECT_THROW(result.cell(SensorFaultScenario::kDropout, 0.5),
               std::out_of_range);
}

}  // namespace
}  // namespace eacs::sim
