// Golden-metrics regression harness: pins the headline Section V numbers
// (the bench_fig5 / bench_fig6 / bench_fig7 paths) against a committed
// snapshot. The full default evaluation is deterministic, so any refactor
// that silently shifts a result — a reordered reduction, a changed seed
// derivation, an altered model constant — fails here instead of drifting
// unnoticed. The tolerances are deliberately tight (0.1% relative): they
// absorb libm/compiler variation across toolchains, nothing more. If a
// change is *supposed* to move these numbers, update the snapshot in the
// same commit and say why.
//
// Snapshot provenance: bench_fig5_energy/bench_fig6_qoe/bench_fig7_ratio
// `--json` output at the commit that introduced this file (also recorded in
// EXPERIMENTS.md and BENCH_baseline.json).

#include <gtest/gtest.h>

#include "eacs/sim/evaluation.h"

namespace eacs::sim {
namespace {

/// Relative tolerance for pinned doubles.
constexpr double kRelTol = 1e-3;

#define EXPECT_PINNED(actual, golden) \
  EXPECT_NEAR(actual, golden, std::abs(golden) * kRelTol) << #actual

const EvaluationResult& full_evaluation() {
  static const EvaluationResult result = [] {
    const Evaluation evaluation;  // paper defaults, all Table V sessions
    return evaluation.run();
  }();
  return result;
}

struct GoldenRow {
  const char* algorithm;
  double energy_saving;        // Fig. 5(b), whole-phone, vs. Youtube
  double extra_energy_saving;  // Fig. 5(b), extra-energy basis
  double mean_qoe;             // Fig. 6(b)
  double qoe_degradation;      // Fig. 6(c), vs. Youtube
  double ratio;                // Fig. 7
};

// The committed snapshot.
constexpr GoldenRow kGolden[] = {
    {"FESTIVE", 0.015460169448958182, 0.050593890123362018, 3.970132213150992,
     0.0082639538764928792, 1.8707957086903888},
    {"BBA", 0.0089849855194563451, 0.026745607698386943, 3.9922821168541383,
     0.0027492673786637446, 3.2681381189716849},
    {"Ours", 0.23821368781535507, 0.77772303463236958, 3.9249237969918553,
     0.019029881440468487, 12.51787556115697},
    {"Optimal", 0.23515961809025399, 0.76447372719296891, 3.9453943504310613,
     0.01405095379326513, 16.736203217960202},
};

constexpr double kGoldenYoutubeQoe = 4.0033765828835781;

// Per-algorithm total energy summed over the five sessions (J).
struct GoldenEnergy {
  const char* algorithm;
  double total_energy_j;
};
constexpr GoldenEnergy kGoldenEnergy[] = {
    {"Youtube", 6024.6733668840498}, {"FESTIVE", 5941.6077948288048},
    {"BBA", 5979.2153094815967},     {"Ours", 4586.6869601110811},
    {"Optimal", 4607.024928011836},
};

double total_energy(const EvaluationResult& result, const std::string& algo) {
  double energy = 0.0;
  for (const auto& row : result.rows_for(algo)) energy += row.total_energy_j;
  return energy;
}

TEST(GoldenMetrics, HeadlineNumbersMatchSnapshot) {
  const auto& result = full_evaluation();
  EXPECT_PINNED(result.mean_qoe("Youtube"), kGoldenYoutubeQoe);
  for (const auto& golden : kGolden) {
    SCOPED_TRACE(golden.algorithm);
    EXPECT_PINNED(result.mean_energy_saving(golden.algorithm), golden.energy_saving);
    EXPECT_PINNED(result.mean_extra_energy_saving(golden.algorithm),
                  golden.extra_energy_saving);
    EXPECT_PINNED(result.mean_qoe(golden.algorithm), golden.mean_qoe);
    EXPECT_PINNED(result.mean_qoe_degradation(golden.algorithm),
                  golden.qoe_degradation);
    EXPECT_PINNED(result.saving_degradation_ratio(golden.algorithm), golden.ratio);
  }
}

TEST(GoldenMetrics, TotalEnergyMatchesSnapshot) {
  const auto& result = full_evaluation();
  for (const auto& golden : kGoldenEnergy) {
    SCOPED_TRACE(golden.algorithm);
    EXPECT_PINNED(total_energy(result, golden.algorithm), golden.total_energy_j);
  }
}

TEST(GoldenMetrics, EnergyOrderingMatchesPaper) {
  // The paper-shape ordering: YouTube > BBA ~ FESTIVE > Ours ~ Optimal.
  const auto& result = full_evaluation();
  const double youtube = total_energy(result, "Youtube");
  const double bba = total_energy(result, "BBA");
  const double festive = total_energy(result, "FESTIVE");
  const double ours = total_energy(result, "Ours");
  const double optimal = total_energy(result, "Optimal");

  EXPECT_GT(youtube, bba);
  EXPECT_GT(youtube, festive);
  // BBA and FESTIVE are near-equal throughput-driven baselines (within 2%).
  EXPECT_NEAR(bba / festive, 1.0, 0.02);
  EXPECT_GT(festive, ours);
  EXPECT_GT(bba, ours);
  // Ours tracks the offline optimal closely (within 2%); the planner's
  // oracle model is not the simulator, so either may edge out the other.
  EXPECT_NEAR(ours / optimal, 1.0, 0.02);
  EXPECT_GT(festive, optimal);
}

TEST(GoldenMetrics, SavingsOrderingMatchesPaper) {
  // Fig. 5(b)/Fig. 7 shape: Ours and Optimal save an order of magnitude
  // more than the throughput baselines, at single-digit QoE degradation.
  const auto& result = full_evaluation();
  const double ours = result.mean_energy_saving("Ours");
  EXPECT_GT(ours, 5.0 * result.mean_energy_saving("FESTIVE"));
  EXPECT_GT(ours, 5.0 * result.mean_energy_saving("BBA"));
  EXPECT_GT(result.mean_extra_energy_saving("Ours"), 0.7);    // paper: 77%
  EXPECT_GT(result.mean_extra_energy_saving("Optimal"), 0.7); // paper: 80%
  for (const auto& algo : {"FESTIVE", "BBA", "Ours", "Optimal"}) {
    EXPECT_LT(result.mean_qoe_degradation(algo), 0.05) << algo;
  }
  EXPECT_GT(result.saving_degradation_ratio("Ours"),
            3.0 * result.saving_degradation_ratio("FESTIVE"));
  EXPECT_GT(result.saving_degradation_ratio("Ours"),
            3.0 * result.saving_degradation_ratio("BBA"));
}

}  // namespace
}  // namespace eacs::sim
