// run_fleet_fault_study: the population-layer resilience sweep (DESIGN §14).
#include <stdexcept>

#include <gtest/gtest.h>

#include "eacs/sim/fleet_fault_study.h"

namespace eacs::sim {
namespace {

FleetFaultStudyConfig quick_study() {
  FleetFaultStudyConfig config;
  config.fleet.network.num_cells = 8;
  config.fleet.num_sessions = 300;
  config.fleet.arrival_rate_per_s = 4.0;
  config.fleet.segments_per_session = 10;
  config.fleet.regions = 4;
  config.intensities = {1.0};
  config.policies = {FleetPolicy::kThroughput};
  return config;
}

TEST(FleetFaultStudyTest, ValidatesSweepAxes) {
  FleetFaultStudyConfig config = quick_study();
  config.intensities = {};
  EXPECT_THROW(run_fleet_fault_study(config), std::invalid_argument);
  config = quick_study();
  config.intensities = {0.0};
  EXPECT_THROW(run_fleet_fault_study(config), std::invalid_argument);
  config = quick_study();
  config.intensities = {1.5};
  EXPECT_THROW(run_fleet_fault_study(config), std::invalid_argument);
  config = quick_study();
  config.policies = {};
  EXPECT_THROW(run_fleet_fault_study(config), std::invalid_argument);
}

TEST(FleetFaultStudyTest, GridShapeAndBaselines) {
  FleetFaultStudyConfig config = quick_study();
  config.intensities = {0.5, 1.0};
  config.policies = {FleetPolicy::kThroughput, FleetPolicy::kPlanner};
  const FleetFaultStudyResult result = run_fleet_fault_study(config);
  // All five scenarios by default, full cross product.
  EXPECT_EQ(result.cells.size(), 5U * 2U * 2U);
  ASSERT_EQ(result.baselines.size(), 2U);
  for (const FleetMetrics& baseline : result.baselines) {
    EXPECT_EQ(baseline.sessions, config.fleet.num_sessions);
    EXPECT_EQ(baseline.abandoned_sessions, 0U);  // clean anchors
  }
  // cell() finds every grid point and throws off-grid.
  for (const FleetFaultScenario scenario : all_fleet_fault_scenarios()) {
    for (const double intensity : config.intensities) {
      for (const FleetPolicy policy : config.policies) {
        const FleetFaultStudyCell& cell =
            result.cell(scenario, intensity, policy);
        EXPECT_EQ(cell.metrics.sessions + cell.metrics.abandoned_sessions,
                  config.fleet.num_sessions);
      }
    }
  }
  EXPECT_THROW(
      result.cell(FleetFaultScenario::kBrownout, 0.25,
                  FleetPolicy::kThroughput),
      std::out_of_range);
}

TEST(FleetFaultStudyTest, FaultsActuallyHurt) {
  FleetFaultStudyConfig config = quick_study();
  config.scenarios = {FleetFaultScenario::kCellOutages,
                      FleetFaultScenario::kSignalCollapse};
  // The quick fleet's horizon only spans a handful of epochs; raise the
  // episode density so every scenario actually fires on it.
  config.epoch_s = 20.0;
  config.outage_prob = 0.9;
  config.collapse_prob = 0.9;
  const FleetFaultStudyResult result = run_fleet_fault_study(config);
  // Full-intensity outages must engage the degradation ladder somewhere.
  const FleetFaultStudyCell& outage = result.cell(
      FleetFaultScenario::kCellOutages, 1.0, FleetPolicy::kThroughput);
  EXPECT_GT(outage.metrics.escape_handoffs + outage.metrics.backoff_retries,
            0U);
  // A fleet-wide signal collapse costs energy vs. clean.
  const FleetFaultStudyCell& collapse = result.cell(
      FleetFaultScenario::kSignalCollapse, 1.0, FleetPolicy::kThroughput);
  EXPECT_GT(collapse.energy_delta_vs_clean_j, 0.0);
}

TEST(FleetFaultStudyTest, DeterministicAcrossRunsAndJobs) {
  FleetFaultStudyConfig config = quick_study();
  config.scenarios = {FleetFaultScenario::kCombined};
  const FleetFaultStudyResult a = run_fleet_fault_study(config);
  config.fleet.exec = ExecutionPolicy{8};
  const FleetFaultStudyResult b = run_fleet_fault_study(config);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].metrics.events, b.cells[i].metrics.events);
    EXPECT_EQ(a.cells[i].qoe_delta_vs_clean, b.cells[i].qoe_delta_vs_clean);
    EXPECT_EQ(a.cells[i].energy_delta_vs_clean_j,
              b.cells[i].energy_delta_vs_clean_j);
  }
}

TEST(FleetFaultStudyTest, ScenarioNamesAreStable) {
  EXPECT_STREQ(to_string(FleetFaultScenario::kCellOutages), "cell_outages");
  EXPECT_STREQ(to_string(FleetFaultScenario::kBrownout), "brownout");
  EXPECT_STREQ(to_string(FleetFaultScenario::kSignalCollapse),
               "signal_collapse");
  EXPECT_STREQ(to_string(FleetFaultScenario::kFlashCrowd), "flash_crowd");
  EXPECT_STREQ(to_string(FleetFaultScenario::kCombined), "combined");
}

}  // namespace
}  // namespace eacs::sim
