#include "eacs/sim/fault_study.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eacs::sim {
namespace {

FaultStudyConfig small_grid() {
  FaultStudyConfig config;
  config.outage_rates_per_min = {0.0, 1.0};
  config.failure_probs = {0.0, 0.25};
  return config;
}

TEST(FaultStudyTest, EmptyAxesThrow) {
  FaultStudyConfig config;
  config.outage_rates_per_min.clear();
  EXPECT_THROW(run_fault_study(config), std::invalid_argument);
  config = FaultStudyConfig{};
  config.failure_probs.clear();
  EXPECT_THROW(run_fault_study(config), std::invalid_argument);
}

TEST(FaultStudyTest, DeterministicInSeed) {
  const auto config = small_grid();
  const auto a = run_fault_study(config);
  const auto b = run_fault_study(config);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].algorithm, b.cells[i].algorithm);
    EXPECT_EQ(a.cells[i].mean_qoe, b.cells[i].mean_qoe);
    EXPECT_EQ(a.cells[i].total_energy_j, b.cells[i].total_energy_j);
    EXPECT_EQ(a.cells[i].wasted_energy_j, b.cells[i].wasted_energy_j);
    EXPECT_EQ(a.cells[i].rebuffer_s, b.cells[i].rebuffer_s);
    EXPECT_EQ(a.cells[i].retries, b.cells[i].retries);
  }
}

TEST(FaultStudyTest, BaselineCellMatchesFaultFreeRun) {
  const auto result = run_fault_study(small_grid());
  // 2x2 grid, 5 algorithms.
  EXPECT_EQ(result.cells.size(), 4U * 5U);

  for (const auto& algo : {"Youtube", "FESTIVE", "BBA", "Ours", "Optimal"}) {
    const auto& cell = result.cell(algo, 0.0, 0.0);
    // The (0, 0) corner runs with a disabled FaultSpec — a strict pass-
    // through — so its deltas against the fault-free baseline are exactly 0.
    EXPECT_EQ(cell.qoe_delta, 0.0);
    EXPECT_EQ(cell.energy_delta_j, 0.0);
    EXPECT_EQ(cell.rebuffer_delta_s, 0.0);
    EXPECT_EQ(cell.retries, 0U);
    EXPECT_EQ(cell.abandoned_segments, 0U);
    EXPECT_EQ(cell.wasted_energy_j, 0.0);
  }
}

TEST(FaultStudyTest, HarshCellShowsResilienceAtWork) {
  const auto result = run_fault_study(small_grid());
  // Under 1 outage/min and 25% request failures the retry machinery must be
  // visibly engaged for every algorithm, and the waste must be priced.
  for (const auto& algo : {"Youtube", "FESTIVE", "BBA", "Ours", "Optimal"}) {
    const auto& cell = result.cell(algo, 1.0, 0.25);
    EXPECT_GT(cell.retries, 0U) << algo;
    EXPECT_GT(cell.wasted_energy_j, 0.0) << algo;
    EXPECT_LE(cell.qoe_delta, 0.0) << algo;  // faults never improve QoE
  }
}

TEST(FaultStudyTest, UnknownCellThrows) {
  const auto result = run_fault_study(small_grid());
  EXPECT_THROW(result.cell("Nope", 0.0, 0.0), std::out_of_range);
  EXPECT_THROW(result.cell("Ours", 9.9, 0.0), std::out_of_range);
}

}  // namespace
}  // namespace eacs::sim
