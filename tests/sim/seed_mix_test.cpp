// sim::seed_mix is the one seed-derivation rule every sharded study and the
// fleet simulator lean on (DESIGN §6): these properties — purity, the frozen
// arithmetic, and collision-freedom across adjacent grid cells — are what
// make "bit-identical at any job count" possible.
#include <cstdint>
#include <set>

#include <gtest/gtest.h>

#include "eacs/sim/seed_mix.h"

namespace eacs::sim {
namespace {

TEST(SeedMixTest, PureFunctionOfInputs) {
  for (std::uint64_t base : {0ULL, 1ULL, 0xDEADBEEFULL}) {
    for (std::size_t grid : {std::size_t{0}, std::size_t{17}}) {
      for (int session : {-2, -1, 0, 1, 99}) {
        EXPECT_EQ(seed_mix(base, grid, session), seed_mix(base, grid, session));
      }
    }
  }
}

TEST(SeedMixTest, MatchesFrozenArithmetic) {
  // The formula is the exact cell_seed the studies shipped with; a change
  // here silently re-rolls every committed study output.
  const std::uint64_t base = 0x5EEDBA5EULL;
  const std::size_t grid = 42;
  const int session = 7;
  std::uint64_t x = base ^ (0x9E3779B97F4A7C15ULL * (grid + 1));
  x ^= 0x94D049BB133111EBULL * (static_cast<std::uint64_t>(session) + 1);
  EXPECT_EQ(seed_mix(base, grid, session), x);
}

TEST(SeedMixTest, NoCollisionsAcrossAdjacentGridCells) {
  // Every (grid index, session id) pair in a realistic sweep window must get
  // its own seed — a collision would correlate two supposedly independent
  // cells of a study.
  std::set<std::uint64_t> seen;
  std::size_t total = 0;
  for (std::size_t grid = 0; grid < 64; ++grid) {
    for (int session = -4; session < 64; ++session) {
      seen.insert(seed_mix(0xA5A5A5A5ULL, grid, session));
      ++total;
    }
  }
  EXPECT_EQ(seen.size(), total);
}

TEST(SeedMixTest, DistinctBasesDecorrelate) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t base = 0; base < 128; ++base) {
    seen.insert(seed_mix(base, 3, 5));
  }
  EXPECT_EQ(seen.size(), 128U);
}

TEST(SeedUnitTest, MapsIntoUnitInterval) {
  for (std::size_t grid = 0; grid < 256; ++grid) {
    const double u = seed_unit(seed_mix(0x1234ULL, grid, 1));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  EXPECT_EQ(seed_unit(0), 0.0);
  EXPECT_LT(seed_unit(~std::uint64_t{0}), 1.0);
}

}  // namespace
}  // namespace eacs::sim
