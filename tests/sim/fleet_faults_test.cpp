// Fleet fault domains + graceful degradation (DESIGN §14).
//
// Three claim families: (1) FleetFaultModel is a validated, *pure* overlay —
// every query is a function of (spec, cell, time) and the arrival warp is the
// exact inverse of the piecewise-constant surge profile; (2) the empty spec
// is a certified no-op — run_fleet with an inert fault block is bitwise
// identical to the clean run; (3) the degradation ladder actually engages
// under injected faults: escape handoffs, bounded backoff with wasted-energy
// accounting, abandonment conservation, and the planner overload shed.
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "eacs/sim/fleet.h"
#include "eacs/sim/fleet_faults.h"

namespace eacs::sim {
namespace {

constexpr std::size_t kCells = 8;

FleetConfig small_fleet() {
  FleetConfig config;
  config.network.num_cells = kCells;
  config.num_sessions = 400;
  config.arrival_rate_per_s = 4.0;
  config.segments_per_session = 12;
  config.regions = 4;
  return config;
}

// ---------------------------------------------------------------------------
// Validation

TEST(FleetFaultModelTest, ValidatesScriptedEpisodes) {
  {
    FleetFaultSpec spec;
    spec.outages.push_back({.t0_s = 10.0, .t1_s = 5.0});  // reversed
    EXPECT_THROW(FleetFaultModel(spec, kCells), std::invalid_argument);
  }
  {
    FleetFaultSpec spec;
    spec.outages.push_back(
        {.t0_s = 0.0, .t1_s = 10.0, .first_cell = 7, .num_cells = 4});
    EXPECT_THROW(FleetFaultModel(spec, kCells), std::invalid_argument);
  }
  {
    FleetFaultSpec spec;
    spec.outages.push_back({.t0_s = 0.0, .t1_s = 10.0, .num_cells = 0});
    EXPECT_THROW(FleetFaultModel(spec, kCells), std::invalid_argument);
  }
  {
    FleetFaultSpec spec;
    spec.brownouts.push_back(
        {.t0_s = 0.0, .t1_s = 10.0, .capacity_factor = 0.0});
    EXPECT_THROW(FleetFaultModel(spec, kCells), std::invalid_argument);
  }
  {
    FleetFaultSpec spec;
    spec.brownouts.push_back(
        {.t0_s = 0.0, .t1_s = 10.0, .capacity_factor = 1.5});
    EXPECT_THROW(FleetFaultModel(spec, kCells), std::invalid_argument);
  }
  {
    FleetFaultSpec spec;
    spec.collapses.push_back({.t0_s = 0.0, .t1_s = 10.0, .offset_db = 3.0});
    EXPECT_THROW(FleetFaultModel(spec, kCells), std::invalid_argument);
  }
  {
    FleetFaultSpec spec;
    spec.surges.push_back({.t0_s = 0.0, .t1_s = 10.0, .rate_multiplier = 0.0});
    EXPECT_THROW(FleetFaultModel(spec, kCells), std::invalid_argument);
  }
  {
    FleetFaultSpec spec;
    spec.outages.push_back(
        {.t0_s = std::numeric_limits<double>::quiet_NaN(), .t1_s = 10.0});
    EXPECT_THROW(FleetFaultModel(spec, kCells), std::invalid_argument);
  }
}

TEST(FleetFaultModelTest, ValidatesSeededConfig) {
  {
    FleetFaultSpec spec;
    spec.seeded.horizon_s = 100.0;
    spec.seeded.outage_prob = 1.5;  // probability outside [0, 1]
    EXPECT_THROW(FleetFaultModel(spec, kCells), std::invalid_argument);
  }
  {
    FleetFaultSpec spec;
    spec.seeded.horizon_s = 100.0;
    spec.seeded.outage_prob = 0.5;
    spec.seeded.epoch_s = 0.0;
    EXPECT_THROW(FleetFaultModel(spec, kCells), std::invalid_argument);
  }
  {
    FleetFaultSpec spec;
    spec.seeded.horizon_s = 100.0;
    spec.seeded.surge_prob = 0.5;
    spec.seeded.domain_cells = 0;
    EXPECT_THROW(FleetFaultModel(spec, kCells), std::invalid_argument);
  }
  {
    FleetFaultSpec spec;
    spec.seeded.horizon_s = 100.0;
    spec.seeded.brownout_prob = 0.5;
    spec.seeded.brownout_factor = 2.0;
    EXPECT_THROW(FleetFaultModel(spec, kCells), std::invalid_argument);
  }
}

// ---------------------------------------------------------------------------
// Scripted queries + most-severe-wins combination

TEST(FleetFaultModelTest, ScriptedQueriesAndSeverestWins) {
  FleetFaultSpec spec;
  spec.outages.push_back(
      {.t0_s = 10.0, .t1_s = 20.0, .first_cell = 2, .num_cells = 2});
  spec.brownouts.push_back({.t0_s = 0.0,
                            .t1_s = 50.0,
                            .first_cell = 0,
                            .num_cells = 8,
                            .capacity_factor = 0.8});
  spec.brownouts.push_back({.t0_s = 10.0,
                            .t1_s = 30.0,
                            .first_cell = 4,
                            .num_cells = 2,
                            .capacity_factor = 0.25});
  spec.collapses.push_back({.t0_s = 5.0,
                            .t1_s = 15.0,
                            .first_cell = 0,
                            .num_cells = 8,
                            .offset_db = -6.0});
  spec.collapses.push_back({.t0_s = 10.0,
                            .t1_s = 12.0,
                            .first_cell = 1,
                            .num_cells = 1,
                            .offset_db = -30.0});
  const FleetFaultModel model(spec, kCells);
  EXPECT_FALSE(model.empty());

  // Outage: half-open [t0, t1), exact cell range.
  EXPECT_FALSE(model.cell_dead(2, 9.999));
  EXPECT_TRUE(model.cell_dead(2, 10.0));
  EXPECT_TRUE(model.cell_dead(3, 19.999));
  EXPECT_FALSE(model.cell_dead(3, 20.0));
  EXPECT_FALSE(model.cell_dead(1, 15.0));
  EXPECT_FALSE(model.cell_dead(4, 15.0));

  // Brownout: min factor where episodes overlap, 1 outside.
  EXPECT_EQ(model.capacity_factor(4, 15.0), 0.25);
  EXPECT_EQ(model.capacity_factor(4, 40.0), 0.8);
  EXPECT_EQ(model.capacity_factor(4, 60.0), 1.0);
  EXPECT_EQ(model.capacity_factor(0, 15.0), 0.8);

  // Collapse: most negative offset where episodes overlap, 0 outside.
  EXPECT_EQ(model.signal_offset_db(1, 11.0), -30.0);
  EXPECT_EQ(model.signal_offset_db(1, 13.0), -6.0);
  EXPECT_EQ(model.signal_offset_db(1, 20.0), 0.0);

  // Purity: identical answers on re-query.
  EXPECT_EQ(model.capacity_factor(4, 15.0), model.capacity_factor(4, 15.0));
  EXPECT_EQ(model.signal_offset_db(1, 11.0), model.signal_offset_db(1, 11.0));
}

TEST(FleetFaultModelTest, ArrivalWarpIsExactWithoutSurges) {
  const FleetFaultModel model(FleetFaultSpec{}, kCells);
  EXPECT_TRUE(model.empty());
  EXPECT_FALSE(model.has_surges());
  for (std::size_t s : {0UL, 1UL, 17UL, 999UL}) {
    // Bitwise, not approximately: the no-surge path must be s / rate.
    EXPECT_EQ(model.arrival_time(s, 4.0), static_cast<double>(s) / 4.0);
  }
}

TEST(FleetFaultModelTest, SurgeWarpCompressesArrivals) {
  FleetFaultSpec spec;
  spec.surges.push_back({.t0_s = 10.0, .t1_s = 20.0, .rate_multiplier = 4.0});
  const FleetFaultModel model(spec, kCells);
  ASSERT_TRUE(model.has_surges());
  const double rate = 1.0;

  // Before the surge the schedule is untouched.
  EXPECT_EQ(model.arrival_time(5, rate), 5.0);
  // During the surge, arrivals pack 4x: sessions 10..49 land in [10, 20).
  EXPECT_EQ(model.arrival_time(10, rate), 10.0);
  EXPECT_NEAR(model.arrival_time(30, rate), 15.0, 1e-12);
  // Unit 50 is the first past the surge (10 + 40 warped units consumed).
  EXPECT_NEAR(model.arrival_time(50, rate), 20.0, 1e-12);
  // After the surge the rate is nominal again, shifted by the packed block.
  EXPECT_NEAR(model.arrival_time(60, rate), 30.0, 1e-12);

  // Strictly increasing across the whole schedule.
  double prev = -1.0;
  for (std::size_t s = 0; s < 100; ++s) {
    const double t = model.arrival_time(s, rate);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(FleetFaultModelTest, SeededEpisodesAreDeterministicAndAligned) {
  FleetFaultSpec spec;
  spec.seeded.horizon_s = 600.0;
  spec.seeded.epoch_s = 60.0;
  spec.seeded.domain_cells = 4;
  spec.seeded.outage_prob = 0.5;
  spec.seeded.brownout_prob = 0.5;
  spec.seeded.collapse_prob = 0.5;
  spec.seeded.surge_prob = 0.5;
  const FleetFaultModel a(spec, kCells);
  const FleetFaultModel b(spec, kCells);

  // Stateless draws: two constructions materialize the identical episode set.
  ASSERT_EQ(a.outages().size(), b.outages().size());
  for (std::size_t i = 0; i < a.outages().size(); ++i) {
    EXPECT_EQ(a.outages()[i].t0_s, b.outages()[i].t0_s);
    EXPECT_EQ(a.outages()[i].first_cell, b.outages()[i].first_cell);
  }
  // With p = 0.5 over 10 epochs x 2 domains, some of each family must fire.
  EXPECT_GT(a.outages().size(), 0U);
  EXPECT_GT(a.brownouts().size(), 0U);
  EXPECT_GT(a.collapses().size(), 0U);
  EXPECT_TRUE(a.has_surges());

  // Episodes start on epoch boundaries and stay inside the cell grid.
  for (const CellOutage& o : a.outages()) {
    EXPECT_EQ(std::fmod(o.t0_s, spec.seeded.epoch_s), 0.0);
    EXPECT_LE(o.first_cell + o.num_cells, kCells);
    EXPECT_EQ(o.t1_s - o.t0_s, spec.seeded.outage_duration_s);
  }

  // A different seed draws a different episode set — compare the full
  // timeline content, not just counts (counts can coincide by chance).
  FleetFaultSpec other = spec;
  other.seeded.seed ^= 0x9E37'79B9ULL;
  const FleetFaultModel c(other, kCells);
  const auto signature = [](const FleetFaultModel& model) {
    std::string sig;
    for (const CellOutage& o : model.outages()) {
      sig += "o" + std::to_string(o.t0_s) + "@" + std::to_string(o.first_cell);
    }
    for (const CapacityBrownout& b : model.brownouts()) {
      sig += "b" + std::to_string(b.t0_s) + "@" + std::to_string(b.first_cell);
    }
    for (const SignalCollapse& s : model.collapses()) {
      sig += "c" + std::to_string(s.t0_s) + "@" + std::to_string(s.first_cell);
    }
    return sig;
  };
  EXPECT_NE(signature(a), signature(c));
}

// ---------------------------------------------------------------------------
// Certified no-op: an inert fault block takes the clean code path, bitwise.

TEST(FleetFaultsTest, InertSpecIsBitwiseNoOp) {
  const FleetConfig clean = small_fleet();
  const FleetMetrics reference = run_fleet(clean);

  // Three inert shapes: default, probabilities-without-horizon, and
  // horizon-without-probabilities.
  FleetConfig probed = small_fleet();
  probed.faults.seeded.outage_prob = 0.9;  // horizon_s == 0 still disables
  FleetConfig empty_probs = small_fleet();
  empty_probs.faults.seeded.horizon_s = 500.0;  // all probs still 0

  for (const FleetConfig* config : {&probed, &empty_probs}) {
    const FleetMetrics metrics = run_fleet(*config);
    EXPECT_EQ(metrics.events, reference.events);
    EXPECT_EQ(metrics.requests, reference.requests);
    EXPECT_EQ(metrics.handoffs, reference.handoffs);
    EXPECT_EQ(metrics.stall_events, reference.stall_events);
    EXPECT_EQ(metrics.qoe.mean(), reference.qoe.mean());
    EXPECT_EQ(metrics.qoe.variance(), reference.qoe.variance());
    EXPECT_EQ(metrics.energy_j.sum(), reference.energy_j.sum());
    EXPECT_EQ(metrics.rebuffer_s.sum(), reference.rebuffer_s.sum());
    EXPECT_EQ(metrics.qoe_quantile(0.5), reference.qoe_quantile(0.5));
    // The degradation ladder never engaged.
    EXPECT_EQ(metrics.escape_handoffs, 0U);
    EXPECT_EQ(metrics.backoff_retries, 0U);
    EXPECT_EQ(metrics.abandoned_sessions, 0U);
    EXPECT_EQ(metrics.policy_sheds, 0U);
    EXPECT_EQ(metrics.shed_decisions, 0U);
    EXPECT_EQ(metrics.degraded_time_s, 0.0);
    EXPECT_EQ(metrics.wasted_energy_j, 0.0);
  }
}

// ---------------------------------------------------------------------------
// Degradation ladder under injected faults

TEST(FleetFaultsTest, OutageTriggersEscapeHandoffsNotAbandonment) {
  // Kill half the cells mid-run: sessions there must escape to live cells.
  // The other half stays up, so nobody needs to back off for long and every
  // session still finishes.
  FleetConfig config = small_fleet();
  config.regions = 1;  // all 8 cells in one region: escape routes exist
  config.faults.outages.push_back(
      {.t0_s = 10.0, .t1_s = 60.0, .first_cell = 0, .num_cells = 4});
  const FleetMetrics metrics = run_fleet(config);
  EXPECT_EQ(metrics.sessions + metrics.abandoned_sessions,
            config.num_sessions);
  EXPECT_GT(metrics.escape_handoffs, 0U);
  EXPECT_EQ(metrics.abandoned_sessions, 0U);  // live cells always reachable
}

TEST(FleetFaultsTest, TotalBlackoutBacksOffThenAbandons) {
  // Every cell dead for far longer than the whole backoff ladder: sessions
  // caught inside must burn retries, accrue degraded time + wasted pause
  // energy, and eventually abandon. Conservation still holds.
  FleetConfig config = small_fleet();
  config.faults.outages.push_back(
      {.t0_s = 5.0, .t1_s = 100000.0, .first_cell = 0, .num_cells = kCells});
  const FleetMetrics metrics = run_fleet(config);
  EXPECT_EQ(metrics.sessions + metrics.abandoned_sessions,
            config.num_sessions);
  EXPECT_GT(metrics.abandoned_sessions, 0U);
  EXPECT_GT(metrics.backoff_retries, 0U);
  EXPECT_GT(metrics.degraded_time_s, 0.0);
  EXPECT_GT(metrics.wasted_energy_j, 0.0);
  // The ladder is bounded: at most max_retries sleeps per abandonment plus
  // whatever the survivors burned before the outage started.
  EXPECT_LE(metrics.backoff_retries,
            config.resilience.max_retries * config.num_sessions);
  // Abandoned sessions never pollute the QoE aggregates.
  EXPECT_EQ(metrics.qoe.count(), metrics.sessions);
  EXPECT_EQ(metrics.energy_j.count(), metrics.sessions);
}

TEST(FleetFaultsTest, ShorterBackoffLadderAbandonsFaster) {
  FleetConfig config = small_fleet();
  config.faults.outages.push_back(
      {.t0_s = 5.0, .t1_s = 100000.0, .first_cell = 0, .num_cells = kCells});
  FleetConfig impatient = config;
  impatient.resilience.max_retries = 1;
  const FleetMetrics patient = run_fleet(config);
  const FleetMetrics quick = run_fleet(impatient);
  EXPECT_GE(quick.abandoned_sessions, patient.abandoned_sessions);
  EXPECT_LT(quick.degraded_time_s, patient.degraded_time_s);
}

TEST(FleetFaultsTest, BrownoutDegradesServiceWithoutKillingSessions) {
  FleetConfig config = small_fleet();
  config.faults.brownouts.push_back({.t0_s = 0.0,
                                     .t1_s = 100000.0,
                                     .first_cell = 0,
                                     .num_cells = kCells,
                                     .capacity_factor = 0.25});
  const FleetMetrics clean = run_fleet(small_fleet());
  const FleetMetrics browned = run_fleet(config);
  EXPECT_EQ(browned.sessions, config.num_sessions);
  EXPECT_EQ(browned.abandoned_sessions, 0U);
  // A 4x capacity cut must cost bitrate or stalls (or both).
  EXPECT_TRUE(browned.bitrate_mbps.mean() < clean.bitrate_mbps.mean() ||
              browned.rebuffer_s.sum() > clean.rebuffer_s.sum());
}

TEST(FleetFaultsTest, SignalCollapseRaisesEnergyPerMb) {
  // The paper's energy model prices bad signal: a fleet-wide collapse must
  // raise the energy the radio spends on the same content.
  FleetConfig config = small_fleet();
  config.faults.collapses.push_back({.t0_s = 0.0,
                                     .t1_s = 100000.0,
                                     .first_cell = 0,
                                     .num_cells = kCells,
                                     .offset_db = -25.0});
  const FleetMetrics clean = run_fleet(small_fleet());
  const FleetMetrics collapsed = run_fleet(config);
  EXPECT_EQ(collapsed.sessions, config.num_sessions);
  EXPECT_GT(collapsed.energy_j.mean(), clean.energy_j.mean());
}

TEST(FleetFaultsTest, FlashCrowdRaisesPeakLive) {
  FleetConfig config = small_fleet();
  config.num_sessions = 1000;
  config.faults.surges.push_back(
      {.t0_s = 20.0, .t1_s = 60.0, .rate_multiplier = 6.0});
  FleetConfig clean = small_fleet();
  clean.num_sessions = 1000;
  const FleetMetrics surged = run_fleet(config);
  const FleetMetrics base = run_fleet(clean);
  EXPECT_EQ(surged.sessions + surged.abandoned_sessions, config.num_sessions);
  EXPECT_GT(surged.peak_live_sessions, base.peak_live_sessions);
}

TEST(FleetFaultsTest, FaultedRunsStayBitIdenticalAcrossJobCounts) {
  FleetConfig config = small_fleet();
  config.faults.outages.push_back(
      {.t0_s = 10.0, .t1_s = 40.0, .first_cell = 0, .num_cells = 4});
  config.faults.surges.push_back(
      {.t0_s = 5.0, .t1_s = 25.0, .rate_multiplier = 3.0});
  config.faults.seeded.horizon_s = 200.0;
  config.faults.seeded.brownout_prob = 0.4;
  config.faults.seeded.collapse_prob = 0.4;
  config.exec = ExecutionPolicy{1};
  const FleetMetrics serial = run_fleet(config);
  for (const std::size_t jobs : {2, 8}) {
    config.exec = ExecutionPolicy{jobs};
    const FleetMetrics parallel = run_fleet(config);
    EXPECT_EQ(parallel.events, serial.events);
    EXPECT_EQ(parallel.escape_handoffs, serial.escape_handoffs);
    EXPECT_EQ(parallel.backoff_retries, serial.backoff_retries);
    EXPECT_EQ(parallel.abandoned_sessions, serial.abandoned_sessions);
    EXPECT_EQ(parallel.degraded_time_s, serial.degraded_time_s);
    EXPECT_EQ(parallel.wasted_energy_j, serial.wasted_energy_j);
    EXPECT_EQ(parallel.qoe.mean(), serial.qoe.mean());
    EXPECT_EQ(parallel.energy_j.sum(), serial.energy_j.sum());
  }
}

// ---------------------------------------------------------------------------
// Planner overload shed

FleetConfig planner_fleet() {
  FleetConfig config = small_fleet();
  config.policy = FleetPolicy::kPlanner;
  return config;
}

TEST(FleetShedTest, LiveCountTriggerShedsAndRecovers) {
  FleetConfig config = planner_fleet();
  config.num_sessions = 1000;
  config.resilience.shed_live_threshold = 8;  // well inside the steady state
  const FleetMetrics metrics = run_fleet(config);
  EXPECT_GT(metrics.policy_sheds, 0U);
  EXPECT_GT(metrics.shed_decisions, 0U);
  // The fleet drains at the end, so every shed eventually recovers.
  EXPECT_EQ(metrics.policy_recoveries, metrics.policy_sheds);
  // Consultation conservation with sheds in the ledger: every non-startup
  // request either consulted the cache or was shed.
  EXPECT_EQ(metrics.planner.cache_hits + metrics.planner.cache_misses +
                metrics.shed_decisions,
            metrics.requests - metrics.sessions);
  // Shed decisions skip the planner: strictly fewer solves than unshedded.
  const FleetConfig unshedded = planner_fleet();
  FleetConfig big_unshedded = unshedded;
  big_unshedded.num_sessions = 1000;
  const FleetMetrics base = run_fleet(big_unshedded);
  EXPECT_LT(metrics.planner.plans, base.planner.plans);
}

TEST(FleetShedTest, DisabledTriggersNeverShed) {
  FleetConfig config = planner_fleet();
  config.num_sessions = 1000;  // same load as the trigger test above
  const FleetMetrics metrics = run_fleet(config);
  EXPECT_EQ(metrics.policy_sheds, 0U);
  EXPECT_EQ(metrics.shed_decisions, 0U);
  EXPECT_EQ(metrics.planner.cache_hits + metrics.planner.cache_misses,
            metrics.requests - metrics.sessions);
}

TEST(FleetShedTest, MissRateTriggerShedsUnderThrash) {
  // A 1-slot cache thrashes; a threshold below the observed thrash rate must
  // trip the miss-rate trigger and hold the shed for shed_hold_s. The
  // threshold is calibrated from an untriggered run of the same workload
  // (the arena L1 still serves hits, so the rate is workload-dependent).
  FleetConfig config = planner_fleet();
  config.num_sessions = 1000;
  config.planner_cache.capacity = 1;
  const FleetMetrics probe = run_fleet(config);
  const double thrash_rate =
      static_cast<double>(probe.planner.cache_misses) /
      static_cast<double>(probe.planner.cache_hits +
                          probe.planner.cache_misses);
  ASSERT_GT(thrash_rate, 0.0);
  config.resilience.shed_miss_rate_threshold = 0.8 * thrash_rate;
  config.resilience.shed_miss_window = 64;
  config.resilience.shed_hold_s = 10.0;
  const FleetMetrics metrics = run_fleet(config);
  EXPECT_GT(metrics.policy_sheds, 0U);
  EXPECT_GT(metrics.shed_decisions, 0U);
  EXPECT_EQ(metrics.planner.cache_hits + metrics.planner.cache_misses +
                metrics.shed_decisions,
            metrics.requests - metrics.sessions);
}

TEST(FleetShedTest, ShedMetricsBitIdenticalAcrossJobCounts) {
  FleetConfig config = planner_fleet();
  config.num_sessions = 1000;
  config.resilience.shed_live_threshold = 8;
  config.exec = ExecutionPolicy{1};
  const FleetMetrics serial = run_fleet(config);
  for (const std::size_t jobs : {2, 8}) {
    config.exec = ExecutionPolicy{jobs};
    const FleetMetrics parallel = run_fleet(config);
    EXPECT_EQ(parallel.policy_sheds, serial.policy_sheds);
    EXPECT_EQ(parallel.policy_recoveries, serial.policy_recoveries);
    EXPECT_EQ(parallel.shed_decisions, serial.shed_decisions);
    EXPECT_EQ(parallel.planner.plans, serial.planner.plans);
    EXPECT_EQ(parallel.qoe.mean(), serial.qoe.mean());
    EXPECT_EQ(parallel.energy_j.sum(), serial.energy_j.sum());
  }
}

}  // namespace
}  // namespace eacs::sim
