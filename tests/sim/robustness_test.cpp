#include "eacs/sim/robustness.h"

#include <gtest/gtest.h>

namespace eacs::sim {
namespace {

TEST(RobustnessTest, ZeroRunsThrows) {
  EXPECT_THROW(run_robustness_study({}, 0), std::invalid_argument);
}

TEST(RobustnessTest, DeterministicInBaseSeed) {
  const auto a = run_robustness_study({}, 2, 99);
  const auto b = run_robustness_study({}, 2, 99);
  EXPECT_DOUBLE_EQ(a.per_algorithm.at("Ours").energy_saving.mean(),
                   b.per_algorithm.at("Ours").energy_saving.mean());
}

TEST(RobustnessTest, HeadlineOrderingHoldsAcrossSeeds) {
  // 3 independent trace ensembles keep the test quick; the bench runs 10.
  const auto result = run_robustness_study({}, 3, 2026);
  EXPECT_EQ(result.runs, 3U);
  const auto& ours = result.per_algorithm.at("Ours");
  const auto& festive = result.per_algorithm.at("FESTIVE");
  const auto& bba = result.per_algorithm.at("BBA");

  // Ours saves far more than the throughput baselines in *every* run (the
  // min of Ours' distribution beats the max of theirs).
  EXPECT_GT(ours.energy_saving.min(), festive.energy_saving.max());
  EXPECT_GT(ours.energy_saving.min(), bba.energy_saving.max());
  // The extra-energy savings land in the paper's ballpark in every run.
  EXPECT_GT(ours.extra_energy_saving.min(), 0.60);
  // QoE degradation stays small in every run.
  EXPECT_LT(ours.qoe_degradation.max(), 0.10);
  // Low run-to-run variance: the conclusion is not seed luck.
  EXPECT_LT(ours.energy_saving.stddev(), 0.05);
}

}  // namespace
}  // namespace eacs::sim
