#include "eacs/sim/training.h"

#include <gtest/gtest.h>

#include "../test_helpers.h"

namespace eacs::sim {
namespace {

std::vector<trace::SessionTraces> training_sessions() {
  // Two short contrasting sessions keep the test fast.
  auto quiet = eacs::testing::make_session(80.0, 25.0, -88.0, 0.5);
  quiet.spec.id = 1;
  quiet.spec.length_s = 80.0;
  auto shaky = eacs::testing::make_session(80.0, 8.0, -106.0, 6.5);
  shaky.spec.id = 2;
  shaky.spec.length_s = 80.0;
  return {quiet, shaky};
}

TEST(CemTrainerTest, InvalidInputsThrow) {
  EXPECT_THROW(CemTrainer({}, {}, 0.5), std::invalid_argument);
  auto episodes = CemTrainer::make_episodes(training_sessions());
  EXPECT_THROW(CemTrainer(std::move(episodes), {}, 1.5), std::invalid_argument);
}

TEST(CemTrainerTest, EpisodesCarryYoutubeNormalisers) {
  const auto episodes = CemTrainer::make_episodes(training_sessions());
  ASSERT_EQ(episodes.size(), 2U);
  for (const auto& episode : episodes) {
    EXPECT_GT(episode.youtube_energy_j, 0.0);
    EXPECT_GT(episode.youtube_qoe, 1.0);
    EXPECT_EQ(episode.manifest.ladder().size(), 14U);
  }
}

TEST(CemTrainerTest, BadConfigThrows) {
  CemTrainer trainer(CemTrainer::make_episodes(training_sessions()));
  CemConfig config;
  config.elites = 0;
  EXPECT_THROW(trainer.train(config), std::invalid_argument);
  config.elites = 100;
  config.population = 10;
  EXPECT_THROW(trainer.train(config), std::invalid_argument);
}

TEST(CemTrainerTest, TrainingImprovesReward) {
  CemTrainer trainer(CemTrainer::make_episodes(training_sessions()));
  // Baseline: untrained (zero) weights.
  const double untrained =
      trainer.evaluate(std::vector<double>(abr::PolicyFeatures::kCount, 0.0));
  CemConfig config;
  config.population = 16;
  config.elites = 4;
  config.iterations = 6;
  const auto result = trainer.train(config);
  EXPECT_EQ(result.reward_history.size(), 6U);
  EXPECT_GT(result.final_reward, untrained);
  // Rewards are non-degrading across iterations (best-of-population with a
  // narrowing distribution can dip slightly; require overall improvement).
  EXPECT_GE(result.reward_history.back(), result.reward_history.front() - 0.02);
}

TEST(CemTrainerTest, DeterministicPerSeed) {
  CemTrainer trainer(CemTrainer::make_episodes(training_sessions()));
  CemConfig config;
  config.population = 8;
  config.elites = 2;
  config.iterations = 2;
  config.seed = 77;
  const auto a = trainer.train(config);
  const auto b = trainer.train(config);
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (std::size_t i = 0; i < a.weights.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.weights[i], b.weights[i]);
  }
}

TEST(CemTrainerTest, TrainedPolicyBeatsExtremesOnReward) {
  CemTrainer trainer(CemTrainer::make_episodes(training_sessions()));
  CemConfig config;
  config.population = 16;
  config.elites = 4;
  config.iterations = 6;
  const auto result = trainer.train(config);
  // Always-lowest and always-highest correspond to extreme biases.
  std::vector<double> always_low(abr::PolicyFeatures::kCount, 0.0);
  always_low[0] = -50.0;
  std::vector<double> always_high(abr::PolicyFeatures::kCount, 0.0);
  always_high[0] = 50.0;
  EXPECT_GT(result.final_reward, trainer.evaluate(always_low));
  EXPECT_GT(result.final_reward, trainer.evaluate(always_high));
}

}  // namespace
}  // namespace eacs::sim
