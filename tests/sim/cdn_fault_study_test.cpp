// CDN fault study acceptance tests.
//
// The contract-level facts the ISSUE pins down:
//  * the sweep is bit-identical at any job count (1, 2, 8);
//  * during origin outages, >= 2 sources strictly dominate the single-source
//    retry-only baseline on rebuffering;
//  * the deltas are exact arithmetic on the grid's own cells;
//  * degenerate configurations fail loudly.

#include "eacs/sim/cdn_fault_study.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace eacs::sim {
namespace {

CdnFaultStudyConfig small_grid() {
  CdnFaultStudyConfig config;
  config.families = {CdnFaultFamily::kOriginOutage, CdnFaultFamily::kErrorBursts};
  config.intensities = {1.0};
  config.source_counts = {1, 2};
  return config;
}

void expect_cells_bit_identical(const CdnFaultStudyResult& a,
                                const CdnFaultStudyResult& b) {
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].mean_qoe, b.cells[i].mean_qoe) << "cell " << i;
    EXPECT_EQ(a.cells[i].total_energy_j, b.cells[i].total_energy_j);
    EXPECT_EQ(a.cells[i].wasted_energy_j, b.cells[i].wasted_energy_j);
    EXPECT_EQ(a.cells[i].rebuffer_s, b.cells[i].rebuffer_s);
    EXPECT_EQ(a.cells[i].mean_bitrate_mbps, b.cells[i].mean_bitrate_mbps);
    EXPECT_EQ(a.cells[i].retries, b.cells[i].retries);
    EXPECT_EQ(a.cells[i].hedges, b.cells[i].hedges);
    EXPECT_EQ(a.cells[i].failovers, b.cells[i].failovers);
    EXPECT_EQ(a.cells[i].breaker_transitions, b.cells[i].breaker_transitions);
    EXPECT_EQ(a.cells[i].qoe_delta_vs_single, b.cells[i].qoe_delta_vs_single);
    EXPECT_EQ(a.cells[i].rebuffer_delta_vs_single_s,
              b.cells[i].rebuffer_delta_vs_single_s);
  }
  EXPECT_EQ(a.clean.mean_qoe, b.clean.mean_qoe);
  EXPECT_EQ(a.clean.total_energy_j, b.clean.total_energy_j);
  EXPECT_EQ(a.clean.rebuffer_s, b.clean.rebuffer_s);
}

TEST(CdnFaultStudyTest, GridIsFiniteAndCompletelyPopulated) {
  const auto result = run_cdn_fault_study(small_grid());
  ASSERT_EQ(result.cells.size(), 4U);  // 2 families x 1 intensity x 2 counts
  for (const auto& cell : result.cells) {
    EXPECT_TRUE(std::isfinite(cell.mean_qoe));
    EXPECT_TRUE(std::isfinite(cell.total_energy_j));
    EXPECT_TRUE(std::isfinite(cell.wasted_energy_j));
    EXPECT_GE(cell.wasted_energy_j, 0.0);
    EXPECT_TRUE(std::isfinite(cell.rebuffer_s));
    EXPECT_GE(cell.rebuffer_s, 0.0);
    EXPECT_GT(cell.mean_bitrate_mbps, 0.0);
    // Single-source cells cannot fail over or hedge, by construction.
    if (cell.sources == 1) {
      EXPECT_EQ(cell.failovers, 0U);
      EXPECT_EQ(cell.hedges, 0U);
    }
  }
  EXPECT_TRUE(std::isfinite(result.clean.mean_qoe));
  EXPECT_GT(result.clean.mean_qoe, 0.0);
  EXPECT_TRUE(std::isfinite(result.clean.rebuffer_s));
  EXPECT_GE(result.clean.rebuffer_s, 0.0);
}

TEST(CdnFaultStudyTest, FailoverStrictlyDominatesRetryOnlyDuringOutages) {
  const auto result = run_cdn_fault_study(small_grid());
  const auto& solo = result.cell(CdnFaultFamily::kOriginOutage, 1.0, 1);
  const auto& duo = result.cell(CdnFaultFamily::kOriginOutage, 1.0, 2);

  // The retry-only baseline rides every outage out on backoff ladders; the
  // two-source player escapes to the edge.
  EXPECT_GT(solo.rebuffer_s, 0.0);
  EXPECT_LT(duo.rebuffer_s, solo.rebuffer_s);
  EXPECT_GE(duo.failovers, 1U);
  EXPECT_GE(duo.qoe_delta_vs_single, 0.0);

  // Error bursts: the second source should also slash the retry count.
  const auto& err_solo = result.cell(CdnFaultFamily::kErrorBursts, 1.0, 1);
  const auto& err_duo = result.cell(CdnFaultFamily::kErrorBursts, 1.0, 2);
  EXPECT_LT(err_duo.retries, err_solo.retries);
}

TEST(CdnFaultStudyTest, DeltasAreExactArithmeticOnTheGrid) {
  const auto result = run_cdn_fault_study(small_grid());
  for (const auto& cell : result.cells) {
    const auto& single = result.cell(cell.family, cell.intensity, 1);
    EXPECT_EQ(cell.qoe_delta_vs_single, cell.mean_qoe - single.mean_qoe);
    EXPECT_EQ(cell.energy_delta_vs_single_j,
              cell.total_energy_j - single.total_energy_j);
    EXPECT_EQ(cell.rebuffer_delta_vs_single_s,
              cell.rebuffer_s - single.rebuffer_s);
    EXPECT_EQ(cell.qoe_delta_vs_clean, cell.mean_qoe - result.clean.mean_qoe);
    EXPECT_EQ(cell.rebuffer_delta_vs_clean_s,
              cell.rebuffer_s - result.clean.rebuffer_s);
  }
}

TEST(CdnFaultStudyTest, BitIdenticalAcrossJobCounts) {
  auto config = small_grid();
  config.evaluation.exec.jobs = 1;
  const auto serial = run_cdn_fault_study(config);
  for (const std::size_t jobs : {2U, 8U}) {
    config.evaluation.exec.jobs = jobs;
    const auto parallel = run_cdn_fault_study(config);
    SCOPED_TRACE(::testing::Message() << "jobs=" << jobs);
    expect_cells_bit_identical(serial, parallel);
  }
}

TEST(CdnFaultStudyTest, ConfigValidation) {
  auto empty_axis = small_grid();
  empty_axis.intensities.clear();
  EXPECT_THROW(run_cdn_fault_study(empty_axis), std::invalid_argument);

  auto zero_sources = small_grid();
  zero_sources.source_counts = {0};
  EXPECT_THROW(run_cdn_fault_study(zero_sources), std::invalid_argument);

  const auto result = run_cdn_fault_study(small_grid());
  EXPECT_THROW(result.cell(CdnFaultFamily::kSlowStart, 1.0, 1),
               std::out_of_range);
  EXPECT_THROW(result.cell(CdnFaultFamily::kOriginOutage, 0.25, 1),
               std::out_of_range);
  EXPECT_THROW(result.cell(CdnFaultFamily::kOriginOutage, 1.0, 7),
               std::out_of_range);
}

TEST(CdnFaultStudyTest, FamilyIdentifiersAreStable) {
  EXPECT_STREQ(to_string(CdnFaultFamily::kOriginOutage), "origin_outage");
  EXPECT_STREQ(to_string(CdnFaultFamily::kErrorBursts), "error_bursts");
  EXPECT_STREQ(to_string(CdnFaultFamily::kPayloadCorruption),
               "payload_corruption");
  EXPECT_STREQ(to_string(CdnFaultFamily::kSlowStart), "slow_start");
  EXPECT_STREQ(to_string(CdnFaultFamily::kCombined), "combined");
  EXPECT_EQ(all_cdn_fault_families().size(), 5U);
}

}  // namespace
}  // namespace eacs::sim
