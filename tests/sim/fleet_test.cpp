// Fleet-scale simulation: the procedural CellNetwork and the sharded,
// event-driven run_fleet path (DESIGN §12). The load-bearing claims: every
// query is pure, results are bit-identical at any job count, event counts
// obey conservation invariants, and the live set — not the total session
// count — bounds the state.
#include <algorithm>
#include <limits>
#include <stdexcept>

#include <gtest/gtest.h>

#include "eacs/sim/cell_network.h"
#include "eacs/sim/fleet.h"

namespace eacs::sim {
namespace {

CellNetworkConfig small_network() {
  CellNetworkConfig config;
  config.num_cells = 8;
  return config;
}

FleetConfig small_fleet() {
  FleetConfig config;
  config.network = small_network();
  config.num_sessions = 400;
  config.arrival_rate_per_s = 4.0;
  config.segments_per_session = 12;
  config.regions = 4;
  return config;
}

TEST(CellNetworkTest, ValidatesConfig) {
  CellNetworkConfig config;
  config.num_cells = 0;
  EXPECT_THROW(CellNetwork{config}, std::invalid_argument);
}

TEST(CellNetworkTest, CapacityIsNonNegativeAndVaries) {
  const CellNetwork network(small_network());
  double lo = 1e300;
  double hi = -1e300;
  for (std::size_t cell = 0; cell < network.num_cells(); ++cell) {
    for (double t = 0.0; t < 200.0; t += 5.0) {
      const double c = network.capacity_mbps(cell, t);
      EXPECT_GE(c, 0.0);
      lo = std::min(lo, c);
      hi = std::max(hi, c);
      // Purity: asking twice gives the identical answer.
      EXPECT_EQ(c, network.capacity_mbps(cell, t));
    }
  }
  EXPECT_GT(hi, lo);  // cells differ / swing over time
}

TEST(CellNetworkTest, SignalStaysInModelRange) {
  const auto config = small_network();
  const CellNetwork network(config);
  const double floor = config.signal_worst_dbm - config.signal_swing_db;
  const double ceiling = config.signal_best_dbm + config.signal_swing_db;
  for (int session : {0, 1, 12345}) {
    for (std::size_t cell = 0; cell < network.num_cells(); ++cell) {
      for (double t = 0.0; t < 120.0; t += 7.0) {
        const double dbm = network.signal_dbm(session, cell, t);
        EXPECT_GE(dbm, floor);
        EXPECT_LE(dbm, ceiling);
      }
    }
  }
}

TEST(CellNetworkTest, BestCellRespectsRangeRestriction) {
  const CellNetwork network(small_network());
  for (int session : {3, 77}) {
    for (double t : {0.0, 31.0, 93.0}) {
      const std::size_t best = network.best_cell(session, t);
      EXPECT_LT(best, network.num_cells());
      const std::size_t restricted = network.best_cell_in(session, t, 4, 4);
      EXPECT_GE(restricted, 4U);
      EXPECT_LT(restricted, 8U);
      // The restricted winner really is the strongest in its window.
      for (std::size_t c = 4; c < 8; ++c) {
        EXPECT_GE(network.signal_dbm(session, restricted, t),
                  network.signal_dbm(session, c, t));
      }
    }
  }
}

TEST(CellNetworkTest, ServingCellHysteresisBlocksSmallGains) {
  const CellNetwork network(small_network());
  for (int session = 0; session < 40; ++session) {
    for (double t : {5.0, 50.0, 110.0}) {
      const std::size_t current = network.best_cell(session, 0.0);
      const std::size_t serving = network.serving_cell(
          session, current, t, 3.0, 0, network.num_cells());
      if (serving != current) {
        // Any switch must clear the hysteresis margin.
        EXPECT_GT(network.signal_dbm(session, serving, t),
                  network.signal_dbm(session, current, t) + 3.0);
      } else {
        // Sticking is only allowed when no cell clears the margin.
        const std::size_t best = network.best_cell(session, t);
        EXPECT_LE(network.signal_dbm(session, best, t),
                  network.signal_dbm(session, current, t) + 3.0);
      }
    }
  }
}

TEST(FleetTest, ValidatesConfig) {
  FleetConfig config = small_fleet();
  config.ladder_mbps.clear();
  EXPECT_THROW(run_fleet(config), std::invalid_argument);
  config = small_fleet();
  config.num_sessions = 0;
  EXPECT_THROW(run_fleet(config), std::invalid_argument);
  config = small_fleet();
  config.segments_per_session = 0;
  EXPECT_THROW(run_fleet(config), std::invalid_argument);
  config = small_fleet();
  config.arrival_rate_per_s = 0.0;
  EXPECT_THROW(run_fleet(config), std::invalid_argument);
  config = small_fleet();
  config.ladder_mbps = {1.0, -2.0};
  EXPECT_THROW(run_fleet(config), std::invalid_argument);
}

TEST(FleetTest, ConservationInvariants) {
  const auto config = small_fleet();
  const auto metrics = run_fleet(config);
  // Every session arrives, finishes, and issues exactly one request per
  // segment (throttle wakeups re-enter the queue but issue nothing).
  EXPECT_EQ(metrics.sessions, config.num_sessions);
  EXPECT_EQ(metrics.requests, config.num_sessions * config.segments_per_session);
  // arrivals + (request wakeups >= requests) + completions.
  EXPECT_GE(metrics.events, config.num_sessions + 2 * metrics.requests);
  EXPECT_EQ(metrics.qoe.count(), config.num_sessions);
  EXPECT_EQ(metrics.energy_j.count(), config.num_sessions);
  EXPECT_GT(metrics.qoe.mean(), 0.0);
  EXPECT_GT(metrics.energy_j.mean(), 0.0);
  EXPECT_GT(metrics.bitrate_mbps.mean(), 0.0);
  // Region bookkeeping tiles the fleet exactly.
  std::size_t region_sessions = 0;
  std::size_t region_cells = 0;
  for (const auto& region : metrics.regions) {
    region_sessions += region.sessions;
    region_cells += region.num_cells;
  }
  EXPECT_EQ(region_sessions, config.num_sessions);
  EXPECT_EQ(region_cells, config.network.num_cells);
}

TEST(FleetTest, BitIdenticalAcrossJobCounts) {
  FleetConfig config = small_fleet();
  config.exec = ExecutionPolicy{1};
  const auto serial = run_fleet(config);
  for (const std::size_t jobs : {2, 8}) {
    config.exec = ExecutionPolicy{jobs};
    const auto parallel = run_fleet(config);
    EXPECT_EQ(parallel.sessions, serial.sessions);
    EXPECT_EQ(parallel.events, serial.events);
    EXPECT_EQ(parallel.requests, serial.requests);
    EXPECT_EQ(parallel.handoffs, serial.handoffs);
    EXPECT_EQ(parallel.stall_events, serial.stall_events);
    EXPECT_EQ(parallel.peak_live_sessions, serial.peak_live_sessions);
    // Bit-identical floating-point aggregates, not just "close".
    EXPECT_EQ(parallel.qoe.mean(), serial.qoe.mean());
    EXPECT_EQ(parallel.qoe.variance(), serial.qoe.variance());
    EXPECT_EQ(parallel.energy_j.sum(), serial.energy_j.sum());
    EXPECT_EQ(parallel.rebuffer_s.sum(), serial.rebuffer_s.sum());
    EXPECT_EQ(parallel.qoe_quantile(0.5), serial.qoe_quantile(0.5));
    EXPECT_EQ(parallel.energy_quantile(0.9), serial.energy_quantile(0.9));
    ASSERT_EQ(parallel.regions.size(), serial.regions.size());
    for (std::size_t r = 0; r < serial.regions.size(); ++r) {
      EXPECT_EQ(parallel.regions[r].events, serial.regions[r].events);
      EXPECT_EQ(parallel.regions[r].median_qoe, serial.regions[r].median_qoe);
    }
  }
}

TEST(FleetTest, HandoffsHappen) {
  FleetConfig config = small_fleet();
  config.num_sessions = 800;
  const auto metrics = run_fleet(config);
  EXPECT_GT(metrics.handoffs, 0U);
}

TEST(FleetTest, LiveSetStaysBoundedAsFleetGrows) {
  // O(live) state: 10x the sessions at the same arrival rate must not grow
  // the peak live set — Little's law bounds it by rate x session length.
  FleetConfig small = small_fleet();
  small.num_sessions = 500;
  FleetConfig large = small_fleet();
  large.num_sessions = 5000;
  const auto small_metrics = run_fleet(small);
  const auto large_metrics = run_fleet(large);
  EXPECT_EQ(large_metrics.sessions, 5000U);
  // The peak live set is far below the fleet size...
  EXPECT_LT(large_metrics.peak_live_sessions, large.num_sessions / 4);
  // ...and grows sublinearly (at most ~2x for 10x sessions: the steady
  // state, not the fleet, sets it).
  EXPECT_LT(large_metrics.peak_live_sessions,
            2 * std::max<std::size_t>(small_metrics.peak_live_sessions, 1));
}

TEST(FleetTest, VibrationCapLowersBitrateForShakySessions) {
  // With the cap disabled (threshold above any procedural draw) the fleet
  // mean bitrate must not drop; with an aggressive cap it must.
  FleetConfig capped = small_fleet();
  capped.vibration_cap_threshold = 0.0;  // every session capped
  capped.vibration_rung_cap = 0;
  FleetConfig uncapped = small_fleet();
  uncapped.vibration_cap_threshold = 1e9;  // no session capped
  const auto capped_metrics = run_fleet(capped);
  const auto uncapped_metrics = run_fleet(uncapped);
  EXPECT_LT(capped_metrics.bitrate_mbps.mean(),
            uncapped_metrics.bitrate_mbps.mean());
  // Energy follows bitrate down (the paper's energy/quality trade).
  EXPECT_LT(capped_metrics.energy_j.mean(), uncapped_metrics.energy_j.mean());
}

TEST(FleetTest, LongSessionsThrottleAtBufferThresholdAndTerminate) {
  // 60 segments x 2 s = 120 s of media against a 30 s buffer threshold:
  // every session crosses the throttle and must sleep-and-resume, not spin.
  // (Regression: a wake scheduled < 1 ulp ahead used to re-enqueue at the
  // identical timestamp forever once the buffer sat one ulp above the
  // threshold after a wakeup drain.)
  FleetConfig config = small_fleet();
  config.num_sessions = 100;
  config.segments_per_session = 60;
  const auto metrics = run_fleet(config);
  EXPECT_EQ(metrics.sessions, config.num_sessions);
  EXPECT_EQ(metrics.requests, config.num_sessions * config.segments_per_session);
  // Throttle wakeups re-enter the queue as extra request events.
  EXPECT_GT(metrics.events, config.num_sessions + 2 * metrics.requests);
}

TEST(FleetTest, MoreRegionsThanCellsThrows) {
  // Regression: this used to clamp silently to one cell per region, hiding a
  // misconfigured sweep. A region must own at least one cell, so anything
  // outside [1, num_cells] is rejected up front.
  FleetConfig config = small_fleet();
  config.regions = 64;  // > num_cells
  EXPECT_THROW(run_fleet(config), std::invalid_argument);
  config.regions = 0;
  EXPECT_THROW(run_fleet(config), std::invalid_argument);
  config.regions = config.network.num_cells;  // boundary: one cell per region
  EXPECT_EQ(run_fleet(config).regions.size(), config.network.num_cells);
}

TEST(FleetTest, ValidatesNonFiniteConfig) {
  FleetConfig config = small_fleet();
  config.arrival_rate_per_s = std::numeric_limits<double>::infinity();
  EXPECT_THROW(run_fleet(config), std::invalid_argument);
  config = small_fleet();
  config.arrival_rate_per_s = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(run_fleet(config), std::invalid_argument);
  config = small_fleet();
  config.segment_duration_s = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(run_fleet(config), std::invalid_argument);
  config = small_fleet();
  config.segment_duration_s = 0.0;
  EXPECT_THROW(run_fleet(config), std::invalid_argument);
  config = small_fleet();
  config.ladder_mbps = {1.0, std::numeric_limits<double>::infinity()};
  EXPECT_THROW(run_fleet(config), std::invalid_argument);
}

TEST(FleetTest, ValidatesResilienceConfig) {
  FleetConfig config = small_fleet();
  config.resilience.backoff_base_s = 0.0;
  EXPECT_THROW(run_fleet(config), std::invalid_argument);
  config = small_fleet();
  config.resilience.backoff_factor = 0.5;  // must be >= 1
  EXPECT_THROW(run_fleet(config), std::invalid_argument);
  config = small_fleet();
  config.resilience.backoff_max_s = 1.0;  // below backoff_base_s
  EXPECT_THROW(run_fleet(config), std::invalid_argument);
  config = small_fleet();
  config.resilience.backoff_base_s = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(run_fleet(config), std::invalid_argument);
  config = small_fleet();
  config.resilience.max_retries = 0;
  EXPECT_THROW(run_fleet(config), std::invalid_argument);
  config = small_fleet();
  config.resilience.shed_miss_rate_threshold = 0.5;  // enabled...
  config.resilience.shed_miss_window = 0;            // ...but no window
  EXPECT_THROW(run_fleet(config), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// kPlanner policy: the Eq. 11 planner on every client, memoized through one
// DecisionCache shard per region (DESIGN "Decision cache & quantization").

FleetConfig planner_fleet() {
  FleetConfig config = small_fleet();
  config.policy = FleetPolicy::kPlanner;
  return config;
}

TEST(FleetPlannerTest, ValidatesPlannerConfig) {
  {
    FleetConfig config = planner_fleet();
    config.planner_horizon = 0;
    EXPECT_THROW(run_fleet(config), std::invalid_argument);
  }
  {
    FleetConfig config = planner_fleet();
    config.planner_cache.buffer_bucket_s = 0.0;  // invalid quantized width
    EXPECT_THROW(run_fleet(config), std::invalid_argument);
  }
  // The same width is fine under kThroughput: the planner cache is unused.
  {
    FleetConfig config = small_fleet();
    config.planner_cache.buffer_bucket_s = 0.0;
    EXPECT_EQ(run_fleet(config).sessions, config.num_sessions);
  }
}

TEST(FleetPlannerTest, ThroughputPolicyKeepsPlannerCountersZero) {
  const auto metrics = run_fleet(small_fleet());
  EXPECT_EQ(metrics.planner.plans, 0u);
  EXPECT_EQ(metrics.planner.cache_hits, 0u);
  EXPECT_EQ(metrics.planner.cache_misses, 0u);
  EXPECT_EQ(metrics.planner.cache_evictions, 0u);
  EXPECT_EQ(metrics.planner.model_evals(), 0u);
}

TEST(FleetPlannerTest, CounterConservation) {
  const FleetConfig config = planner_fleet();
  const auto metrics = run_fleet(config);
  const auto& planner = metrics.planner;
  // Exactly one startup request per session bypasses the cache; every other
  // request consults it exactly once.
  EXPECT_EQ(planner.cache_hits + planner.cache_misses,
            metrics.requests - metrics.sessions);
  // Every miss is exactly one cold DP solve, and nothing else plans.
  EXPECT_EQ(planner.plans, planner.cache_misses);
  // Each solve builds one cost table per window task (quantized mode always
  // plans the full horizon), each table evaluating the QoE and power models
  // once per rung plus one baseline QoE pass (2M + 1).
  EXPECT_EQ(planner.tables_built, planner.plans * config.planner_horizon);
  const std::uint64_t rungs = config.ladder_mbps.size();
  EXPECT_EQ(planner.model_evals(), planner.tables_built * (2 * rungs + 1));
  // Memoization must actually engage on a population this size.
  EXPECT_GT(planner.cache_hits, 0u);
  // Shard counters merge to the fleet total (serial region-order fold).
  core::CostStats folded;
  for (const auto& region : metrics.regions) folded.merge(region.planner);
  EXPECT_EQ(folded.plans, planner.plans);
  EXPECT_EQ(folded.cache_hits, planner.cache_hits);
  EXPECT_EQ(folded.cache_misses, planner.cache_misses);
  EXPECT_EQ(folded.cache_evictions, planner.cache_evictions);
  EXPECT_EQ(folded.model_evals(), planner.model_evals());
}

TEST(FleetPlannerTest, BitIdenticalAcrossJobCounts) {
  FleetConfig config = planner_fleet();
  config.exec = ExecutionPolicy{1};
  const auto serial = run_fleet(config);
  for (const std::size_t jobs : {2, 8}) {
    config.exec = ExecutionPolicy{jobs};
    const auto parallel = run_fleet(config);
    EXPECT_EQ(parallel.events, serial.events);
    EXPECT_EQ(parallel.requests, serial.requests);
    EXPECT_EQ(parallel.stall_events, serial.stall_events);
    EXPECT_EQ(parallel.planner.plans, serial.planner.plans);
    EXPECT_EQ(parallel.planner.cache_hits, serial.planner.cache_hits);
    EXPECT_EQ(parallel.planner.cache_misses, serial.planner.cache_misses);
    EXPECT_EQ(parallel.planner.cache_evictions,
              serial.planner.cache_evictions);
    EXPECT_EQ(parallel.planner.model_evals(), serial.planner.model_evals());
    // Bit-identical floating-point aggregates, not just "close".
    EXPECT_EQ(parallel.qoe.mean(), serial.qoe.mean());
    EXPECT_EQ(parallel.energy_j.sum(), serial.energy_j.sum());
    EXPECT_EQ(parallel.qoe_quantile(0.5), serial.qoe_quantile(0.5));
    ASSERT_EQ(parallel.regions.size(), serial.regions.size());
    for (std::size_t r = 0; r < serial.regions.size(); ++r) {
      EXPECT_EQ(parallel.regions[r].planner.cache_hits,
                serial.regions[r].planner.cache_hits);
      EXPECT_EQ(parallel.regions[r].median_qoe, serial.regions[r].median_qoe);
    }
  }
}

TEST(FleetPlannerTest, CacheCapacityNeverChangesDecisions) {
  // Canonicalize-then-solve: the cache (at ANY capacity, including the
  // 1-slot thrasher and the never-storing 0) only changes how often the DP
  // runs, never what it returns. Fleet aggregates are bitwise invariant.
  FleetConfig config = planner_fleet();
  config.planner_cache.capacity = 0;
  const auto uncached = run_fleet(config);
  for (const std::size_t capacity :
       {std::size_t{1}, std::size_t{4096}, FleetConfig{}.planner_cache.capacity}) {
    config.planner_cache.capacity = capacity;
    const auto cached = run_fleet(config);
    EXPECT_EQ(cached.requests, uncached.requests);
    EXPECT_EQ(cached.stall_events, uncached.stall_events);
    EXPECT_EQ(cached.qoe.mean(), uncached.qoe.mean());
    EXPECT_EQ(cached.qoe.variance(), uncached.qoe.variance());
    EXPECT_EQ(cached.energy_j.sum(), uncached.energy_j.sum());
    EXPECT_EQ(cached.bitrate_mbps.mean(), uncached.bitrate_mbps.mean());
    EXPECT_EQ(cached.rebuffer_s.sum(), uncached.rebuffer_s.sum());
    EXPECT_EQ(cached.qoe_quantile(0.9), uncached.qoe_quantile(0.9));
    // The uncached reference solves on every consultation; a real capacity
    // must replace some solves with hits without changing the lookup count.
    EXPECT_EQ(cached.planner.cache_hits + cached.planner.cache_misses,
              uncached.planner.cache_misses);
    EXPECT_GT(cached.planner.cache_hits, 0u);
    EXPECT_LT(cached.planner.plans, uncached.planner.plans);
  }
}

TEST(FleetPlannerTest, PlannerPolicyChangesOutcomes) {
  // Sanity that kPlanner is a different client, not a relabeled kThroughput:
  // the energy-aware objective should spend less energy on this workload.
  const auto throughput = run_fleet(small_fleet());
  const auto planner = run_fleet(planner_fleet());
  EXPECT_EQ(planner.sessions, throughput.sessions);
  EXPECT_NE(planner.energy_j.mean(), throughput.energy_j.mean());
  EXPECT_GT(planner.planner.plans, 0u);
}

}  // namespace
}  // namespace eacs::sim
