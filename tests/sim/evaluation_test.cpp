#include "eacs/sim/evaluation.h"

#include <gtest/gtest.h>

#include "eacs/abr/fixed.h"
#include "../test_helpers.h"

namespace eacs::sim {
namespace {

using eacs::testing::make_session;

/// A fast two-session evaluation: one smooth/strong, one shaky/weak.
std::vector<trace::SessionTraces> mini_sessions() {
  auto quiet = make_session(120.0, 25.0, -88.0, 0.5);
  quiet.spec.id = 1;
  quiet.spec.length_s = 120.0;
  auto shaky = make_session(120.0, 7.0, -107.0, 6.5);
  shaky.spec.id = 2;
  shaky.spec.length_s = 120.0;
  return {quiet, shaky};
}

TEST(MetricsTest, EnergyAndQoeComposition) {
  const auto manifest = eacs::testing::make_manifest(20.0, 2.0);
  player::PlayerSimulator simulator(manifest);
  abr::FixedBitrate policy(13, "Top");
  const auto session = make_session(20.0, 40.0, -95.0, 3.0);
  const auto playback = simulator.run(policy, session);
  const qoe::QoeModel qoe_model;
  const power::PowerModel power_model;
  const auto metrics =
      compute_metrics("Top", 1, playback, manifest, qoe_model, power_model);

  EXPECT_GT(metrics.total_energy_j, 0.0);
  EXPECT_GT(metrics.base_energy_j, 0.0);
  EXPECT_NEAR(metrics.extra_energy_j,
              metrics.total_energy_j - metrics.base_energy_j, 1e-9);
  EXPECT_GT(metrics.extra_energy_j, 0.0);  // top bitrate costs more than base
  EXPECT_GE(metrics.mean_qoe, 1.0);
  EXPECT_LE(metrics.mean_qoe, 5.0);
  EXPECT_NEAR(metrics.mean_bitrate_mbps, 5.8, 1e-6);
}

TEST(MetricsTest, LowestBitrateRunHasNoExtraEnergy) {
  const auto manifest = eacs::testing::make_manifest(20.0, 2.0);
  player::PlayerSimulator simulator(manifest);
  abr::FixedBitrate policy(0, "Bottom");
  const auto playback = simulator.run(policy, make_session(20.0, 40.0));
  const auto metrics = compute_metrics("Bottom", 1, playback, manifest,
                                       qoe::QoeModel{}, power::PowerModel{});
  EXPECT_NEAR(metrics.extra_energy_j, 0.0, 1e-6);
}

TEST(EvaluationTest, ProducesAllAlgorithmRows) {
  Evaluation evaluation;
  const auto result = evaluation.run(mini_sessions());
  const auto algos = result.algorithms();
  ASSERT_EQ(algos.size(), 5U);
  EXPECT_EQ(algos[0], "Youtube");
  EXPECT_EQ(algos[4], "Optimal");
  EXPECT_EQ(result.rows.size(), 10U);  // 5 algorithms x 2 sessions
  EXPECT_THROW(result.row("Nope", 1), std::out_of_range);
}

TEST(EvaluationTest, IncludeBolaAddsRows) {
  EvaluationConfig config;
  config.include_bola = true;
  Evaluation evaluation(config);
  const auto result = evaluation.run(mini_sessions());
  EXPECT_EQ(result.algorithms().size(), 6U);
}

TEST(EvaluationTest, YoutubeConsumesTheMostEnergy) {
  Evaluation evaluation;
  const auto result = evaluation.run(mini_sessions());
  for (int session_id : {1, 2}) {
    const double youtube = result.row("Youtube", session_id).total_energy_j;
    for (const auto& algo : {"FESTIVE", "BBA", "Ours", "Optimal"}) {
      EXPECT_LE(result.row(algo, session_id).total_energy_j, youtube + 1e-6)
          << algo << " on session " << session_id;
    }
  }
}

TEST(EvaluationTest, OursSavesMoreThanThroughputBaselines) {
  // The headline Fig. 5(b) ordering: Ours/Optimal >> FESTIVE/BBA on energy
  // saving.
  Evaluation evaluation;
  const auto result = evaluation.run(mini_sessions());
  const double ours = result.mean_energy_saving("Ours");
  const double optimal = result.mean_energy_saving("Optimal");
  const double festive = result.mean_energy_saving("FESTIVE");
  const double bba = result.mean_energy_saving("BBA");
  EXPECT_GT(ours, festive);
  EXPECT_GT(ours, bba);
  EXPECT_GE(optimal, ours - 0.05);  // optimal ~ upper bound (5% slack: the
                                    // planner's oracle model is not the
                                    // simulator)
}

TEST(EvaluationTest, QoeDegradationIsSmall) {
  // Fig. 6(c): a few percent QoE degradation vs YouTube for all adaptive
  // algorithms.
  Evaluation evaluation;
  const auto result = evaluation.run(mini_sessions());
  for (const auto& algo : {"FESTIVE", "BBA", "Ours", "Optimal"}) {
    EXPECT_LT(result.mean_qoe_degradation(algo), 0.15) << algo;
  }
}

TEST(EvaluationTest, RatioFavoursContextAwareness) {
  // Fig. 7: energy-saving / QoE-degradation ratio of Ours beats FESTIVE and
  // BBA.
  Evaluation evaluation;
  const auto result = evaluation.run(mini_sessions());
  const double ours = result.saving_degradation_ratio("Ours");
  const double festive = result.saving_degradation_ratio("FESTIVE");
  const double bba = result.saving_degradation_ratio("BBA");
  if (festive > 0.0) {
    EXPECT_GT(ours, festive);
  }
  if (bba > 0.0) {
    EXPECT_GT(ours, bba);
  }
}

TEST(EvaluationTest, ContextAwareAblationSavesEnergyOnShakySession) {
  // Disabling the vibration term makes "Ours" pick higher bitrates on the
  // shaky session -> more energy.
  EvaluationConfig aware_config;
  EvaluationConfig blind_config;
  blind_config.context_aware = false;
  const auto sessions = mini_sessions();
  const auto aware = Evaluation(aware_config).run(sessions);
  const auto blind = Evaluation(blind_config).run(sessions);
  EXPECT_LE(aware.row("Ours", 2).total_energy_j,
            blind.row("Ours", 2).total_energy_j + 1e-6);
}

TEST(EvaluationTest, ManifestForSpecUsesEvaluationLadder) {
  Evaluation evaluation;
  const auto manifest = evaluation.manifest_for(media::evaluation_sessions()[0]);
  EXPECT_EQ(manifest.ladder().size(), 14U);
  EXPECT_DOUBLE_EQ(manifest.segment_duration_s(), 2.0);
  EXPECT_DOUBLE_EQ(manifest.total_duration_s(), 198.0);
}

TEST(EvaluationTest, ExactKeyOnlineCacheIsBitIdenticalToUncached) {
  // The rich-engine default cache mode is exact keys: memoization is a pure
  // speedup, so every row must come out bit-for-bit the same as uncached.
  EvaluationConfig cached_config;
  cached_config.online_cache = core::DecisionCacheConfig{};  // exact = true
  const auto sessions = mini_sessions();
  const auto uncached = Evaluation{}.run(sessions);
  const auto cached = Evaluation(cached_config).run(sessions);
  ASSERT_EQ(cached.rows.size(), uncached.rows.size());
  for (std::size_t i = 0; i < cached.rows.size(); ++i) {
    const auto& a = cached.rows[i];
    const auto& b = uncached.rows[i];
    EXPECT_EQ(a.algorithm, b.algorithm);
    EXPECT_EQ(a.session_id, b.session_id);
    EXPECT_EQ(a.total_energy_j, b.total_energy_j);
    EXPECT_EQ(a.mean_qoe, b.mean_qoe);
    EXPECT_EQ(a.mean_bitrate_mbps, b.mean_bitrate_mbps);
    EXPECT_EQ(a.rebuffer_s, b.rebuffer_s);
    EXPECT_EQ(a.switch_count, b.switch_count);
  }
}

TEST(EvaluationTest, InvalidConfigThrows) {
  EvaluationConfig config;
  config.segment_duration_s = 0.0;
  EXPECT_THROW(Evaluation{config}, std::invalid_argument);
}

}  // namespace
}  // namespace eacs::sim
