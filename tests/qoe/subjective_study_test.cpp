#include "eacs/qoe/subjective_study.h"

#include <gtest/gtest.h>

#include <cmath>

namespace eacs::qoe {
namespace {

TEST(NineToFiveTest, MapsScaleEndpointsAndMidpoint) {
  EXPECT_DOUBLE_EQ(nine_to_five(1.0), 1.0);
  EXPECT_DOUBLE_EQ(nine_to_five(9.0), 5.0);
  EXPECT_DOUBLE_EQ(nine_to_five(5.0), 3.0);
}

TEST(SubjectiveStudyTest, ProducesFullFactorialDesign) {
  StudyConfig config;
  config.num_subjects = 3;
  SubjectiveStudy study(config, QoeModel{});
  const auto ratings = study.run();
  // 3 subjects x 10 videos x 6 bitrates x 2 contexts.
  EXPECT_EQ(ratings.size(), 3U * 10U * 6U * 2U);
  for (const auto& rating : ratings) {
    EXPECT_GE(rating.score9, 1);
    EXPECT_LE(rating.score9, 9);
    EXPECT_GE(rating.score5, 1.0);
    EXPECT_LE(rating.score5, 5.0);
  }
}

TEST(SubjectiveStudyTest, DeterministicPerSeed) {
  StudyConfig config;
  config.num_subjects = 2;
  SubjectiveStudy a(config, QoeModel{});
  SubjectiveStudy b(config, QoeModel{});
  const auto ra = a.run();
  const auto rb = b.run();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].score9, rb[i].score9);
  }
}

TEST(SubjectiveStudyTest, ZeroSubjectsThrows) {
  StudyConfig config;
  config.num_subjects = 0;
  EXPECT_THROW(SubjectiveStudy(config, QoeModel{}), std::invalid_argument);
}

TEST(SubjectiveStudyTest, AggregateComputesMos) {
  std::vector<Rating> ratings;
  for (int i = 0; i < 4; ++i) {
    Rating rating;
    rating.bitrate_mbps = 1.5;
    rating.vibration = 0.1;
    rating.score5 = 2.0 + i;  // 2,3,4,5
    ratings.push_back(rating);
  }
  const auto mos = SubjectiveStudy::aggregate(ratings);
  ASSERT_EQ(mos.size(), 1U);
  EXPECT_DOUBLE_EQ(mos[0].mos, 3.5);
  EXPECT_EQ(mos[0].n, 4U);
}

TEST(SubjectiveStudyTest, AggregateBinsVibration) {
  std::vector<Rating> ratings;
  Rating a;
  a.bitrate_mbps = 1.5;
  a.vibration = 2.1;
  a.score5 = 3.0;
  Rating b = a;
  b.vibration = 2.4;  // same 0.5-wide bin as 2.1
  Rating c = a;
  c.vibration = 6.0;  // different bin
  ratings = {a, b, c};
  const auto mos = SubjectiveStudy::aggregate(ratings, 0.5);
  EXPECT_EQ(mos.size(), 2U);
}

TEST(SubjectiveStudyTest, AggregateRejectsBadBin) {
  EXPECT_THROW(SubjectiveStudy::aggregate({}, 0.0), std::invalid_argument);
}

TEST(QoeFitTest, RecoversGroundTruthFromNoisyPanel) {
  // The paper's pipeline: 20 noisy subjects -> least squares. The q0 curve
  // is tightly identified; the impairment surface's individual exponents are
  // NOT (one study's rating noise rivals the impairment signal), so we
  // assert *functional* recovery: the fitted surface must track the ground
  // truth at the paper's high-impairment spot checks, where decisions are
  // actually influenced.
  const QoeModelParams truth;  // a=1.036, b=0.429, kappa=0.0165, ...
  StudyConfig config;
  SubjectiveStudy study(config, QoeModel{truth});
  const auto ratings = study.run();
  const auto fit = fit_qoe_model_from_ratings(ratings);

  EXPECT_NEAR(fit.params.a, truth.a, 0.15);
  EXPECT_NEAR(fit.params.b, truth.b, 0.12);
  EXPECT_GT(fit.curve_fit.r_squared, 0.5);  // individual ratings, not MOS

  const QoeModel truth_model{truth};
  const QoeModel fitted_model{fit.params};
  for (const auto& [v, r] : {std::pair{6.0, 5.8}, std::pair{6.0, 3.0},
                             std::pair{4.0, 5.8}}) {
    const double want = truth_model.vibration_impairment(v, r);
    const double got = fitted_model.vibration_impairment(v, r);
    EXPECT_GT(got, 0.4 * want) << "I(" << v << ", " << r << ")";
    EXPECT_LT(got, 2.0 * want) << "I(" << v << ", " << r << ")";
  }
}

TEST(QoeFitTest, LowNoisePanelRecoversExponents) {
  // With a quieter panel (many careful raters) the exponents themselves are
  // identified — this guards the estimator against systematic bias.
  StudyConfig config;
  config.rating_noise_sd = 0.1;
  config.subject_bias_sd = 0.05;
  config.num_subjects = 40;
  const QoeModelParams truth;
  SubjectiveStudy study(config, QoeModel{truth});
  const auto fit = fit_qoe_model_from_ratings(study.run());
  EXPECT_NEAR(fit.params.alpha_v, truth.alpha_v, 0.4);
  EXPECT_NEAR(fit.params.beta_r, truth.beta_r, 0.3);
  EXPECT_GT(fit.params.kappa, truth.kappa * 0.4);
  EXPECT_LT(fit.params.kappa, truth.kappa * 2.5);
}

TEST(QoeFitTest, MosVariantAlsoFitsCurve) {
  StudyConfig config;
  SubjectiveStudy study(config, QoeModel{});
  const auto mos = SubjectiveStudy::aggregate(study.run(), config.vibration_bin);
  const auto fit = fit_qoe_model(mos);
  EXPECT_NEAR(fit.params.a, 1.036, 0.15);
  EXPECT_NEAR(fit.params.b, 0.429, 0.12);
  EXPECT_GT(fit.curve_fit.r_squared, 0.9);
}

TEST(QoeFitTest, NoiselessPanelRecoversTightly) {
  StudyConfig config;
  config.subject_bias_sd = 0.0;
  config.rating_noise_sd = 0.0;
  config.num_subjects = 20;
  const QoeModelParams truth;
  SubjectiveStudy study(config, QoeModel{truth});
  const auto mos = SubjectiveStudy::aggregate(study.run(), config.vibration_bin);
  const auto fit = fit_qoe_model(mos);
  // Quantisation to the 9-grade scale is the only distortion left.
  EXPECT_NEAR(fit.params.a, truth.a, 0.08);
  EXPECT_NEAR(fit.params.b, truth.b, 0.08);
}

TEST(PerVideoFitTest, ContentSensitivitySpreadsTheCurves) {
  StudyConfig config;
  config.content_sensitivity = 0.3;
  config.rating_noise_sd = 0.2;  // keep the per-video fits crisp
  SubjectiveStudy study(config, QoeModel{});
  const auto fits = fit_q0_per_video(study.run());
  ASSERT_EQ(fits.size(), 10U);
  // Complex content (Goodwood, detail 0.88) scores clearly below simple
  // content (Speech, detail 0.18) at a starved bitrate...
  const auto find = [&](const char* name) {
    for (const auto& fit : fits) {
      if (fit.video == name) return fit;
    }
    throw std::runtime_error("missing video fit");
  };
  // True model gap at 0.375 Mbps with sensitivity 0.3 is ~0.28 MOS; allow
  // for fit noise.
  EXPECT_LT(find("Goodwood").q_at_low, find("Speech").q_at_low - 0.15);
  // ...while at the top bitrate the gap closes substantially.
  EXPECT_LT(find("Speech").q_at_high - find("Goodwood").q_at_high,
            find("Speech").q_at_low - find("Goodwood").q_at_low);
}

TEST(PerVideoFitTest, ZeroSensitivityCollapsesTheSpread) {
  StudyConfig config;
  config.content_sensitivity = 0.0;
  config.rating_noise_sd = 0.2;
  SubjectiveStudy study(config, QoeModel{});
  const auto fits = fit_q0_per_video(study.run());
  double min_low = 5.0;
  double max_low = 0.0;
  for (const auto& fit : fits) {
    min_low = std::min(min_low, fit.q_at_low);
    max_low = std::max(max_low, fit.q_at_low);
  }
  EXPECT_LT(max_low - min_low, 0.3);  // only noise separates the videos
}

TEST(QoeFitTest, NoRoomPointsThrows) {
  std::vector<MosPoint> mos = {{1.5, 6.0, 3.0, 10}};
  EXPECT_THROW(fit_qoe_model(mos), std::invalid_argument);
}

}  // namespace
}  // namespace eacs::qoe
