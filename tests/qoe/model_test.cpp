#include "eacs/qoe/model.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eacs::qoe {
namespace {

TEST(QoeModelTest, OriginalQualityMonotoneInBitrate) {
  const QoeModel model;
  double prev = 0.0;
  for (double r : {0.1, 0.375, 0.75, 1.5, 3.0, 5.8}) {
    const double q = model.original_quality(r);
    EXPECT_GT(q, prev);
    prev = q;
  }
}

TEST(QoeModelTest, OriginalQualitySaturatesAtHighBitrate) {
  // The paper: QoE does not improve much beyond 720p on a phone.
  const QoeModel model;
  const double gain_low = model.original_quality(0.75) - model.original_quality(0.375);
  const double gain_high = model.original_quality(5.8) - model.original_quality(3.0);
  EXPECT_GT(gain_low, 2.0 * gain_high);
}

TEST(QoeModelTest, QuietRoom1080pTo480pDropMatchesPaper) {
  // Fig. 1(b): ~12% QoE drop from 1080p to 480p in a quiet room.
  const QoeModel model;
  const double q1080 = model.original_quality(5.8);
  const double q480 = model.original_quality(1.5);
  const double drop = (q1080 - q480) / q1080;
  EXPECT_GT(drop, 0.05);
  EXPECT_LT(drop, 0.15);
}

TEST(QoeModelTest, VehicleDropMuchSmallerThanRoomDrop) {
  // Fig. 1(b): on a moving vehicle (v ~ 6) the same 1080p->480p drop is only
  // ~4% because vibration hurts high bitrates more.
  const QoeModel model;
  const double v = 6.0;
  const double room_drop = (model.original_quality(5.8) - model.original_quality(1.5)) /
                           model.original_quality(5.8);
  const double vehicle_drop =
      (model.perceived_quality(5.8, v) - model.perceived_quality(1.5, v)) /
      model.perceived_quality(5.8, v);
  EXPECT_LT(vehicle_drop, 0.6 * room_drop);
}

TEST(QoeModelTest, ImpairmentMatchesPaperSpotChecks) {
  // Fig. 2(c) spot values quoted in the text.
  const QoeModel model;
  EXPECT_NEAR(model.vibration_impairment(2.0, 1.5), 0.049, 0.01);
  EXPECT_NEAR(model.vibration_impairment(6.0, 1.5), 0.184, 0.02);
  EXPECT_NEAR(model.vibration_impairment(2.0, 5.8), 0.174, 0.02);
  EXPECT_NEAR(model.vibration_impairment(6.0, 5.8), 0.549, 0.04);
}

TEST(QoeModelTest, ImpairmentZeroAtZeroVibrationOrBitrate) {
  const QoeModel model;
  EXPECT_DOUBLE_EQ(model.vibration_impairment(0.0, 5.8), 0.0);
  EXPECT_DOUBLE_EQ(model.vibration_impairment(-1.0, 5.8), 0.0);
  EXPECT_DOUBLE_EQ(model.vibration_impairment(6.0, 0.0), 0.0);
}

TEST(QoeModelTest, ImpairmentMonotoneInBothArguments) {
  const QoeModel model;
  EXPECT_LT(model.vibration_impairment(2.0, 3.0), model.vibration_impairment(4.0, 3.0));
  EXPECT_LT(model.vibration_impairment(4.0, 1.0), model.vibration_impairment(4.0, 3.0));
}

TEST(QoeModelTest, PerceivedQualityClampedToMosRange) {
  QoeModelParams params;
  params.kappa = 10.0;  // absurd impairment
  const QoeModel model(params);
  EXPECT_GE(model.perceived_quality(5.8, 7.0), 1.0);
  EXPECT_LE(model.perceived_quality(5.8, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(QoeModel().original_quality(0.0), 1.0);
  EXPECT_DOUBLE_EQ(QoeModel().original_quality(1e-9), 1.0);  // floor clamp
}

TEST(QoeModelTest, SwitchImpairment) {
  const QoeModel model;
  EXPECT_DOUBLE_EQ(model.switch_impairment(3.0, 0.0), 0.0);   // first segment
  EXPECT_DOUBLE_EQ(model.switch_impairment(3.0, 3.0), 0.0);   // no change
  const double up = model.switch_impairment(5.8, 1.5);
  const double down = model.switch_impairment(1.5, 5.8);
  EXPECT_DOUBLE_EQ(up, down);  // symmetric in |q0 delta|
  EXPECT_GT(up, 0.0);
}

TEST(QoeModelTest, SegmentQoeComposition) {
  const QoeModel model;
  SegmentContext context;
  context.bitrate_mbps = 3.0;
  context.vibration = 4.0;
  context.prev_bitrate_mbps = 1.5;
  context.rebuffer_s = 0.5;
  const double expected = model.original_quality(3.0) -
                          model.vibration_impairment(4.0, 3.0) -
                          model.switch_impairment(3.0, 1.5) -
                          model.params().rebuffer_penalty_per_s * 0.5;
  EXPECT_DOUBLE_EQ(model.segment_qoe(context), expected);
}

TEST(QoeModelTest, RebufferingHurts) {
  const QoeModel model;
  SegmentContext clean{3.0, 2.0, 3.0, 0.0};
  SegmentContext stalled{3.0, 2.0, 3.0, 2.0};
  EXPECT_GT(model.segment_qoe(clean), model.segment_qoe(stalled) + 1.0);
}

TEST(QoeModelTest, ContextAwareSweetSpotUnderVibration) {
  // Under heavy vibration the perceived-quality gain from the top bitrate is
  // tiny: q(5.8) - q(1.5) shrinks by an order of magnitude vs the quiet room.
  const QoeModel model;
  const double quiet_gain = model.perceived_quality(5.8, 0.0) -
                            model.perceived_quality(1.5, 0.0);
  const double shaky_gain = model.perceived_quality(5.8, 7.0) -
                            model.perceived_quality(1.5, 7.0);
  EXPECT_LT(shaky_gain, 0.5 * quiet_gain);
}

TEST(QoeModelTest, InvalidParamsThrow) {
  QoeModelParams params;
  params.mos_min = 5.0;
  params.mos_max = 1.0;
  EXPECT_THROW(QoeModel{params}, std::invalid_argument);
  QoeModelParams negative;
  negative.kappa = -1.0;
  EXPECT_THROW(QoeModel{negative}, std::invalid_argument);
}

}  // namespace
}  // namespace eacs::qoe
