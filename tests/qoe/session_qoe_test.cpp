#include "eacs/qoe/session_qoe.h"

#include <gtest/gtest.h>

namespace eacs::qoe {
namespace {

player::TaskRecord make_task(std::size_t index, double bitrate, double rebuffer = 0.0,
                             double vibration = 0.0) {
  player::TaskRecord task;
  task.segment_index = index;
  task.bitrate_mbps = bitrate;
  task.duration_s = 2.0;
  task.rebuffer_s = rebuffer;
  task.vibration = vibration;
  return task;
}

player::PlaybackResult steady_run(std::size_t segments, double bitrate) {
  player::PlaybackResult result;
  for (std::size_t i = 0; i < segments; ++i) {
    result.tasks.push_back(make_task(i, bitrate));
  }
  result.startup_delay_s = 1.0;
  result.session_end_s = 1.0 + 2.0 * static_cast<double>(segments);
  return result;
}

TEST(SessionQoeTest, EmptyRunScoresFloor) {
  const auto breakdown = session_qoe({}, QoeModel{});
  EXPECT_DOUBLE_EQ(breakdown.mos, 1.0);
}

TEST(SessionQoeTest, SteadyRunMatchesPerTaskQuality) {
  const QoeModel model;
  const auto result = steady_run(60, 3.0);
  const auto breakdown = session_qoe(result, model);
  // Constant quality: recency weighting changes nothing; only the small
  // startup penalty applies.
  EXPECT_NEAR(breakdown.base_mos, model.original_quality(3.0), 1e-9);
  EXPECT_NEAR(breakdown.mos,
              model.original_quality(3.0) - breakdown.startup_penalty, 1e-9);
  EXPECT_DOUBLE_EQ(breakdown.stall_penalty, 0.0);
  EXPECT_DOUBLE_EQ(breakdown.oscillation_penalty, 0.0);
}

TEST(SessionQoeTest, RecencyWeightsTheEndingMore) {
  const QoeModel model;
  // Bad start, good ending vs. good start, bad ending.
  player::PlaybackResult improves;
  player::PlaybackResult degrades;
  for (std::size_t i = 0; i < 60; ++i) {
    improves.tasks.push_back(make_task(i, i < 30 ? 0.375 : 5.8));
    degrades.tasks.push_back(make_task(i, i < 30 ? 5.8 : 0.375));
  }
  const auto up = session_qoe(improves, model);
  const auto down = session_qoe(degrades, model);
  EXPECT_GT(up.mos, down.mos + 0.3);
}

TEST(SessionQoeTest, StallEventsPenalisedBeyondDuration) {
  const QoeModel model;
  auto one_long = steady_run(60, 3.0);
  one_long.tasks[30].rebuffer_s = 4.0;
  one_long.rebuffer_events = 1;
  auto many_short = steady_run(60, 3.0);
  for (std::size_t i = 10; i < 50; i += 10) {
    many_short.tasks[i].rebuffer_s = 1.0;
  }
  many_short.rebuffer_events = 4;
  const auto long_breakdown = session_qoe(one_long, model);
  const auto short_breakdown = session_qoe(many_short, model);
  // Same total stall time; more events cost more at the session level.
  EXPECT_GT(short_breakdown.stall_penalty, long_breakdown.stall_penalty + 0.2);
}

TEST(SessionQoeTest, StartupPenaltyCapped) {
  const QoeModel model;
  auto slow_start = steady_run(60, 3.0);
  slow_start.startup_delay_s = 300.0;
  const auto breakdown = session_qoe(slow_start, model);
  EXPECT_DOUBLE_EQ(breakdown.startup_penalty, SessionQoeParams{}.startup_penalty_cap);
}

TEST(SessionQoeTest, OscillationPenalisedSeparately) {
  const QoeModel model;
  auto oscillating = steady_run(60, 3.0);
  for (std::size_t i = 0; i < oscillating.tasks.size(); ++i) {
    oscillating.tasks[i].bitrate_mbps = (i % 2 == 0) ? 3.0 : 2.3;
  }
  oscillating.switch_count = oscillating.tasks.size() - 1;
  const auto steady = session_qoe(steady_run(60, 3.0), model);
  const auto wobbly = session_qoe(oscillating, model);
  EXPECT_GT(wobbly.oscillation_penalty, 0.25);
  EXPECT_LT(wobbly.mos, steady.mos);
}

TEST(SessionQoeTest, BoundedToMosRange) {
  const QoeModel model;
  auto terrible = steady_run(10, 0.1);
  terrible.startup_delay_s = 100.0;
  terrible.rebuffer_events = 50;
  for (auto& task : terrible.tasks) task.rebuffer_s = 5.0;
  const auto breakdown = session_qoe(terrible, model);
  EXPECT_GE(breakdown.mos, 1.0);
  EXPECT_LE(breakdown.mos, 5.0);
}

}  // namespace
}  // namespace eacs::qoe
