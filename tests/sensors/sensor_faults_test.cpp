// SensorFaultInjector + SensorHealthMonitor: the sensing-side fault layer.
//
// The injector must be a pure function of (streams, spec) — same inputs,
// bit-identical outputs — and a default spec must pass both streams through
// untouched. Each fault family is checked against its documented semantics.

#include "eacs/sensors/sensor_faults.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "eacs/sensors/sensor_health.h"

namespace eacs::sensors {
namespace {

AccelTrace quiet_trace(double duration_s, double rate_hz = 50.0) {
  AccelTrace trace;
  const double dt = 1.0 / rate_hz;
  for (double t = 0.0; t < duration_s; t += dt) {
    trace.push_back({t, 0.1, -0.2, kGravity});
  }
  return trace;
}

std::vector<SignalSample> signal_every(double period_s, double duration_s,
                                       double dbm = -85.0) {
  std::vector<SignalSample> readings;
  for (double t = 0.0; t < duration_s; t += period_s) {
    readings.push_back({t, dbm});
  }
  return readings;
}

TEST(SensorFaultInjectorTest, DefaultSpecIsInactivePassthrough) {
  const auto accel = quiet_trace(5.0);
  const auto signal = signal_every(1.0, 5.0);
  const SensorFaultInjector injector(accel, signal, {});
  EXPECT_FALSE(injector.active());
  ASSERT_EQ(injector.accel().size(), accel.size());
  for (std::size_t i = 0; i < accel.size(); ++i) {
    EXPECT_EQ(injector.accel()[i].t_s, accel[i].t_s);
    EXPECT_EQ(injector.accel()[i].x, accel[i].x);
    EXPECT_EQ(injector.accel()[i].y, accel[i].y);
    EXPECT_EQ(injector.accel()[i].z, accel[i].z);
  }
  ASSERT_EQ(injector.signal().size(), signal.size());
  EXPECT_TRUE(injector.accel_schedule().empty());
  EXPECT_TRUE(injector.signal_schedule().empty());
}

TEST(SensorFaultInjectorTest, DropoutRemovesSamplesInsideTheEpisode) {
  SensorFaultSpec spec;
  spec.accel_episodes = {{SensorFaultType::kDropout, 1.0, 2.0}};
  const auto accel = quiet_trace(5.0);
  const SensorFaultInjector injector(accel, {}, spec);
  EXPECT_TRUE(injector.active());
  for (const auto& sample : injector.accel()) {
    EXPECT_TRUE(sample.t_s < 1.0 || sample.t_s >= 2.0) << sample.t_s;
  }
  std::size_t outside = 0;
  for (const auto& sample : accel) {
    outside += (sample.t_s < 1.0 || sample.t_s >= 2.0) ? 1 : 0;
  }
  EXPECT_EQ(injector.accel().size(), outside);
  EXPECT_LT(injector.accel().size(), accel.size());
  EXPECT_TRUE(injector.accel_in_fault(1.5));
  EXPECT_FALSE(injector.accel_in_fault(0.5));
  SensorFaultType type;
  ASSERT_TRUE(injector.accel_in_fault(1.0, &type));
  EXPECT_EQ(type, SensorFaultType::kDropout);
}

TEST(SensorFaultInjectorTest, StuckAtRepeatsTheLastGoodReading) {
  AccelTrace accel;
  for (double t = 0.0; t < 4.0; t += 0.02) {
    accel.push_back({t, t, 2.0 * t, kGravity + t});
  }
  SensorFaultSpec spec;
  spec.accel_episodes = {{SensorFaultType::kStuckAt, 2.0, 3.0}};
  const SensorFaultInjector injector(accel, {}, spec);
  ASSERT_EQ(injector.accel().size(), accel.size());
  AccelSample last_good{};
  for (std::size_t i = 0; i < accel.size(); ++i) {
    const auto& out = injector.accel()[i];
    EXPECT_EQ(out.t_s, accel[i].t_s);  // timestamps still tick
    if (accel[i].t_s < 2.0) {
      EXPECT_EQ(out.x, accel[i].x);
      last_good = accel[i];
    } else if (accel[i].t_s < 3.0) {
      EXPECT_EQ(out.x, last_good.x) << "t=" << out.t_s;
      EXPECT_EQ(out.y, last_good.y);
      EXPECT_EQ(out.z, last_good.z);
    } else {
      EXPECT_EQ(out.x, accel[i].x);  // recovers after the episode
    }
  }
}

TEST(SensorFaultInjectorTest, StuckAtFromBootFreezesOnTheFirstSample) {
  AccelTrace accel;
  for (double t = 0.0; t < 2.0; t += 0.02) {
    accel.push_back({t, 1.0 + t, 0.0, kGravity});
  }
  SensorFaultSpec spec;
  spec.accel_episodes = {{SensorFaultType::kStuckAt, 0.0, 2.0}};
  const SensorFaultInjector injector(accel, {}, spec);
  ASSERT_EQ(injector.accel().size(), accel.size());
  for (const auto& out : injector.accel()) {
    EXPECT_EQ(out.x, accel.front().x);
    EXPECT_EQ(out.z, accel.front().z);
  }
}

TEST(SensorFaultInjectorTest, SaturationPegsAllAxesAtTheRail) {
  SensorFaultSpec spec;
  spec.accel_episodes = {{SensorFaultType::kSaturation, 0.0, 10.0}};
  const SensorFaultInjector injector(quiet_trace(5.0), {}, spec);
  for (const auto& sample : injector.accel()) {
    EXPECT_EQ(sample.x, spec.saturation_rail);
    EXPECT_EQ(sample.y, spec.saturation_rail);
    EXPECT_EQ(sample.z, spec.saturation_rail);
  }
}

TEST(SensorFaultInjectorTest, NoiseBurstPerturbsOnlyTheEpisode) {
  SensorFaultSpec spec;
  spec.accel_episodes = {{SensorFaultType::kNoiseBurst, 1.0, 2.0}};
  const auto accel = quiet_trace(3.0);
  const SensorFaultInjector injector(accel, {}, spec);
  ASSERT_EQ(injector.accel().size(), accel.size());
  bool any_perturbed = false;
  for (std::size_t i = 0; i < accel.size(); ++i) {
    const auto& out = injector.accel()[i];
    EXPECT_TRUE(std::isfinite(out.x) && std::isfinite(out.y) &&
                std::isfinite(out.z));
    if (accel[i].t_s < 1.0 || accel[i].t_s >= 2.0) {
      EXPECT_EQ(out.x, accel[i].x);
    } else if (out.x != accel[i].x) {
      any_perturbed = true;
    }
  }
  EXPECT_TRUE(any_perturbed);
}

TEST(SensorFaultInjectorTest, NanCorruptionDeliversNonFiniteAxes) {
  SensorFaultSpec spec;
  spec.accel_episodes = {{SensorFaultType::kNanCorruption, 0.0, 5.0}};
  spec.nan_prob = 1.0;
  const auto accel = quiet_trace(5.0);
  const SensorFaultInjector injector(accel, {}, spec);
  ASSERT_EQ(injector.accel().size(), accel.size());
  for (const auto& sample : injector.accel()) {
    EXPECT_TRUE(std::isfinite(sample.t_s));  // the timestamp stays sane
    EXPECT_TRUE(std::isnan(sample.x));
    EXPECT_TRUE(std::isnan(sample.y));
    EXPECT_TRUE(std::isnan(sample.z));
  }
}

TEST(SensorFaultInjectorTest, RateCollapseKeepsOneSampleInN) {
  SensorFaultSpec spec;
  spec.accel_episodes = {{SensorFaultType::kRateCollapse, 0.0, 10.0}};
  spec.rate_collapse_keep = 10;
  const auto accel = quiet_trace(5.0);
  const SensorFaultInjector injector(accel, {}, spec);
  // Every 10th sample of the episode survives (the first one included).
  const std::size_t expected = (accel.size() + 9) / 10;
  EXPECT_EQ(injector.accel().size(), expected);
}

TEST(SensorFaultInjectorTest, SignalDropoutSuppressesReadingsAndAgesTheLast) {
  SensorFaultSpec spec;
  spec.signal_episodes = {{SensorFaultType::kDropout, 10.0, 40.0}};
  const auto signal = signal_every(5.0, 60.0);
  const SensorFaultInjector injector({}, signal, spec);
  for (const auto& reading : injector.signal()) {
    EXPECT_TRUE(reading.t_s < 10.0 || reading.t_s >= 40.0);
  }
  // Readings at 0 and 5 survive; the next delivered one is t=40.
  EXPECT_DOUBLE_EQ(injector.signal_age_s(30.0), 25.0);
  EXPECT_DOUBLE_EQ(injector.signal_at(30.0), -85.0);
  EXPECT_DOUBLE_EQ(injector.signal_age_s(41.0), 1.0);
}

TEST(SensorFaultInjectorTest, SignalAgeIsInfiniteWhenNothingWasDelivered) {
  SensorFaultSpec spec;
  spec.signal_episodes = {{SensorFaultType::kDropout, 0.0, 100.0}};
  const SensorFaultInjector injector({}, signal_every(5.0, 60.0), spec);
  EXPECT_TRUE(injector.signal().empty());
  EXPECT_TRUE(std::isinf(injector.signal_age_s(30.0)));
  EXPECT_DOUBLE_EQ(injector.signal_at(30.0), -90.0);
}

TEST(SensorFaultInjectorTest, RandomSchedulesAreDeterministicInTheSeed) {
  SensorFaultSpec spec;
  spec.accel_episode_rate_per_min = 6.0;
  spec.signal_dropout_rate_per_min = 2.0;
  const auto accel = quiet_trace(120.0);
  const auto signal = signal_every(5.0, 120.0);
  const SensorFaultInjector a(accel, signal, spec);
  const SensorFaultInjector b(accel, signal, spec);
  ASSERT_EQ(a.accel_schedule().size(), b.accel_schedule().size());
  EXPECT_FALSE(a.accel_schedule().empty());
  for (std::size_t i = 0; i < a.accel_schedule().size(); ++i) {
    EXPECT_EQ(a.accel_schedule()[i].start_s, b.accel_schedule()[i].start_s);
    EXPECT_EQ(a.accel_schedule()[i].end_s, b.accel_schedule()[i].end_s);
    EXPECT_EQ(a.accel_schedule()[i].type, b.accel_schedule()[i].type);
  }
  ASSERT_EQ(a.accel().size(), b.accel().size());

  SensorFaultSpec other = spec;
  other.seed ^= 0xDEADBEEFULL;
  const SensorFaultInjector c(accel, signal, other);
  bool differs = c.accel_schedule().size() != a.accel_schedule().size();
  for (std::size_t i = 0; !differs && i < a.accel_schedule().size(); ++i) {
    differs = c.accel_schedule()[i].start_s != a.accel_schedule()[i].start_s;
  }
  EXPECT_TRUE(differs);
}

TEST(SensorFaultInjectorTest, OverlappingEpisodesAreClippedEarlierWins) {
  SensorFaultSpec spec;
  spec.accel_episodes = {{SensorFaultType::kDropout, 0.0, 2.0},
                         {SensorFaultType::kSaturation, 1.0, 3.0}};
  const SensorFaultInjector injector(quiet_trace(4.0), {}, spec);
  ASSERT_EQ(injector.accel_schedule().size(), 2U);
  EXPECT_DOUBLE_EQ(injector.accel_schedule()[0].end_s, 2.0);
  EXPECT_DOUBLE_EQ(injector.accel_schedule()[1].start_s, 2.0);
  SensorFaultType type;
  ASSERT_TRUE(injector.accel_in_fault(1.5, &type));
  EXPECT_EQ(type, SensorFaultType::kDropout);
}

TEST(SensorFaultInjectorTest, MalformedSpecsThrow) {
  const auto accel = quiet_trace(1.0);
  SensorFaultSpec negative_duration;
  negative_duration.accel_episodes = {{SensorFaultType::kDropout, 2.0, 1.0}};
  EXPECT_THROW(SensorFaultInjector(accel, {}, negative_duration),
               std::invalid_argument);
  SensorFaultSpec bad_prob;
  bad_prob.accel_episodes = {{SensorFaultType::kNanCorruption, 0.0, 1.0}};
  bad_prob.nan_prob = 1.5;
  EXPECT_THROW(SensorFaultInjector(accel, {}, bad_prob), std::invalid_argument);
  SensorFaultSpec zero_keep;
  zero_keep.accel_episodes = {{SensorFaultType::kRateCollapse, 0.0, 1.0}};
  zero_keep.rate_collapse_keep = 0;
  EXPECT_THROW(SensorFaultInjector(accel, {}, zero_keep), std::invalid_argument);
}

// -- SensorHealthMonitor --

TEST(SensorHealthMonitorTest, FreshValidStreamsGradeHealthy) {
  SensorHealthMonitor monitor;
  for (double t = 0.0; t < 2.0; t += 0.02) {
    monitor.observe_accel({t, 0.0, 0.0, kGravity});
  }
  monitor.observe_signal(1.9, -80.0);
  EXPECT_EQ(monitor.accel_health(2.0), ContextHealth::kHealthy);
  EXPECT_EQ(monitor.signal_health(2.0), ContextHealth::kHealthy);
  EXPECT_NEAR(monitor.vibration_confidence(2.0), 1.0, 0.05);
  EXPECT_DOUBLE_EQ(monitor.last_signal_dbm(), -80.0);
}

TEST(SensorHealthMonitorTest, NoDataGradesLost) {
  SensorHealthMonitor monitor;
  EXPECT_EQ(monitor.accel_health(0.0), ContextHealth::kLost);
  EXPECT_EQ(monitor.signal_health(0.0), ContextHealth::kLost);
  EXPECT_DOUBLE_EQ(monitor.vibration_confidence(0.0), 0.0);
  EXPECT_TRUE(std::isinf(monitor.accel_age_s(0.0)));
}

TEST(SensorHealthMonitorTest, StaleAccelDegradesThenLoses) {
  SensorHealthMonitor monitor;
  monitor.observe_accel({0.0, 0.0, 0.0, kGravity});
  const auto& config = monitor.config();
  EXPECT_EQ(monitor.accel_health(config.accel_stale_after_s / 2.0),
            ContextHealth::kHealthy);
  EXPECT_EQ(monitor.accel_health(config.accel_stale_after_s + 0.1),
            ContextHealth::kDegraded);
  EXPECT_EQ(monitor.accel_health(config.accel_lost_after_s + 0.1),
            ContextHealth::kLost);
  EXPECT_DOUBLE_EQ(monitor.vibration_confidence(config.accel_lost_after_s + 1.0),
                   0.0);
}

TEST(SensorHealthMonitorTest, FreshGarbageIsAsLostAsNoStream) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  SensorHealthMonitor monitor;
  for (double t = 0.0; t < 2.0; t += 0.02) {
    monitor.observe_accel({t, nan, nan, nan});
  }
  EXPECT_EQ(monitor.accel_health(2.0), ContextHealth::kLost);
  EXPECT_DOUBLE_EQ(monitor.invalid_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(monitor.vibration_confidence(2.0), 0.0);
}

TEST(SensorHealthMonitorTest, PartialGarbageGradesDegraded) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  SensorHealthMonitor monitor;
  std::size_t i = 0;
  for (double t = 0.0; t < 2.0; t += 0.02, ++i) {
    if (i % 2 == 0) {
      monitor.observe_accel({t, nan, 0.0, kGravity});
    } else {
      monitor.observe_accel({t, 0.0, 0.0, kGravity});
    }
  }
  EXPECT_EQ(monitor.accel_health(2.0), ContextHealth::kDegraded);
  EXPECT_NEAR(monitor.invalid_fraction(), 0.5, 0.05);
  EXPECT_GT(monitor.vibration_confidence(2.0), 0.0);
  EXPECT_LT(monitor.vibration_confidence(2.0), 1.0);
}

TEST(SensorHealthMonitorTest, SignalAgesOnItsOwnThresholds) {
  SensorHealthMonitor monitor;
  monitor.observe_signal(0.0, -75.0);
  const auto& config = monitor.config();
  EXPECT_EQ(monitor.signal_health(config.signal_stale_after_s / 2.0),
            ContextHealth::kHealthy);
  EXPECT_EQ(monitor.signal_health(config.signal_stale_after_s + 1.0),
            ContextHealth::kDegraded);
  EXPECT_EQ(monitor.signal_health(config.signal_lost_after_s + 1.0),
            ContextHealth::kLost);
  EXPECT_DOUBLE_EQ(monitor.signal_age_s(5.0), 5.0);
}

TEST(SensorHealthMonitorTest, ResetClears) {
  SensorHealthMonitor monitor;
  monitor.observe_accel({0.0, 0.0, 0.0, kGravity});
  monitor.observe_signal(0.0, -70.0);
  monitor.reset();
  EXPECT_EQ(monitor.accel_samples(), 0U);
  EXPECT_EQ(monitor.signal_readings(), 0U);
  EXPECT_EQ(monitor.accel_health(0.0), ContextHealth::kLost);
  EXPECT_DOUBLE_EQ(monitor.last_signal_dbm(), -90.0);
}

}  // namespace
}  // namespace eacs::sensors
