#include "eacs/sensors/vibration.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "eacs/sensors/accel.h"

namespace eacs::sensors {
namespace {

constexpr double kPi = 3.14159265358979323846;

AccelTrace constant_gravity_trace(double duration_s, double rate_hz = 50.0) {
  AccelTrace trace;
  const double dt = 1.0 / rate_hz;
  for (double t = 0.0; t < duration_s; t += dt) {
    trace.push_back({t, 0.0, 0.0, kGravity});
  }
  return trace;
}

AccelTrace vibrating_trace(double amplitude, double freq_hz, double duration_s,
                           double rate_hz = 50.0) {
  AccelTrace trace;
  const double dt = 1.0 / rate_hz;
  for (double t = 0.0; t < duration_s; t += dt) {
    trace.push_back(
        {t, 0.0, 0.0, kGravity + amplitude * std::sin(2.0 * kPi * freq_hz * t)});
  }
  return trace;
}

TEST(AccelSampleTest, Magnitude) {
  AccelSample sample{0.0, 3.0, 4.0, 0.0};
  EXPECT_DOUBLE_EQ(sample.magnitude(), 5.0);
}

TEST(VibrationEstimatorTest, QuietGravityIsNearZero) {
  const auto trace = constant_gravity_trace(20.0);
  EXPECT_NEAR(vibration_level(trace), 0.0, 1e-6);
}

TEST(VibrationEstimatorTest, SinusoidGivesRmsLevel) {
  // 5 Hz sine of amplitude A on top of gravity: gravity is removed by the
  // high-pass, the AC RMS is A/sqrt(2).
  const double amplitude = 4.0;
  const auto trace = vibrating_trace(amplitude, 5.0, 30.0);
  const double level = vibration_level(trace);
  EXPECT_NEAR(level, amplitude / std::sqrt(2.0), 0.25);
}

TEST(VibrationEstimatorTest, LevelGrowsWithAmplitude) {
  const double small = vibration_level(vibrating_trace(1.0, 5.0, 30.0));
  const double large = vibration_level(vibrating_trace(6.0, 5.0, 30.0));
  EXPECT_GT(large, 4.0 * small);
}

TEST(VibrationEstimatorTest, WindowForgetsOldVibration) {
  // 30 s of heavy vibration followed by 30 s of stillness: the 6 s trailing
  // window must come back near zero.
  AccelTrace trace = vibrating_trace(5.0, 5.0, 30.0);
  const double dt = 1.0 / 50.0;
  for (double t = 30.0; t < 60.0; t += dt) {
    trace.push_back({t, 0.0, 0.0, kGravity});
  }
  EXPECT_LT(vibration_level(trace), 0.3);
}

TEST(VibrationEstimatorTest, StreamingMatchesBatch) {
  const auto trace = vibrating_trace(3.0, 4.0, 25.0);
  VibrationEstimator estimator;
  for (const auto& sample : trace) estimator.update(sample);
  EXPECT_DOUBLE_EQ(estimator.level(), vibration_level(trace));
  EXPECT_EQ(estimator.samples_seen(), trace.size());
}

TEST(VibrationEstimatorTest, ResetClears) {
  VibrationEstimator estimator;
  estimator.update({0.0, 0.0, 0.0, 15.0});
  estimator.reset();
  EXPECT_DOUBLE_EQ(estimator.level(), 0.0);
  EXPECT_EQ(estimator.samples_seen(), 0U);
}

TEST(VibrationEstimatorTest, ConfigWindowSamples) {
  VibrationConfig config;
  config.window_s = 6.0;
  config.sample_rate_hz = 50.0;
  EXPECT_EQ(config.window_samples(), 300U);
  config.window_s = 0.001;
  EXPECT_EQ(config.window_samples(), 1U);
}

TEST(VibrationEstimatorTest, InvalidConfigThrows) {
  VibrationConfig config;
  config.window_s = -1.0;
  EXPECT_THROW(VibrationEstimator{config}, std::invalid_argument);
}

TEST(MeanVibrationTest, StationarySignalMeanNearFinal) {
  const auto trace = vibrating_trace(4.0, 5.0, 60.0);
  const double mean_level = mean_vibration_level(trace);
  const double final_level = vibration_level(trace);
  EXPECT_NEAR(mean_level, final_level, 0.3);
}

TEST(MeanVibrationTest, ShortTraceFallsBack) {
  const auto trace = vibrating_trace(4.0, 5.0, 2.0);  // shorter than the window
  EXPECT_GT(mean_vibration_level(trace), 0.0);
}

TEST(VibrationEstimatorTest, NonFiniteSamplesAreRejected) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  VibrationEstimator estimator;
  const auto trace = vibrating_trace(4.0, 5.0, 10.0);
  for (const auto& sample : trace) {
    estimator.update(sample);
  }
  const double before = estimator.level();
  EXPECT_DOUBLE_EQ(estimator.update({10.0, nan, 0.0, kGravity}), before);
  EXPECT_DOUBLE_EQ(estimator.update({10.02, 0.0, inf, kGravity}), before);
  EXPECT_DOUBLE_EQ(estimator.update({10.04, 0.0, 0.0, -inf}), before);
  EXPECT_DOUBLE_EQ(estimator.level(), before);
  EXPECT_EQ(estimator.rejected_samples(), 3U);
  EXPECT_EQ(estimator.samples_seen(), trace.size() + 3);  // valid + rejected
}

TEST(VibrationEstimatorTest, NanDoesNotPoisonTheWindow) {
  // A single NaN used to poison the trailing RMS window for a full
  // window_samples() updates. With rejection, an estimator that saw NaNs
  // interleaved into the stream must match one that never saw them.
  const auto trace = vibrating_trace(4.0, 5.0, 20.0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  VibrationEstimator with_nans;
  VibrationEstimator clean;
  for (const auto& sample : trace) {
    with_nans.update(sample);
    with_nans.update({sample.t_s, nan, nan, nan});
    clean.update(sample);
  }
  EXPECT_DOUBLE_EQ(with_nans.level(), clean.level());
  EXPECT_TRUE(std::isfinite(with_nans.level()));
  EXPECT_EQ(with_nans.rejected_samples(), trace.size());
}

TEST(VibrationEstimatorTest, LevelAtReturnsPriorBeforeAnyValidSample) {
  VibrationEstimator estimator;
  EXPECT_DOUBLE_EQ(estimator.level_at(0.0), estimator.config().prior_vibration);
  // An all-NaN stream never yields a valid sample: still the prior.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (double t = 0.0; t < 5.0; t += 0.02) {
    estimator.update({t, nan, nan, nan});
  }
  EXPECT_DOUBLE_EQ(estimator.level_at(5.0), estimator.config().prior_vibration);
  EXPECT_TRUE(std::isfinite(estimator.level_at(5.0)));
}

TEST(VibrationEstimatorTest, LevelAtDecaysTowardPriorWhenStreamGoesQuiet) {
  VibrationEstimator estimator;
  for (const auto& sample : constant_gravity_trace(10.0)) {
    estimator.update(sample);
  }
  const double fresh = estimator.level_at(10.0);
  EXPECT_NEAR(fresh, estimator.level(), 1e-12);  // fresh: raw level (near 0)
  // Stale by much more than quiet_after_s + several tau: essentially the prior.
  const double stale = estimator.level_at(10.0 + 100.0);
  EXPECT_NEAR(stale, estimator.config().prior_vibration, 1e-3);
  // In between: strictly between the raw level and the prior.
  const double mid = estimator.level_at(10.0 + 7.0);
  EXPECT_GT(mid, fresh);
  EXPECT_LT(mid, estimator.config().prior_vibration);
}

TEST(VibrationEstimatorTest, HandlesXyVibrationToo) {
  // Vibration on the x axis changes |a| and must register (less efficiently
  // than z because gravity dominates the magnitude direction).
  AccelTrace trace;
  const double dt = 1.0 / 50.0;
  for (double t = 0.0; t < 30.0; t += dt) {
    trace.push_back({t, 6.0 * std::sin(2.0 * kPi * 5.0 * t), 0.0, kGravity});
  }
  EXPECT_GT(vibration_level(trace), 0.5);
}

}  // namespace
}  // namespace eacs::sensors
