#include "eacs/sensors/context_classifier.h"

#include <gtest/gtest.h>

#include <cmath>

#include "eacs/trace/accel_gen.h"

namespace eacs::sensors {
namespace {

constexpr double kPi = 3.14159265358979323846;

AccelTrace synthetic(double amplitude, double freq_hz, double duration_s = 20.0) {
  AccelTrace trace;
  const double dt = 1.0 / 50.0;
  for (double t = 0.0; t < duration_s; t += dt) {
    trace.push_back(
        {t, 0.0, 0.0, kGravity + amplitude * std::sin(2.0 * kPi * freq_hz * t)});
  }
  return trace;
}

TEST(GoertzelTest, DetectsPureTone) {
  std::vector<double> samples;
  for (int i = 0; i < 500; ++i) {
    samples.push_back(std::sin(2.0 * kPi * 5.0 * i / 50.0));
  }
  const double at_tone = goertzel_power(samples, 5.0, 50.0);
  const double off_tone = goertzel_power(samples, 12.0, 50.0);
  EXPECT_GT(at_tone, 50.0 * off_tone);
}

TEST(GoertzelTest, EmptyAndInvalidInputs) {
  EXPECT_DOUBLE_EQ(goertzel_power({}, 5.0, 50.0), 0.0);
  std::vector<double> samples(10, 1.0);
  EXPECT_THROW(goertzel_power(samples, 30.0, 50.0), std::invalid_argument);
  EXPECT_THROW(goertzel_power(samples, -1.0, 50.0), std::invalid_argument);
}

TEST(MotionFeaturesTest, QuietWindowNearZeroRms) {
  const auto trace = synthetic(0.0, 1.0);
  const auto features = compute_motion_features(trace);
  EXPECT_LT(features.rms, 0.05);
}

TEST(MotionFeaturesTest, DominantFrequencyFound) {
  const auto trace = synthetic(2.0, 5.0);
  const auto features = compute_motion_features(trace);
  EXPECT_NEAR(features.dominant_hz, 5.0, 0.3);
  EXPECT_GT(features.rms, 1.0);
}

TEST(MotionFeaturesTest, EmptyWindow) {
  const auto features = compute_motion_features({});
  EXPECT_DOUBLE_EQ(features.rms, 0.0);
  EXPECT_DOUBLE_EQ(features.dominant_hz, 0.0);
}

TEST(ClassifierTest, StaticWindow) {
  trace::AccelGenerator generator(trace::AccelModel::quiet_room(), 3);
  const auto trace = generator.generate(20.0);
  EXPECT_EQ(classify_window(trace), Context::kStatic);
}

TEST(ClassifierTest, WalkingWindow) {
  trace::AccelGenerator generator(trace::AccelModel::walking(), 5);
  const auto trace = generator.generate(20.0);
  EXPECT_EQ(classify_window(trace), Context::kWalking);
}

TEST(ClassifierTest, VehicleWindow) {
  trace::AccelGenerator generator(trace::AccelModel::moving_vehicle(), 7);
  const auto trace = generator.generate_calibrated(30.0, 6.0);
  EXPECT_EQ(classify_window(trace), Context::kVehicle);
}

TEST(ClassifierTest, VehicleRobustAcrossSeeds) {
  for (std::uint64_t seed = 11; seed < 16; ++seed) {
    trace::AccelGenerator generator(trace::AccelModel::moving_vehicle(), seed);
    const auto trace = generator.generate_calibrated(30.0, 5.5);
    EXPECT_EQ(classify_window(trace), Context::kVehicle) << "seed " << seed;
  }
}

TEST(ClassifierTest, WalkingRobustAcrossSeeds) {
  for (std::uint64_t seed = 21; seed < 26; ++seed) {
    trace::AccelGenerator generator(trace::AccelModel::walking(), seed);
    const auto trace = generator.generate(20.0);
    EXPECT_EQ(classify_window(trace), Context::kWalking) << "seed " << seed;
  }
}

// Table V anchors: the five evaluation sessions' average vibration levels
// (6.83, 2.46, 6.61, 6.41, 5.23 m/s^2). The on_vehicle threshold in the
// evaluation pipeline is 4.0 m/s^2, so sessions 1/3/4/5 must classify as
// vehicle and session 2 (the smooth ride) must not.
TEST(ClassifierTest, TableVVehicleSessionsClassifyAsVehicle) {
  const double vehicle_vibrations[] = {6.83, 6.61, 6.41, 5.23};
  for (const double vibration : vehicle_vibrations) {
    trace::AccelGenerator generator(trace::AccelModel::moving_vehicle(), 31);
    const auto trace = generator.generate_calibrated(30.0, vibration);
    EXPECT_EQ(classify_window(trace), Context::kVehicle)
        << "vibration " << vibration;
  }
}

TEST(ClassifierTest, TableVSmoothSessionIsNotVehicle) {
  // Session 2 averages 2.46 m/s^2 — below the 4.0 on_vehicle threshold. At
  // walking-level energy with a walking spectrum it must classify as walking,
  // never vehicle.
  trace::AccelGenerator generator(trace::AccelModel::walking(), 37);
  const auto trace = generator.generate_calibrated(30.0, 2.46);
  EXPECT_NE(classify_window(trace), Context::kVehicle);
}

TEST(ClassifierTest, CalibratedVibrationNearTarget) {
  // generate_calibrated must actually hit the requested RMS, otherwise the
  // Table V anchors above test the wrong stimulus.
  for (const double target : {2.46, 5.23, 6.83}) {
    trace::AccelGenerator generator(trace::AccelModel::moving_vehicle(), 41);
    const auto trace = generator.generate_calibrated(30.0, target);
    const auto features = compute_motion_features(trace);
    EXPECT_NEAR(features.rms, target, 0.15 * target) << "target " << target;
  }
}

TEST(ClassifierTest, ToStringLabels) {
  EXPECT_STREQ(to_string(Context::kStatic), "static");
  EXPECT_STREQ(to_string(Context::kWalking), "walking");
  EXPECT_STREQ(to_string(Context::kVehicle), "vehicle");
}

}  // namespace
}  // namespace eacs::sensors
