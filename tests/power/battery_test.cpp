#include "eacs/power/battery.h"

#include <gtest/gtest.h>

namespace eacs::power {
namespace {

TEST(BatteryTest, InvalidConfigThrows) {
  BatteryConfig bad;
  bad.capacity_mah = 0.0;
  EXPECT_THROW(Battery{bad}, std::invalid_argument);
  BatteryConfig bad_eff;
  bad_eff.conversion_efficiency = 1.5;
  EXPECT_THROW(Battery{bad_eff}, std::invalid_argument);
}

TEST(BatteryTest, UsableEnergyMatchesPack) {
  BatteryConfig ideal;
  ideal.capacity_mah = 1000.0;
  ideal.nominal_voltage = 3.6;
  ideal.usable_fraction = 1.0;
  ideal.conversion_efficiency = 1.0;
  // 1000 mAh * 3.6 V = 3.6 Wh = 12960 J.
  EXPECT_NEAR(Battery{ideal}.usable_energy_j(), 12960.0, 1e-9);
}

TEST(BatteryTest, Nexus5xDefaultsPlausible) {
  const Battery battery;
  // ~2700 mAh * 3.85 V ~ 37.4 kJ, derated by usable*efficiency ~ 0.855.
  EXPECT_NEAR(battery.usable_energy_j(), 31988.0, 100.0);
  // ~2 W video playback -> roughly 4.4 hours.
  EXPECT_NEAR(battery.hours_at(2.0), 4.44, 0.1);
}

TEST(BatteryTest, DrainFraction) {
  const Battery battery;
  EXPECT_DOUBLE_EQ(battery.drain_fraction(0.0), 0.0);
  EXPECT_DOUBLE_EQ(battery.drain_fraction(-5.0), 0.0);
  EXPECT_NEAR(battery.drain_fraction(battery.usable_energy_j()), 1.0, 1e-12);
  EXPECT_GT(battery.drain_fraction(2.0 * battery.usable_energy_j()), 1.9);
}

TEST(BatteryTest, VideoMinutesScalesInverselyWithPower) {
  const Battery battery;
  // Session A: 600 J over 300 s (2 W); session B: 900 J over 300 s (3 W).
  const double minutes_a = battery.video_minutes(600.0, 300.0);
  const double minutes_b = battery.video_minutes(900.0, 300.0);
  EXPECT_NEAR(minutes_a / minutes_b, 1.5, 1e-9);
  EXPECT_THROW(battery.video_minutes(600.0, 0.0), std::invalid_argument);
  EXPECT_DOUBLE_EQ(battery.video_minutes(0.0, 300.0), 0.0);
}

TEST(BatteryTest, PaperScaleSanity) {
  // Trace 3 (449 s): Youtube ~1363 J, Ours ~977 J. On a Nexus 5X pack that
  // is the difference between ~2.9 and ~4.1 hours of continuous streaming.
  const Battery battery;
  const double youtube_minutes = battery.video_minutes(1363.0, 449.0);
  const double ours_minutes = battery.video_minutes(977.0, 449.0);
  EXPECT_NEAR(youtube_minutes / 60.0, 2.9, 0.3);
  EXPECT_NEAR(ours_minutes / 60.0, 4.1, 0.4);
  EXPECT_GT(ours_minutes - youtube_minutes, 60.0);  // over an hour more video
}

}  // namespace
}  // namespace eacs::power
