#include "eacs/power/rrc.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eacs::power {
namespace {

TEST(RrcTest, SingleTailEnergyFormula) {
  RrcConfig config;
  RrcSimulator rrc(config);
  const double expected = config.connected_tail_w * config.inactivity_s +
                          config.short_drx_w * config.short_drx_s +
                          config.long_drx_w * config.long_drx_s;
  EXPECT_DOUBLE_EQ(rrc.single_tail_energy_j(), expected);
}

TEST(RrcTest, IsolatedBurstPaysPromotionAndFullTail) {
  RrcConfig config;
  RrcSimulator rrc(config);
  // One 2 s burst, session long enough for the full tail.
  const auto breakdown = rrc.analyze({{10.0, 12.0}}, 60.0);
  EXPECT_EQ(breakdown.promotions, 1U);
  EXPECT_DOUBLE_EQ(breakdown.promotion_energy_j, config.promotion_energy_j);
  EXPECT_DOUBLE_EQ(breakdown.active_time_s, 2.0);
  EXPECT_NEAR(breakdown.tail_energy_j, rrc.single_tail_energy_j(), 1e-9);
  // Idle: before the burst (10 s) and after the tail.
  const double tail_span = config.inactivity_s + config.short_drx_s + config.long_drx_s;
  EXPECT_NEAR(breakdown.idle_time_s, 10.0 + (60.0 - 12.0 - tail_span), 1e-9);
}

TEST(RrcTest, CloseBurstsShareOneTail) {
  RrcConfig config;
  RrcSimulator rrc(config);
  // Two bursts 1 s apart: the gap is shorter than the tail, so no second
  // promotion and only the gap's worth of tail is burnt between them.
  const auto breakdown = rrc.analyze({{0.0, 2.0}, {3.0, 5.0}}, 60.0);
  EXPECT_EQ(breakdown.promotions, 1U);
  const double tail_span = config.inactivity_s + config.short_drx_s + config.long_drx_s;
  // Tail time: 1 s between bursts + full tail after the second burst.
  EXPECT_NEAR(breakdown.tail_time_s, 1.0 + tail_span, 1e-9);
}

TEST(RrcTest, FarBurstsPayTwoPromotions) {
  RrcConfig config;
  RrcSimulator rrc(config);
  const double tail_span = config.inactivity_s + config.short_drx_s + config.long_drx_s;
  const auto breakdown =
      rrc.analyze({{0.0, 1.0}, {1.0 + tail_span + 5.0, 2.0 + tail_span + 5.0}}, 60.0);
  EXPECT_EQ(breakdown.promotions, 2U);
  EXPECT_NEAR(breakdown.tail_energy_j, 2.0 * rrc.single_tail_energy_j(), 1e-9);
}

TEST(RrcTest, OverlappingBurstsMerged) {
  RrcSimulator rrc{RrcConfig{}};
  const auto breakdown = rrc.analyze({{0.0, 3.0}, {2.0, 5.0}}, 60.0);
  EXPECT_EQ(breakdown.promotions, 1U);
  EXPECT_DOUBLE_EQ(breakdown.active_time_s, 5.0);
}

TEST(RrcTest, UnsortedInputHandled) {
  RrcSimulator rrc{RrcConfig{}};
  const auto sorted = rrc.analyze({{0.0, 1.0}, {30.0, 31.0}}, 60.0);
  const auto shuffled = rrc.analyze({{30.0, 31.0}, {0.0, 1.0}}, 60.0);
  EXPECT_DOUBLE_EQ(sorted.total_energy_j(), shuffled.total_energy_j());
}

TEST(RrcTest, GapShorterThanInactivityStaysConnected) {
  RrcConfig config;
  RrcSimulator rrc(config);
  // 0.1 s gap < 0.2 s inactivity: the whole gap burns CONNECTED-tail power.
  const auto breakdown = rrc.analyze({{0.0, 1.0}, {1.1, 2.0}}, 30.0);
  EXPECT_EQ(breakdown.promotions, 1U);
  // Gap tail portion: 0.1 s at connected_tail_w.
  const double gap_energy = config.connected_tail_w * 0.1;
  EXPECT_NEAR(breakdown.tail_energy_j,
              gap_energy + rrc.single_tail_energy_j(), 1e-9);
}

TEST(RrcTest, EnergyMonotoneInBurstSpreading) {
  // The same 10 s of radio activity costs more energy when split into
  // spread-out bursts (more tails) than as one block.
  RrcSimulator rrc{RrcConfig{}};
  const auto block = rrc.analyze({{0.0, 10.0}}, 300.0);
  std::vector<TransferBurst> spread;
  for (int i = 0; i < 10; ++i) {
    const double start = i * 25.0;
    spread.push_back({start, start + 1.0});
  }
  const auto split = rrc.analyze(spread, 300.0);
  EXPECT_GT(split.total_energy_j(), block.total_energy_j() + 10.0);
  EXPECT_EQ(split.promotions, 10U);
}

TEST(RrcTest, NoBurstsIsAllIdle) {
  RrcConfig config;
  RrcSimulator rrc(config);
  const auto breakdown = rrc.analyze({}, 100.0);
  EXPECT_DOUBLE_EQ(breakdown.idle_time_s, 100.0);
  EXPECT_NEAR(breakdown.total_energy_j(), config.idle_w * 100.0, 1e-9);
  EXPECT_EQ(breakdown.promotions, 0U);
}

TEST(RrcTest, InvalidInputsThrow) {
  RrcSimulator rrc{RrcConfig{}};
  EXPECT_THROW(rrc.analyze({{5.0, 3.0}}, 60.0), std::invalid_argument);
  EXPECT_THROW(rrc.analyze({{-1.0, 3.0}}, 60.0), std::invalid_argument);
  EXPECT_THROW(rrc.analyze({{0.0, 10.0}}, 5.0), std::invalid_argument);
  RrcConfig bad;
  bad.long_drx_s = -1.0;
  EXPECT_THROW(RrcSimulator{bad}, std::invalid_argument);
}

TEST(RrcTest, BreakdownTimesCoverSession) {
  RrcSimulator rrc{RrcConfig{}};
  const auto breakdown = rrc.analyze({{5.0, 8.0}, {20.0, 22.0}}, 120.0);
  EXPECT_NEAR(breakdown.active_time_s + breakdown.tail_time_s + breakdown.idle_time_s,
              120.0, 1e-9);
}

}  // namespace
}  // namespace eacs::power
