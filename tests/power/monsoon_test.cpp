#include "eacs/power/monsoon.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "eacs/power/validation.h"

namespace eacs::power {
namespace {

MonsoonConfig fast_channel() {
  MonsoonConfig config;
  config.sample_rate_hz = 500.0;  // keep unit tests quick
  return config;
}

TEST(MonsoonSimulatorTest, IntegratesConstantPower) {
  MonsoonConfig config = fast_channel();
  config.noise_sd_w = 0.0;
  config.ripple_w = 0.0;
  config.drift_w = 0.0;
  MonsoonSimulator monsoon(config, PowerModel{});
  // 10 s of pure playback at 3 Mbps.
  std::vector<ActivityInterval> timeline = {
      {0.0, 10.0, true, 3.0, false, -90.0, 0.0}};
  const double expected = PowerModel{}.playback_power(3.0) * 10.0;
  EXPECT_NEAR(monsoon.measure_energy(timeline), expected, expected * 0.01);
}

TEST(MonsoonSimulatorTest, SampleAndIntegrateAgree) {
  MonsoonConfig config = fast_channel();
  config.seed = 5;
  MonsoonSimulator a(config, PowerModel{});
  MonsoonSimulator b(config, PowerModel{});
  std::vector<ActivityInterval> timeline = {
      {0.0, 5.0, true, 1.5, true, -95.0, 10.0}};
  const auto samples = a.sample(timeline);
  const double integrated = MonsoonSimulator::integrate_energy(samples);
  const double streamed = b.measure_energy(timeline);
  EXPECT_NEAR(integrated, streamed, streamed * 0.02);
}

TEST(MonsoonSimulatorTest, DownloadIntervalsCostMore) {
  MonsoonConfig config = fast_channel();
  MonsoonSimulator monsoon(config, PowerModel{});
  std::vector<ActivityInterval> idle = {{0.0, 20.0, true, 3.0, false, -90.0, 0.0}};
  std::vector<ActivityInterval> busy = {{0.0, 20.0, true, 3.0, true, -90.0, 20.0}};
  MonsoonSimulator monsoon2(config, PowerModel{});
  EXPECT_GT(monsoon2.measure_energy(busy), monsoon.measure_energy(idle) + 10.0);
}

TEST(MonsoonSimulatorTest, PauseIntervalUsesPausePower) {
  MonsoonConfig config = fast_channel();
  config.noise_sd_w = 0.0;
  config.ripple_w = 0.0;
  config.drift_w = 0.0;
  MonsoonSimulator monsoon(config, PowerModel{});
  std::vector<ActivityInterval> stalled = {{0.0, 4.0, false, 0.0, false, -90.0, 0.0}};
  EXPECT_NEAR(monsoon.measure_energy(stalled), PowerModel{}.pause_power() * 4.0, 0.1);
}

TEST(MonsoonSimulatorTest, EmptyIntervalThrows) {
  MonsoonSimulator monsoon(fast_channel(), PowerModel{});
  std::vector<ActivityInterval> bad = {{5.0, 5.0, true, 1.0, false, -90.0, 0.0}};
  EXPECT_THROW(monsoon.measure_energy(bad), std::invalid_argument);
}

TEST(MonsoonSimulatorTest, BadSampleRateThrows) {
  MonsoonConfig config;
  config.sample_rate_hz = 0.0;
  EXPECT_THROW(MonsoonSimulator(config, PowerModel{}), std::invalid_argument);
}

TEST(ValidationTest, TableVIErrorsUnderThreePercent) {
  ValidationConfig config;
  config.monsoon.sample_rate_hz = 1000.0;  // faster than 5 kHz, same physics
  const auto rows =
      validate_power_model(PowerModel{}, media::BitrateLadder::table2(), config);
  ASSERT_EQ(rows.size(), 6U);
  for (const auto& row : rows) {
    EXPECT_LT(row.error_ratio, 0.03) << "bitrate " << row.bitrate_mbps;
    EXPECT_GT(row.measured_j, 500.0);
    EXPECT_LT(row.measured_j, 800.0);
  }
  EXPECT_LT(mean_error_ratio(rows), 0.02);
}

TEST(ValidationTest, MeasuredEnergyOrderedByBitrate) {
  ValidationConfig config;
  config.monsoon.sample_rate_hz = 500.0;
  const auto rows =
      validate_power_model(PowerModel{}, media::BitrateLadder::table2(), config);
  for (std::size_t i = 1; i < rows.size(); ++i) {
    EXPECT_GT(rows[i].calculated_j, rows[i - 1].calculated_j);
  }
}

TEST(ValidationTest, BadConfigThrows) {
  ValidationConfig config;
  config.video_duration_s = 0.0;
  EXPECT_THROW(validate_power_model(PowerModel{}, media::BitrateLadder::table2(), config),
               std::invalid_argument);
}

TEST(ValidationTest, MeanErrorRatioEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean_error_ratio({}), 0.0);
}

}  // namespace
}  // namespace eacs::power
