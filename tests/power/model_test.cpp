#include "eacs/power/model.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eacs::power {
namespace {

TEST(PowerModelTest, Fig1aEndpointsReproduced) {
  // Fig. 1(a): downloading 100 MB costs ~49 J at -90 dBm and ~193 J at
  // -115 dBm.
  const PowerModel model;
  EXPECT_NEAR(model.download_energy(100.0, -90.0), 49.0, 1.0);
  EXPECT_NEAR(model.download_energy(100.0, -115.0), 193.0, 6.0);
}

TEST(PowerModelTest, EnergyPerMbMonotoneInWeakness) {
  const PowerModel model;
  double prev = 0.0;
  for (double s : {-90.0, -95.0, -100.0, -105.0, -110.0, -115.0}) {
    const double e = model.energy_per_mb(s);
    EXPECT_GT(e, prev);
    prev = e;
  }
}

TEST(PowerModelTest, EnergyPerMbClamped) {
  const PowerModel model;
  EXPECT_DOUBLE_EQ(model.energy_per_mb(-40.0), model.params().e_min_j_per_mb);
  EXPECT_DOUBLE_EQ(model.energy_per_mb(-160.0), model.params().e_max_j_per_mb);
}

TEST(PowerModelTest, DownloadEnergyLinearInSize) {
  const PowerModel model;
  const double one = model.download_energy(1.0, -100.0);
  EXPECT_NEAR(model.download_energy(10.0, -100.0), 10.0 * one, 1e-9);
  EXPECT_DOUBLE_EQ(model.download_energy(0.0, -100.0), 0.0);
  EXPECT_DOUBLE_EQ(model.download_energy(-5.0, -100.0), 0.0);
}

TEST(PowerModelTest, DownloadPowerConsistentWithPerByteEnergy) {
  // e(s) [J/MB] * rate [MB/s] must equal power [W]; moving X MB at that rate
  // then costs the same energy either way.
  const PowerModel model;
  const double s = -95.0;
  const double throughput = 16.0;  // Mbps -> 2 MB/s
  const double watts = model.download_power(s, throughput);
  const double seconds = 50.0;
  const double mb_moved = throughput / 8.0 * seconds;
  EXPECT_NEAR(watts * seconds, model.download_energy(mb_moved, s), 1e-9);
  EXPECT_DOUBLE_EQ(model.download_power(s, 0.0), 0.0);
}

TEST(PowerModelTest, PlaybackPowerGrowsWithBitrate) {
  const PowerModel model;
  EXPECT_GT(model.playback_power(5.8), model.playback_power(0.1));
  // But the screen/base dominates: the spread over the ladder is small.
  EXPECT_LT(model.playback_power(5.8) - model.playback_power(0.1), 0.1);
  EXPECT_DOUBLE_EQ(model.playback_power(-1.0), model.playback_power(0.0));
}

TEST(PowerModelTest, TaskEnergyComposition) {
  const PowerModel model;
  TaskEnergyInput input;
  input.size_mb = 2.0;
  input.bitrate_mbps = 3.0;
  input.signal_dbm = -90.0;
  input.play_s = 2.0;
  input.rebuffer_s = 0.0;
  const double expected =
      model.download_energy(2.0, -90.0) + model.playback_power(3.0) * 2.0;
  EXPECT_DOUBLE_EQ(model.task_energy(input), expected);
}

TEST(PowerModelTest, RebufferingAddsPauseEnergy) {
  const PowerModel model;
  TaskEnergyInput stalled;
  stalled.size_mb = 2.0;
  stalled.bitrate_mbps = 3.0;
  stalled.signal_dbm = -90.0;
  stalled.play_s = 2.0;
  stalled.rebuffer_s = 1.5;
  TaskEnergyInput clean = stalled;
  clean.rebuffer_s = 0.0;
  EXPECT_NEAR(model.task_energy(stalled) - model.task_energy(clean),
              model.pause_power() * 1.5, 1e-9);
}

TEST(PowerModelTest, TailEnergyExtension) {
  PowerModelParams params;
  params.tail_energy_j = 0.8;
  const PowerModel model(params);
  TaskEnergyInput input;
  input.size_mb = 1.0;
  input.signal_dbm = -90.0;
  input.play_s = 2.0;
  input.download_bursts = 3;
  PowerModelParams no_tail = params;
  no_tail.tail_energy_j = 0.0;
  EXPECT_NEAR(model.task_energy(input) - PowerModel(no_tail).task_energy(input),
              3 * 0.8, 1e-9);
}

TEST(PowerModelTest, WholeSessionEnergyInTableVIRange) {
  // A 300 s clip at -90 dBm lands in Table VI's 597..708 J window and the
  // spread across the ladder is ~110 J.
  const PowerModel model;
  const auto energy_for = [&](double bitrate) {
    TaskEnergyInput input;
    input.size_mb = bitrate * 300.0 / 8.0;
    input.bitrate_mbps = bitrate;
    input.signal_dbm = -90.0;
    input.play_s = 300.0;
    return model.task_energy(input);
  };
  const double lowest = energy_for(0.1);
  const double highest = energy_for(5.8);
  EXPECT_NEAR(lowest, 597.0, 25.0);
  EXPECT_NEAR(highest, 708.0, 25.0);
  EXPECT_GT(highest, lowest + 80.0);
}

TEST(PowerModelTest, InvalidParamsThrow) {
  PowerModelParams params;
  params.e_ref_j_per_mb = 0.0;
  EXPECT_THROW(PowerModel{params}, std::invalid_argument);
  PowerModelParams negative_tail;
  negative_tail.tail_energy_j = -1.0;
  EXPECT_THROW(PowerModel{negative_tail}, std::invalid_argument);
}

}  // namespace
}  // namespace eacs::power
