// Multi-source CDN delivery unit tests: the certified no-op contract of the
// default spec, each server fault family, per-source determinism /
// decorrelation, the circuit-breaker state machine and the source selector.

#include "eacs/net/segment_source.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace eacs::net {
namespace {

trace::TimeSeries constant_rate(double mbps, double duration = 200.0) {
  trace::TimeSeries series;
  series.append(0.0, mbps);
  series.append(duration, mbps);
  return series;
}

TEST(CdnFaultSpecTest, DefaultSpecInjectsNothing) {
  const CdnFaultSpec spec;
  EXPECT_FALSE(spec.enabled());
  CdnFaultSpec outage;
  outage.outage_rate_per_min = 0.5;
  EXPECT_TRUE(outage.enabled());
  CdnFaultSpec scripted;
  scripted.outages = {{1.0, 2.0}};
  EXPECT_TRUE(scripted.enabled());
  CdnFaultSpec slow;
  slow.slow_start_prob = 0.1;
  EXPECT_TRUE(slow.enabled());
}

TEST(SegmentSourceTest, TrivialSourceIsACertifiedNoOp) {
  const auto trace = constant_rate(8.0);
  const SegmentSource source(trace, CdnSourceConfig{});
  EXPECT_TRUE(source.trivial());
  EXPECT_TRUE(source.outage_schedule().empty());
  EXPECT_TRUE(source.error_episodes().empty());

  // The effective trace is the session trace itself, sample for sample.
  const auto& effective = source.downloader().trace();
  ASSERT_EQ(effective.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(effective.samples()[i].t_s, trace.samples()[i].t_s);
    EXPECT_EQ(effective.samples()[i].value, trace.samples()[i].value);
  }

  // Every attempt is a clean transfer bit-identical to the plain downloader.
  const SegmentDownloader plain(trace);
  for (std::size_t segment = 0; segment < 5; ++segment) {
    const auto outcome = source.attempt(segment, 0, 1.5, 16.0);
    const auto reference = plain.download(1.5, 16.0);
    EXPECT_EQ(outcome.kind, CdnAttemptClass::kOk);
    EXPECT_FALSE(outcome.failed);
    EXPECT_EQ(outcome.result.end_s, reference.end_s);
    EXPECT_EQ(outcome.result.mean_throughput_mbps,
              reference.mean_throughput_mbps);
  }
  EXPECT_EQ(source.rescue(2.0, 8.0).end_s, plain.download(2.0, 8.0).end_s);
}

TEST(SegmentSourceTest, CapacityScaleAndRttShapeAttempts) {
  const auto trace = constant_rate(8.0);
  CdnSourceConfig config;
  config.throughput_scale = 0.5;
  config.base_rtt_s = 0.1;
  const SegmentSource source(trace, config);
  EXPECT_FALSE(source.trivial());

  // 16 megabits at 4 Mbps effective = 4 s, plus one RTT.
  const auto outcome = source.attempt(0, 0, 0.0, 16.0);
  EXPECT_EQ(outcome.kind, CdnAttemptClass::kOk);
  EXPECT_NEAR(outcome.result.end_s, 4.1, 1e-9);
  EXPECT_NEAR(source.megabits_over(0.0, 2.0), 8.0, 1e-9);
}

TEST(SegmentSourceTest, ScriptedOutageZeroesTheEffectiveTrace) {
  const auto trace = constant_rate(8.0);
  CdnSourceConfig config;
  config.faults.outages = {{10.0, 20.0}};
  const SegmentSource source(trace, config);

  EXPECT_FALSE(source.in_outage(9.999));
  EXPECT_TRUE(source.in_outage(10.0));
  EXPECT_TRUE(source.in_outage(19.999));
  EXPECT_FALSE(source.in_outage(20.0));
  EXPECT_NEAR(source.megabits_over(10.0, 20.0), 0.0, 1e-9);

  // An attempt started inside the window only completes after it ends.
  const auto outcome = source.attempt(0, 0, 12.0, 8.0);
  EXPECT_EQ(outcome.kind, CdnAttemptClass::kOk);
  EXPECT_GT(outcome.result.end_s, 20.0);
}

TEST(SegmentSourceTest, HttpErrorDiesAfterOneRttWithNoPayload) {
  const auto trace = constant_rate(8.0);
  CdnSourceConfig config;
  config.faults.error_prob = 1.0;
  const SegmentSource source(trace, config);

  const auto outcome = source.attempt(3, 1, 5.0, 16.0);
  EXPECT_EQ(outcome.kind, CdnAttemptClass::kHttpError);
  EXPECT_TRUE(outcome.failed);
  EXPECT_DOUBLE_EQ(outcome.fail_fraction, 0.0);
  EXPECT_GT(outcome.fail_at_s, 5.0);
  EXPECT_LT(outcome.fail_at_s, 5.2);  // one (floored) RTT, not a transfer
}

TEST(SegmentSourceTest, ErrorEpisodesSpikeTheErrorProbability) {
  const auto trace = constant_rate(8.0, 600.0);
  CdnSourceConfig config;
  config.faults.error_prob = 0.05;
  config.faults.error_rate_per_min = 3.0;
  config.faults.error_episode_mean_s = 15.0;
  config.faults.seed = 77;
  const SegmentSource source(trace, config);

  ASSERT_FALSE(source.error_episodes().empty());
  const auto& episode = source.error_episodes().front();
  EXPECT_DOUBLE_EQ(source.error_probability(episode.start_s),
                   config.faults.episode_error_prob);
  if (episode.start_s > 0.5) {
    EXPECT_DOUBLE_EQ(source.error_probability(episode.start_s - 0.5), 0.05);
  }
  // The probability is clamped below certainty so retries can escape.
  CdnSourceConfig all_errors;
  all_errors.faults.error_prob = 1.0;
  const SegmentSource clamped(trace, all_errors);
  EXPECT_LE(clamped.error_probability(0.0), 0.95);
}

TEST(SegmentSourceTest, TruncatedPayloadFailsPartWay) {
  const auto trace = constant_rate(8.0);
  CdnSourceConfig config;
  config.faults.truncate_prob = 1.0;
  const SegmentSource source(trace, config);

  const auto outcome = source.attempt(0, 0, 0.0, 16.0);
  EXPECT_EQ(outcome.kind, CdnAttemptClass::kTruncated);
  EXPECT_TRUE(outcome.failed);
  EXPECT_GT(outcome.fail_fraction, 0.0);
  EXPECT_LT(outcome.fail_fraction, 1.0);
  EXPECT_GT(outcome.fail_at_s, 0.0);
  EXPECT_LE(outcome.fail_at_s, outcome.result.end_s);
}

TEST(SegmentSourceTest, CorruptedPayloadWastesEveryByte) {
  const auto trace = constant_rate(8.0);
  CdnSourceConfig config;
  config.faults.corrupt_prob = 1.0;
  const SegmentSource source(trace, config);

  const auto outcome = source.attempt(0, 0, 0.0, 16.0);
  EXPECT_EQ(outcome.kind, CdnAttemptClass::kCorrupted);
  EXPECT_TRUE(outcome.failed);
  EXPECT_DOUBLE_EQ(outcome.fail_fraction, 1.0);
  // The checksum can only fail once the full payload has landed.
  EXPECT_DOUBLE_EQ(outcome.fail_at_s, outcome.result.end_s);
  EXPECT_NEAR(outcome.result.end_s, 2.0, 1e-9);  // 16 megabits at 8 Mbps
}

TEST(SegmentSourceTest, SlowStartStretchesTheTransfer) {
  const auto trace = constant_rate(8.0);
  CdnSourceConfig config;
  config.faults.slow_start_prob = 1.0;
  config.faults.slow_scale = 0.25;
  const SegmentSource source(trace, config);

  const auto outcome = source.attempt(0, 0, 0.0, 16.0);
  EXPECT_EQ(outcome.kind, CdnAttemptClass::kSlow);
  EXPECT_FALSE(outcome.failed);
  // 2 s clean transfer crawling at a quarter rate: ~8 s.
  EXPECT_NEAR(outcome.result.end_s, 8.0, 1e-6);
}

TEST(SegmentSourceTest, DrawsAreDeterministicAndDecorrelatedBySourceId) {
  const auto trace = constant_rate(8.0, 600.0);
  CdnSourceConfig config;
  config.faults.error_prob = 0.5;
  config.faults.seed = 1234;

  const SegmentSource a(trace, config);
  const SegmentSource b(trace, config);
  CdnSourceConfig other = config;
  other.id = 1;
  const SegmentSource c(trace, other);

  bool id_changes_draws = false;
  for (std::size_t segment = 0; segment < 64; ++segment) {
    const auto x = a.attempt(segment, 0, 1.0, 8.0);
    const auto y = b.attempt(segment, 0, 1.0, 8.0);
    const auto z = c.attempt(segment, 0, 1.0, 8.0);
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.failed, y.failed);
    EXPECT_EQ(x.result.end_s, y.result.end_s);
    EXPECT_EQ(x.fail_at_s, y.fail_at_s);
    if (x.kind != z.kind) id_changes_draws = true;
  }
  EXPECT_TRUE(id_changes_draws);
}

TEST(SegmentSourceTest, RejectsInvalidConfiguration) {
  const auto trace = constant_rate(8.0);
  CdnSourceConfig bad_prob;
  bad_prob.faults.error_prob = 1.5;
  EXPECT_THROW(SegmentSource(trace, bad_prob), std::invalid_argument);
  CdnSourceConfig bad_scale;
  bad_scale.throughput_scale = 0.0;
  EXPECT_THROW(SegmentSource(trace, bad_scale), std::invalid_argument);
  CdnSourceConfig bad_rtt;
  bad_rtt.base_rtt_s = -0.1;
  EXPECT_THROW(SegmentSource(trace, bad_rtt), std::invalid_argument);
  CdnSourceConfig bad_slow;
  bad_slow.faults.slow_start_prob = 0.5;
  bad_slow.faults.slow_scale = 0.0;
  EXPECT_THROW(SegmentSource(trace, bad_slow), std::invalid_argument);
}

TEST(CircuitBreakerTest, OpensOnFailureRateAndRecoversThroughHalfOpen) {
  CircuitBreaker breaker;  // window 8, min 4, threshold 0.5, cooldown 8 s
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.allow(0.0));

  // Below min_samples nothing trips, even at 100% failure.
  breaker.record_failure(1.0);
  breaker.record_failure(2.0);
  breaker.record_failure(3.0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.record_failure(4.0);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_DOUBLE_EQ(breaker.failure_rate(), 1.0);

  // Blocked during the cooldown, half-open probe after it.
  EXPECT_FALSE(breaker.allow(5.0));
  EXPECT_FALSE(breaker.allow(11.9));
  EXPECT_TRUE(breaker.allow(12.1));
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);

  // One probe success closes with a clean window.
  breaker.record_success(12.5);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_DOUBLE_EQ(breaker.failure_rate(), 0.0);
  EXPECT_EQ(breaker.transitions(), 3U);  // open, half-open, closed
}

TEST(CircuitBreakerTest, ProbeFailureReopensImmediately) {
  CircuitBreaker breaker;
  for (int i = 0; i < 4; ++i) breaker.record_failure(static_cast<double>(i));
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  ASSERT_TRUE(breaker.allow(100.0));
  ASSERT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.record_failure(101.0);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  // The fresh cooldown starts at the probe failure.
  EXPECT_FALSE(breaker.allow(105.0));
  EXPECT_TRUE(breaker.allow(110.0));
}

TEST(CircuitBreakerTest, MixedWindowBelowThresholdStaysClosed) {
  CircuitBreaker breaker;
  // One failure in four: no prefix of the window ever reaches the 0.5
  // threshold, so the breaker never trips.
  for (int i = 0; i < 8; ++i) {
    if (i % 4 == 0) {
      breaker.record_failure(static_cast<double>(i));
    } else {
      breaker.record_success(static_cast<double>(i));
    }
  }
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_LT(breaker.failure_rate(), 0.5);
  EXPECT_EQ(breaker.transitions(), 0U);
}

TEST(SourceSelectorTest, PrefersHealthyHigherCapacitySources) {
  const auto trace = constant_rate(8.0);
  std::vector<SegmentSource> sources;
  CdnSourceConfig origin;
  sources.emplace_back(trace, origin);
  CdnSourceConfig edge;
  edge.name = "edge";
  edge.id = 1;
  edge.throughput_scale = 0.7;
  sources.emplace_back(trace, edge);

  SourceSelector selector(sources);
  EXPECT_EQ(selector.pick_primary(0.0), 0U);  // nominal capacity favours origin
  const auto backup = selector.pick_backup(0.0, 0);
  ASSERT_TRUE(backup.has_value());
  EXPECT_EQ(*backup, 1U);

  // Repeated origin failures trip its breaker; the selector fails over.
  for (int i = 0; i < 4; ++i) {
    selector.record(0, false, 0.0, static_cast<double>(i));
  }
  EXPECT_EQ(selector.breaker(0).state(), BreakerState::kOpen);
  EXPECT_EQ(selector.pick_primary(4.0), 1U);
  // With the only other source as primary, no backup remains.
  EXPECT_FALSE(selector.pick_backup(4.0, 1).has_value());
}

TEST(SourceSelectorTest, AllBreakersOpenStillPicksSomething) {
  const auto trace = constant_rate(8.0);
  std::vector<SegmentSource> sources;
  sources.emplace_back(trace, CdnSourceConfig{});
  CdnSourceConfig edge;
  edge.id = 1;
  edge.throughput_scale = 0.5;
  sources.emplace_back(trace, edge);

  SourceSelector selector(sources);
  for (int i = 0; i < 4; ++i) {
    selector.record(0, false, 0.0, static_cast<double>(i));
    selector.record(1, false, 0.0, static_cast<double>(i));
  }
  ASSERT_EQ(selector.breaker(0).state(), BreakerState::kOpen);
  ASSERT_EQ(selector.breaker(1).state(), BreakerState::kOpen);
  // Progress guarantee: a primary is still returned (best score overall).
  EXPECT_EQ(selector.pick_primary(4.0), 0U);
  EXPECT_FALSE(selector.pick_backup(4.0, 0).has_value());
}

TEST(SourceSelectorTest, EwmaScoreTracksObservedThroughput) {
  const auto trace = constant_rate(8.0);
  std::vector<SegmentSource> sources;
  sources.emplace_back(trace, CdnSourceConfig{});
  CdnSourceConfig edge;
  edge.id = 1;
  edge.throughput_scale = 0.9;
  sources.emplace_back(trace, edge);

  SourceSelector selector(sources);
  const double before = selector.score(1);
  // The nominally smaller edge consistently outperforms the origin.
  for (int i = 0; i < 12; ++i) {
    selector.record(1, true, 20.0, static_cast<double>(i));
    selector.record(0, true, 1.0, static_cast<double>(i));
  }
  EXPECT_GT(selector.score(1), before);
  EXPECT_EQ(selector.pick_primary(12.0), 1U);
}

TEST(SourceSelectorTest, EmptySourcesThrow) {
  EXPECT_THROW(SourceSelector(std::span<const SegmentSource>{}),
               std::invalid_argument);
}

TEST(CdnToStringTest, IdentifiersAreStable) {
  EXPECT_STREQ(to_string(CdnAttemptClass::kOk), "ok");
  EXPECT_STREQ(to_string(CdnAttemptClass::kHttpError), "http_error");
  EXPECT_STREQ(to_string(CdnAttemptClass::kTruncated), "truncated");
  EXPECT_STREQ(to_string(CdnAttemptClass::kCorrupted), "corrupted");
  EXPECT_STREQ(to_string(CdnAttemptClass::kSlow), "slow");
  EXPECT_STREQ(to_string(BreakerState::kClosed), "closed");
  EXPECT_STREQ(to_string(BreakerState::kOpen), "open");
  EXPECT_STREQ(to_string(BreakerState::kHalfOpen), "half_open");
}

}  // namespace
}  // namespace eacs::net
