#include "eacs/net/fault_injector.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace eacs::net {
namespace {

trace::TimeSeries constant_rate(double mbps, double duration = 300.0) {
  trace::TimeSeries series;
  series.append(0.0, mbps);
  series.append(duration, mbps);
  return series;
}

trace::TimeSeries constant_signal(double dbm, double duration = 300.0) {
  trace::TimeSeries series;
  series.append(0.0, dbm);
  series.append(duration, dbm);
  return series;
}

TEST(FaultInjectorTest, DefaultSpecIsStrictPassThrough) {
  const auto trace = constant_rate(8.0);
  const SegmentDownloader plain(trace);
  const FaultInjector injector(trace, FaultSpec{});

  EXPECT_FALSE(injector.active());
  EXPECT_TRUE(injector.outage_schedule().empty());
  EXPECT_FALSE(injector.in_outage(10.0));
  EXPECT_DOUBLE_EQ(injector.failure_probability(10.0), 0.0);

  // Bit-identical downloads at several offsets/sizes.
  for (const double start : {0.0, 1.5, 50.0, 299.0}) {
    for (const double size : {0.0, 4.0, 16.0, 123.4}) {
      const auto a = plain.download(start, size);
      const auto b = injector.downloader().download(start, size);
      EXPECT_EQ(a.start_s, b.start_s);
      EXPECT_EQ(a.end_s, b.end_s);
      EXPECT_EQ(a.size_megabits, b.size_megabits);
      EXPECT_EQ(a.mean_throughput_mbps, b.mean_throughput_mbps);

      const auto outcome = injector.attempt(3, 0, start, size);
      EXPECT_FALSE(outcome.failed);
      EXPECT_FALSE(outcome.stalled);
      EXPECT_EQ(outcome.result.end_s, a.end_s);
    }
  }
}

TEST(FaultInjectorTest, ScriptedOutageZeroesThroughput) {
  const auto trace = constant_rate(8.0);
  FaultSpec spec;
  spec.outages = {{10.0, 20.0}};
  const FaultInjector injector(trace, spec);

  EXPECT_TRUE(injector.active());
  ASSERT_EQ(injector.outage_schedule().size(), 1U);
  EXPECT_FALSE(injector.in_outage(9.99));
  EXPECT_TRUE(injector.in_outage(10.0));
  EXPECT_TRUE(injector.in_outage(19.99));
  EXPECT_FALSE(injector.in_outage(20.0));

  // Nothing moves inside the window.
  EXPECT_NEAR(injector.megabits_over(10.0, 20.0), 0.0, 1e-9);
  EXPECT_NEAR(injector.megabits_over(0.0, 30.0), 8.0 * 20.0, 1e-9);

  // A transfer straddling the window is extended by its full duration:
  // 32 megabits at 8 Mbps normally takes 4 s from t=8; with [10, 20) dead it
  // finishes at 8 + 4 + 10 = 22.
  const auto result = injector.downloader().download(8.0, 32.0);
  EXPECT_NEAR(result.end_s, 22.0, 1e-9);
}

TEST(FaultInjectorTest, OverlappingWindowsAreMerged) {
  const auto trace = constant_rate(8.0);
  FaultSpec spec;
  spec.outages = {{20.0, 22.0}, {5.0, 10.0}, {8.0, 15.0}};
  const FaultInjector injector(trace, spec);

  const auto& schedule = injector.outage_schedule();
  ASSERT_EQ(schedule.size(), 2U);
  EXPECT_DOUBLE_EQ(schedule[0].start_s, 5.0);
  EXPECT_DOUBLE_EQ(schedule[0].end_s, 15.0);
  EXPECT_DOUBLE_EQ(schedule[1].start_s, 20.0);
  EXPECT_DOUBLE_EQ(schedule[1].end_s, 22.0);
}

TEST(FaultInjectorTest, ValidatesSpec) {
  const auto trace = constant_rate(8.0);
  FaultSpec backwards;
  backwards.outages = {{10.0, 5.0}};
  EXPECT_THROW(FaultInjector(trace, backwards), std::invalid_argument);

  FaultSpec bad_prob;
  bad_prob.failure_prob = 1.5;
  EXPECT_THROW(FaultInjector(trace, bad_prob), std::invalid_argument);

  FaultSpec needs_signal;
  needs_signal.signal_failure_per_db = 0.01;
  EXPECT_THROW(FaultInjector(trace, needs_signal), std::invalid_argument);

  // Zero-width scripted windows are tolerated and dropped.
  FaultSpec zero_width;
  zero_width.outages = {{10.0, 10.0}};
  const FaultInjector injector(trace, zero_width);
  EXPECT_TRUE(injector.outage_schedule().empty());
}

TEST(FaultInjectorTest, RandomScheduleIsDeterministicInSeed) {
  const auto trace = constant_rate(8.0, 600.0);
  FaultSpec spec;
  spec.outage_rate_per_min = 2.0;
  spec.outage_mean_s = 5.0;
  spec.seed = 42;

  const FaultInjector a(trace, spec);
  const FaultInjector b(trace, spec);
  ASSERT_EQ(a.outage_schedule().size(), b.outage_schedule().size());
  EXPECT_GE(a.outage_schedule().size(), 1U);
  for (std::size_t i = 0; i < a.outage_schedule().size(); ++i) {
    EXPECT_EQ(a.outage_schedule()[i].start_s, b.outage_schedule()[i].start_s);
    EXPECT_EQ(a.outage_schedule()[i].end_s, b.outage_schedule()[i].end_s);
  }

  spec.seed = 43;
  const FaultInjector c(trace, spec);
  bool differs = c.outage_schedule().size() != a.outage_schedule().size();
  for (std::size_t i = 0; !differs && i < a.outage_schedule().size(); ++i) {
    differs = a.outage_schedule()[i].start_s != c.outage_schedule()[i].start_s;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultInjectorTest, ScheduleIsSortedAndDisjoint) {
  const auto trace = constant_rate(8.0, 600.0);
  FaultSpec spec;
  spec.outages = {{100.0, 110.0}};
  spec.outage_rate_per_min = 3.0;
  spec.outage_mean_s = 8.0;
  const FaultInjector injector(trace, spec);

  const auto& schedule = injector.outage_schedule();
  for (std::size_t i = 0; i < schedule.size(); ++i) {
    EXPECT_LT(schedule[i].start_s, schedule[i].end_s);
    if (i > 0) {
      EXPECT_GT(schedule[i].start_s, schedule[i - 1].end_s);
    }
  }
}

TEST(FaultInjectorTest, SignalCouplingRaisesFailureProbability) {
  const auto trace = constant_rate(8.0);
  const auto weak = constant_signal(-120.0);
  const auto strong = constant_signal(-80.0);

  FaultSpec spec;
  spec.failure_prob = 0.05;
  spec.signal_failure_per_db = 0.01;
  spec.signal_threshold_dbm = -100.0;

  const FaultInjector on_weak(trace, spec, &weak);
  const FaultInjector on_strong(trace, spec, &strong);
  // 20 dB below threshold adds 0.2; above threshold adds nothing.
  EXPECT_NEAR(on_weak.failure_probability(50.0), 0.25, 1e-12);
  EXPECT_NEAR(on_strong.failure_probability(50.0), 0.05, 1e-12);
}

TEST(FaultInjectorTest, FailureProbabilityIsCappedBelowOne) {
  const auto trace = constant_rate(8.0);
  const auto dead = constant_signal(-160.0);
  FaultSpec spec;
  spec.failure_prob = 0.9;
  spec.signal_failure_per_db = 0.05;
  const FaultInjector injector(trace, spec, &dead);
  EXPECT_DOUBLE_EQ(injector.failure_probability(50.0), 0.95);
}

TEST(FaultInjectorTest, AttemptsAreDeterministicAndIndependent) {
  const auto trace = constant_rate(8.0);
  FaultSpec spec;
  spec.failure_prob = 0.5;
  spec.stall_prob = 0.2;
  spec.seed = 7;
  const FaultInjector a(trace, spec);
  const FaultInjector b(trace, spec);

  // Same (segment, attempt) on two instances, interleaved with unrelated
  // calls on `b`: outcomes must match bit-for-bit.
  for (std::size_t seg = 0; seg < 20; ++seg) {
    for (std::size_t att = 0; att < 3; ++att) {
      (void)b.attempt(seg + 100, att, 1.0, 4.0);  // unrelated draw
      const auto x = a.attempt(seg, att, 5.0, 16.0);
      const auto y = b.attempt(seg, att, 5.0, 16.0);
      EXPECT_EQ(x.failed, y.failed);
      EXPECT_EQ(x.stalled, y.stalled);
      EXPECT_EQ(x.fail_at_s, y.fail_at_s);
      EXPECT_EQ(x.fail_fraction, y.fail_fraction);
      EXPECT_EQ(x.result.end_s, y.result.end_s);
    }
  }
}

TEST(FaultInjectorTest, CertainFailureDiesMidTransfer) {
  const auto trace = constant_rate(8.0);
  FaultSpec spec;
  spec.failure_prob = 0.95;  // the cap; bernoulli(0.95) still mostly fires
  const FaultInjector injector(trace, spec);

  std::size_t failures = 0;
  for (std::size_t seg = 0; seg < 50; ++seg) {
    const auto outcome = injector.attempt(seg, 0, 10.0, 16.0);
    if (!outcome.failed) continue;
    ++failures;
    EXPECT_GE(outcome.fail_fraction, 0.05);
    EXPECT_LE(outcome.fail_fraction, 0.95);
    EXPECT_GT(outcome.fail_at_s, 10.0);
    EXPECT_LT(outcome.fail_at_s, outcome.result.end_s);
  }
  EXPECT_GT(failures, 30U);
}

TEST(FaultInjectorTest, SlowLorisCrawlsAtTokenRate) {
  const auto trace = constant_rate(8.0);
  FaultSpec spec;
  spec.stall_prob = 1.0;
  spec.stall_rate_mbps = 0.1;
  const FaultInjector injector(trace, spec);

  const auto outcome = injector.attempt(0, 0, 5.0, 2.0);
  EXPECT_TRUE(outcome.stalled);
  EXPECT_FALSE(outcome.failed);
  // 2 megabits at 0.1 Mbps = 20 s, regardless of the healthy 8 Mbps link.
  EXPECT_NEAR(outcome.result.end_s, 25.0, 1e-9);
  EXPECT_NEAR(outcome.result.mean_throughput_mbps, 0.1, 1e-12);
}

}  // namespace
}  // namespace eacs::net
