#include "eacs/net/prediction.h"

#include <gtest/gtest.h>

#include "eacs/trace/session.h"
#include "eacs/trace/signal_gen.h"

namespace eacs::net {
namespace {

TEST(HoltLinearTest, InvalidFactorsThrow) {
  EXPECT_THROW(HoltLinearEstimator(0.0, 0.2), std::invalid_argument);
  EXPECT_THROW(HoltLinearEstimator(0.4, 1.5), std::invalid_argument);
}

TEST(HoltLinearTest, ConstantInputConverges) {
  HoltLinearEstimator estimator;
  for (int i = 0; i < 100; ++i) estimator.observe(8.0);
  EXPECT_NEAR(estimator.estimate(), 8.0, 0.01);
}

TEST(HoltLinearTest, TracksLinearRamp) {
  // On a steady ramp the trend term lets Holt forecast *ahead* of any
  // windowed mean.
  HoltLinearEstimator holt;
  HarmonicMeanEstimator harmonic(20);
  double value = 1.0;
  for (int i = 0; i < 60; ++i) {
    holt.observe(value);
    harmonic.observe(value);
    value += 0.5;
  }
  // Next true value is `value`; Holt should be much closer than harmonic.
  EXPECT_LT(std::fabs(holt.estimate() - value), 2.0);
  EXPECT_GT(value - harmonic.estimate(), 5.0);
}

TEST(HoltLinearTest, ForecastNeverNegative) {
  HoltLinearEstimator estimator;
  for (double v : {10.0, 5.0, 1.0, 0.3, 0.1}) estimator.observe(v);
  EXPECT_GE(estimator.estimate(), 0.0);
}

TEST(HoltLinearTest, ResetClears) {
  HoltLinearEstimator estimator;
  estimator.observe(5.0);
  estimator.reset();
  EXPECT_EQ(estimator.observations(), 0U);
  EXPECT_DOUBLE_EQ(estimator.estimate(), 0.0);
}

TEST(SignalAwareTest, WithoutSignalFallsBackToHistory) {
  SignalAwareEstimator estimator(trace::ThroughputModel{}, 20, 0.5);
  for (int i = 0; i < 10; ++i) estimator.observe(6.0);
  EXPECT_NEAR(estimator.estimate(), 6.0, 0.01);
}

TEST(SignalAwareTest, SignalDropPullsEstimateDown) {
  SignalAwareEstimator estimator(trace::ThroughputModel{}, 20, 0.6);
  // History at -90 dBm conditions.
  for (int i = 0; i < 20; ++i) {
    estimator.observe_signal(-90.0);
    estimator.observe(20.0);
  }
  const double before = estimator.estimate();
  // Radio reports a deep fade before any new throughput sample lands.
  estimator.observe_signal(-115.0);
  const double after = estimator.estimate();
  EXPECT_LT(after, 0.6 * before);
}

TEST(SignalAwareTest, BiasCalibrationAdaptsToLink) {
  // A link consistently delivering half the curve-implied capacity should
  // pull the fused estimate toward the measured level.
  SignalAwareEstimator estimator(trace::ThroughputModel{}, 20, 1.0);  // pure signal
  const double implied = trace::ThroughputModel{}.capacity_mbps(-95.0);
  for (int i = 0; i < 30; ++i) {
    estimator.observe_signal(-95.0);
    estimator.observe(implied * 0.5);
  }
  EXPECT_NEAR(estimator.estimate(), implied * 0.5, implied * 0.1);
}

TEST(SignalAwareTest, InvalidWeightThrows) {
  EXPECT_THROW(SignalAwareEstimator(trace::ThroughputModel{}, 20, 1.5),
               std::invalid_argument);
}

TEST(PredictionEvaluatorTest, InvalidSegmentThrows) {
  EXPECT_THROW(PredictionEvaluator(0.0), std::invalid_argument);
}

TEST(PredictionEvaluatorTest, PerfectPredictorOnConstantTrace) {
  trace::TimeSeries constant;
  for (double t = 0.0; t <= 200.0; t += 1.0) constant.append(t, 10.0);
  PredictionEvaluator evaluator(2.0);
  HarmonicMeanEstimator estimator(20);
  const auto score = evaluator.score("harmonic", estimator, constant);
  EXPECT_GT(score.samples, 50U);
  EXPECT_NEAR(score.mae_mbps, 0.0, 1e-9);
  EXPECT_NEAR(score.mape, 0.0, 1e-9);
}

TEST(PredictionEvaluatorTest, SignalAwareBeatsHistoryOnVolatileTrace) {
  // On a vehicle trace whose throughput is driven by the signal, fusing the
  // signal reading should cut the prediction error vs. pure history.
  const auto session = trace::build_session(media::evaluation_sessions()[0]);
  PredictionEvaluator evaluator(2.0);
  HarmonicMeanEstimator harmonic(20);
  SignalAwareEstimator fused(trace::ThroughputModel{}, 20, 0.5);
  const auto harmonic_score =
      evaluator.score("harmonic", harmonic, session.throughput_mbps);
  const auto fused_score = evaluator.score("signal-aware", fused,
                                           session.throughput_mbps,
                                           &session.signal_dbm);
  EXPECT_LT(fused_score.mae_mbps, harmonic_score.mae_mbps);
}

TEST(PredictionEvaluatorTest, AllEstimatorsScoreFiniteOnRealSession) {
  const auto session = trace::build_session(media::evaluation_sessions()[2]);
  PredictionEvaluator evaluator(2.0);
  HarmonicMeanEstimator harmonic(20);
  EmaEstimator ema(0.25);
  LastSampleEstimator last;
  HoltLinearEstimator holt;
  for (auto* estimator : std::initializer_list<BandwidthEstimator*>{
           &harmonic, &ema, &last, &holt}) {
    const auto score = evaluator.score("x", *estimator, session.throughput_mbps);
    EXPECT_GT(score.samples, 100U);
    EXPECT_GT(score.mae_mbps, 0.0);
    EXPECT_LT(score.mape, 1.0);  // under 100% average error
  }
}

}  // namespace
}  // namespace eacs::net
