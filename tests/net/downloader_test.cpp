#include "eacs/net/downloader.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "eacs/net/bandwidth_estimator.h"

namespace eacs::net {
namespace {

trace::TimeSeries constant_rate(double mbps, double duration = 100.0) {
  trace::TimeSeries series;
  series.append(0.0, mbps);
  series.append(duration, mbps);
  return series;
}

TEST(SegmentDownloaderTest, ConstantRateDuration) {
  SegmentDownloader downloader(constant_rate(8.0));
  // 16 megabits at 8 Mbps = 2 s.
  const auto result = downloader.download(1.0, 16.0);
  EXPECT_DOUBLE_EQ(result.start_s, 1.0);
  EXPECT_NEAR(result.end_s, 3.0, 1e-9);
  EXPECT_NEAR(result.mean_throughput_mbps, 8.0, 1e-9);
}

TEST(SegmentDownloaderTest, ZeroSizeFinishesInstantly) {
  SegmentDownloader downloader(constant_rate(8.0));
  const auto result = downloader.download(5.0, 0.0);
  EXPECT_DOUBLE_EQ(result.end_s, 5.0);
}

TEST(SegmentDownloaderTest, NegativeSizeThrows) {
  SegmentDownloader downloader(constant_rate(8.0));
  EXPECT_THROW(downloader.download(0.0, -1.0), std::invalid_argument);
}

TEST(SegmentDownloaderTest, EmptyOrNegativeTraceThrows) {
  EXPECT_THROW(SegmentDownloader(trace::TimeSeries{}), std::invalid_argument);
  trace::TimeSeries bad;
  bad.append(0.0, -1.0);
  EXPECT_THROW(SegmentDownloader{bad}, std::invalid_argument);
}

TEST(SegmentDownloaderTest, RampIntegration) {
  // Throughput ramps 0 -> 10 Mbps over 10 s: integral to time t is t^2/2.
  trace::TimeSeries ramp;
  ramp.append(0.0, 0.0);
  ramp.append(10.0, 10.0);
  SegmentDownloader downloader(ramp);
  // 8 megabits done when t^2/2 = 8 -> t = 4.
  const auto result = downloader.download(0.0, 8.0);
  EXPECT_NEAR(result.end_s, 4.0, 1e-9);
}

TEST(SegmentDownloaderTest, PiecewiseTraceCrossesBreakpoints) {
  trace::TimeSeries series;
  series.append(0.0, 4.0);
  series.append(2.0, 4.0);   // 8 megabits by t=2
  series.append(2.0001, 16.0);
  series.append(100.0, 16.0);
  SegmentDownloader downloader(series);
  // 24 megabits: 8 in the first 2 s, remaining 16 at ~16 Mbps ~ 1 s more.
  const auto result = downloader.download(0.0, 24.0);
  EXPECT_NEAR(result.end_s, 3.0, 0.01);
}

TEST(SegmentDownloaderTest, ExtendsPastTraceEnd) {
  SegmentDownloader downloader(constant_rate(8.0, 10.0));
  // Start near the end; most of the transfer runs on the held last value.
  const auto result = downloader.download(9.0, 80.0);
  EXPECT_NEAR(result.end_s, 19.0, 1e-6);
}

TEST(SegmentDownloaderTest, DeadLinkAtTraceEndCapsDuration) {
  trace::TimeSeries dying;
  dying.append(0.0, 8.0);
  dying.append(10.0, 0.0);
  SegmentDownloader downloader(dying);
  const auto result = downloader.download(0.0, 1000.0);
  EXPECT_GT(result.duration_s(), 100.0);  // clearly a stall, not a crash
}

TEST(SegmentDownloaderTest, DuplicateTimestampStepDoesNotDivideByZero) {
  // Regression: a zero-width breakpoint (duplicate timestamp, dt == 0) used
  // to divide by zero inside the breakpoint walk. It must instead act as a
  // clean step discontinuity.
  trace::TimeSeries series;
  series.append(0.0, 4.0);
  series.append(2.0, 4.0);    // 8 megabits by t=2
  series.append(2.0, 16.0);   // instantaneous step, not a ramp
  series.append(100.0, 16.0);
  SegmentDownloader downloader(series);
  // 24 megabits: 8 in the first 2 s at 4 Mbps, remaining 16 at 16 Mbps = 1 s.
  const auto result = downloader.download(0.0, 24.0);
  EXPECT_NEAR(result.end_s, 3.0, 1e-9);
  EXPECT_NEAR(result.mean_throughput_mbps, 8.0, 1e-9);
}

TEST(SegmentDownloaderTest, ZeroWidthOutageWindowHaltsTransfer) {
  // An outage written as zero-width steps (rate -> 0 at t=2, back at t=6):
  // nothing moves inside the window.
  trace::TimeSeries series;
  series.append(0.0, 8.0);
  series.append(2.0, 8.0);
  series.append(2.0, 0.0);
  series.append(6.0, 0.0);
  series.append(6.0, 8.0);
  series.append(100.0, 8.0);
  SegmentDownloader downloader(series);
  // 32 megabits: 16 by t=2, outage until t=6, remaining 16 by t=8.
  const auto result = downloader.download(0.0, 32.0);
  EXPECT_NEAR(result.end_s, 8.0, 1e-9);
}

TEST(SegmentDownloaderTest, BandwidthAtStepEdgeReturnsPostStepValue) {
  // Regression pin for the documented step-edge contract: at a duplicate
  // timestamp t the lookup resolves to the *last* sample at t, so
  // bandwidth_at(t) is the post-step (right-hand) value — right-continuous.
  trace::TimeSeries series;
  series.append(0.0, 4.0);
  series.append(2.0, 4.0);
  series.append(2.0, 16.0);  // step up at t=2
  series.append(6.0, 16.0);
  series.append(6.0, 0.0);   // step down to an outage at t=6
  series.append(100.0, 0.0);
  SegmentDownloader downloader(series);

  EXPECT_DOUBLE_EQ(downloader.bandwidth_at(2.0), 16.0);  // not 4, not a blend
  EXPECT_DOUBLE_EQ(downloader.bandwidth_at(6.0), 0.0);
  // Either side of the edge interpolates within its own flat piece.
  EXPECT_DOUBLE_EQ(downloader.bandwidth_at(1.999), 4.0);
  EXPECT_DOUBLE_EQ(downloader.bandwidth_at(2.001), 16.0);
  // Outside the trace the boundary values are held.
  EXPECT_DOUBLE_EQ(downloader.bandwidth_at(-1.0), 4.0);
  EXPECT_DOUBLE_EQ(downloader.bandwidth_at(1000.0), 0.0);
}

TEST(SegmentDownloaderTest, BandwidthAtTripleDuplicateUsesLastSample) {
  // With k >= 2 samples at the same t only the final duplicate defines the
  // value at t; intermediate ones are unobservable.
  trace::TimeSeries series;
  series.append(0.0, 8.0);
  series.append(5.0, 8.0);
  series.append(5.0, 2.0);   // shadowed intermediate duplicate
  series.append(5.0, 12.0);  // the value that applies at exactly t=5
  series.append(10.0, 12.0);
  SegmentDownloader downloader(series);
  EXPECT_DOUBLE_EQ(downloader.bandwidth_at(5.0), 12.0);
  EXPECT_DOUBLE_EQ(downloader.bandwidth_at(4.999), 8.0);
  EXPECT_DOUBLE_EQ(downloader.bandwidth_at(5.001), 12.0);
}

TEST(SegmentDownloaderTest, LaterStartUsesLaterBandwidth) {
  trace::TimeSeries series;
  series.append(0.0, 2.0);
  series.append(50.0, 2.0);
  series.append(50.1, 20.0);
  series.append(200.0, 20.0);
  SegmentDownloader downloader(series);
  const auto slow = downloader.download(0.0, 10.0);
  const auto fast = downloader.download(60.0, 10.0);
  EXPECT_GT(slow.duration_s(), 4.0);
  EXPECT_LT(fast.duration_s(), 1.0);
}

TEST(HarmonicMeanEstimatorTest, MatchesFormula) {
  HarmonicMeanEstimator estimator(20);
  EXPECT_DOUBLE_EQ(estimator.estimate(), 0.0);
  estimator.observe(1.0);
  estimator.observe(2.0);
  estimator.observe(4.0);
  EXPECT_NEAR(estimator.estimate(), 3.0 / (1.0 + 0.5 + 0.25), 1e-12);
  EXPECT_EQ(estimator.observations(), 3U);
}

TEST(HarmonicMeanEstimatorTest, WindowLimitsHistory) {
  HarmonicMeanEstimator estimator(2);
  estimator.observe(100.0);
  estimator.observe(1.0);
  estimator.observe(1.0);  // the 100 falls out
  EXPECT_NEAR(estimator.estimate(), 1.0, 1e-9);
}

TEST(HarmonicMeanEstimatorTest, FloorsNonPositiveObservations) {
  // Failed transfers (zero throughput) must not vanish from the history —
  // they are recorded at the failure floor so the estimate collapses instead
  // of staying optimistic.
  HarmonicMeanEstimator estimator(5);
  estimator.observe(0.0);
  estimator.observe(-3.0);
  EXPECT_EQ(estimator.observations(), 2U);
  EXPECT_DOUBLE_EQ(estimator.estimate(), kFailureFloorMbps);

  estimator.observe(10.0);
  EXPECT_LT(estimator.estimate(), 0.1);  // harmonic mean stays pessimistic
}

TEST(EmaEstimatorTest, FloorsNonPositiveObservations) {
  EmaEstimator estimator(0.5);
  estimator.observe(8.0);
  estimator.observe(0.0);
  EXPECT_EQ(estimator.observations(), 2U);
  EXPECT_NEAR(estimator.estimate(), 0.5 * 8.0 + 0.5 * kFailureFloorMbps, 1e-12);
}

TEST(EmaEstimatorTest, UnprimedEstimateIsZero) {
  // Documented contract: 0.0 means "no estimate yet"; callers fall back to
  // their startup rung.
  EmaEstimator estimator(0.5);
  EXPECT_EQ(estimator.observations(), 0U);
  EXPECT_DOUBLE_EQ(estimator.estimate(), 0.0);
}

TEST(HarmonicMeanEstimatorTest, ResetClears) {
  HarmonicMeanEstimator estimator(5);
  estimator.observe(4.0);
  estimator.reset();
  EXPECT_EQ(estimator.observations(), 0U);
  EXPECT_DOUBLE_EQ(estimator.estimate(), 0.0);
}

TEST(EmaEstimatorTest, TracksShifts) {
  EmaEstimator estimator(0.5);
  estimator.observe(10.0);
  estimator.observe(20.0);
  EXPECT_DOUBLE_EQ(estimator.estimate(), 15.0);
  estimator.reset();
  EXPECT_DOUBLE_EQ(estimator.estimate(), 0.0);
}

TEST(LastSampleEstimatorTest, ReturnsLatest) {
  LastSampleEstimator estimator;
  estimator.observe(5.0);
  estimator.observe(9.0);
  EXPECT_DOUBLE_EQ(estimator.estimate(), 9.0);
  EXPECT_EQ(estimator.observations(), 2U);
  estimator.reset();
  EXPECT_DOUBLE_EQ(estimator.estimate(), 0.0);
}

TEST(EstimatorComparisonTest, HarmonicMeanMoreRobustThanLastSample) {
  HarmonicMeanEstimator harmonic(20);
  LastSampleEstimator last;
  for (int i = 0; i < 19; ++i) {
    harmonic.observe(2.0);
    last.observe(2.0);
  }
  harmonic.observe(50.0);  // spike
  last.observe(50.0);
  EXPECT_LT(harmonic.estimate(), 3.0);
  EXPECT_DOUBLE_EQ(last.estimate(), 50.0);
}

}  // namespace
}  // namespace eacs::net
