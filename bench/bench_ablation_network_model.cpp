// Ablation: network-model family.
//
// Re-runs the five-trace evaluation with the OU fading network replaced by
// a Markov-modulated link (the other standard model family in the ABR
// literature, with discrete excellent..outage states). The paper-shape
// conclusions — Ours/Optimal save a large share of energy at small QoE
// cost, FESTIVE/BBA do not — must not depend on which family generated the
// traces.

#include "bench_common.h"
#include "eacs/sim/evaluation.h"
#include "eacs/trace/markov_bandwidth.h"

namespace {

using namespace eacs;

void print_summary(const char* label, const sim::EvaluationResult& result) {
  AsciiTable table(label);
  table.set_header({"algorithm", "energy saving", "extra-energy saving",
                    "QoE degradation"});
  table.set_alignment({Align::kLeft, Align::kRight, Align::kRight, Align::kRight});
  for (const auto& algo : {"FESTIVE", "BBA", "Ours", "Optimal"}) {
    table.add_row({algo, AsciiTable::percent(result.mean_energy_saving(algo), 1),
                   AsciiTable::percent(result.mean_extra_energy_saving(algo), 1),
                   AsciiTable::percent(result.mean_qoe_degradation(algo), 1)});
  }
  table.print();
  std::printf("\n");
}

void print_reproduction() {
  bench::banner("Ablation: network-model family",
                "OU fading vs. Markov-modulated link states");

  const sim::Evaluation evaluation;

  // Default OU-network sessions.
  const auto ou_sessions = trace::build_all_sessions();
  print_summary("OU fading network (default)", evaluation.run(ou_sessions));

  // Same sessions with Markov networks: rough rides get the vehicle chain
  // started in 'fair', the smooth ride (trace 2) the indoor chain.
  std::vector<trace::SessionTraces> markov_sessions;
  for (const auto& session : ou_sessions) {
    const bool smooth = session.spec.avg_vibration < 4.0;
    markov_sessions.push_back(trace::with_markov_network(
        session,
        smooth ? trace::MarkovBandwidthModel::lte_indoor()
               : trace::MarkovBandwidthModel::lte_vehicle(),
        session.spec.seed ^ 0x3A4Cull, smooth ? 0 : 2));
  }
  print_summary("Markov-modulated network", evaluation.run(markov_sessions));

  std::printf("(Absolute numbers move with the model family; the ordering and\n"
              "the large Ours/Optimal-vs-baselines gap do not.)\n");
}

void BM_MarkovGeneration(benchmark::State& state) {
  for (auto _ : state) {
    trace::MarkovBandwidthGenerator generator(
        trace::MarkovBandwidthModel::lte_vehicle(), 7);
    benchmark::DoNotOptimize(generator.generate(600.0));
  }
}
BENCHMARK(BM_MarkovGeneration)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
