// Fleet-scale planner study: the paper's Eq. 11 rolling-horizon planner on
// every fleet client, made affordable by the context-quantized DecisionCache
// (DESIGN "Decision cache & quantization"). Three comparisons:
//
//   * Policy rows at 1k / 10k sessions — throughput ABR vs naive per-session
//     planning (cache capacity 0: same quantized decisions, zero reuse) vs
//     cached planning. The headline claim is cached >= 10x naive sessions/s
//     at 10k, landing within a small factor of the throughput baseline.
//   * Quantization sensitivity at 1k — bucket widths scaled x{0.5, 1, 2, 4}
//     against the exact (unquantized, uncached) planner: hit rate vs fleet
//     QoE / energy drift. This is the data behind the default buckets.
//   * Rich-engine quantization error — Evaluation ("Ours" over the Table V
//     sessions) with an exact-key cache (bit-identical, certified by
//     tests/differential/) and with the fleet's quantized config, reporting
//     the QoE / energy deltas of planning on bucket representatives.
//
// All cache/plan counters are deterministic in (config) — the CI perf smoke
// pins the 1k-session values exactly; wall-clock is advisory only.
//
// `--json-append BENCH_baseline.json` upserts the "fleet_planner_cache"
// record the committed baseline carries.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "eacs/media/bitrate_ladder.h"
#include "eacs/sim/evaluation.h"
#include "eacs/sim/fleet.h"

namespace {

using namespace eacs;

// The planner workload is deliberately heavier than the fleet smoke default:
// the paper's full 14-rung evaluation ladder (every solve prices all 14
// rungs) and 60-segment (~2 minute) sessions, whose long steady state is
// what a population planner actually amortizes. 16 cells, 8 regions,
// 4 arrivals/s as in the fleet-scale bench.
sim::FleetConfig fleet_config(std::size_t sessions, sim::FleetPolicy policy,
                              std::size_t cache_capacity) {
  sim::FleetConfig config;
  config.num_sessions = sessions;
  config.segments_per_session = 60;
  const auto ladder = media::BitrateLadder::evaluation14();
  config.ladder_mbps.clear();
  for (std::size_t l = 0; l < ladder.size(); ++l) {
    config.ladder_mbps.push_back(ladder.bitrate(l));
  }
  config.policy = policy;
  config.planner_cache.capacity = cache_capacity;
  return config;
}

struct TimedRun {
  sim::FleetMetrics metrics;
  double wall_ms = 0.0;
  double sessions_per_sec = 0.0;
};

TimedRun timed_run(const sim::FleetConfig& config) {
  TimedRun run;
  const auto start = std::chrono::steady_clock::now();
  run.metrics = sim::run_fleet(config);
  const auto end = std::chrono::steady_clock::now();
  run.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
  run.sessions_per_sec =
      run.wall_ms > 0.0
          ? 1e3 * static_cast<double>(config.num_sessions) / run.wall_ms
          : 0.0;
  return run;
}

void policy_comparison() {
  AsciiTable table("Fleet policy throughput (sessions/s) and cache counters");
  table.set_header({"sessions", "policy", "wall ms", "sessions/s", "hit rate",
                    "plans", "model evals"});
  table.set_alignment({Align::kRight, Align::kLeft, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight, Align::kRight});

  double naive_10k = 0.0;
  double cached_10k = 0.0;
  for (const std::size_t sessions : {std::size_t{1000}, std::size_t{10000}}) {
    const std::string tag = std::to_string(sessions / 1000) + "k";
    struct Row {
      const char* name;
      sim::FleetPolicy policy;
      std::size_t capacity;
    };
    const Row rows[] = {
        {"throughput", sim::FleetPolicy::kThroughput, 0},
        {"planner naive", sim::FleetPolicy::kPlanner, 0},
        {"planner cached", sim::FleetPolicy::kPlanner,
         sim::FleetConfig{}.planner_cache.capacity},
    };
    for (const Row& row : rows) {
      const auto config = fleet_config(sessions, row.policy, row.capacity);
      sim::run_fleet(fleet_config(1000, row.policy, row.capacity));  // warm-up
      const TimedRun run = timed_run(config);
      const core::CostStats& planner = run.metrics.planner;
      const double lookups =
          static_cast<double>(planner.cache_hits + planner.cache_misses);
      const double hit_rate =
          lookups > 0.0 ? static_cast<double>(planner.cache_hits) / lookups : 0.0;
      table.add_row({std::to_string(sessions), row.name,
                     AsciiTable::num(run.wall_ms, 1),
                     AsciiTable::num(run.sessions_per_sec, 0),
                     AsciiTable::num(hit_rate, 3),
                     std::to_string(planner.plans),
                     std::to_string(planner.model_evals())});

      const std::string key = std::string(row.name) + "_" + tag;
      std::string id;
      for (const char c : key) id += (c == ' ' ? '_' : c);
      bench::record_metric("sessions_per_sec_" + id, run.sessions_per_sec);
      if (row.policy == sim::FleetPolicy::kPlanner) {
        bench::record_metric("hit_rate_" + id, hit_rate);
        bench::record_metric(
            "plans_per_session_" + id,
            static_cast<double>(planner.plans) / static_cast<double>(sessions));
        bench::record_metric("model_evals_per_session_" + id,
                             static_cast<double>(planner.model_evals()) /
                                 static_cast<double>(sessions));
      }
      if (sessions == 10000 && row.policy == sim::FleetPolicy::kPlanner) {
        (row.capacity == 0 ? naive_10k : cached_10k) = run.sessions_per_sec;
      }
      // The CI-pinned deterministic counters for the fixed 1k planner fleet.
      if (sessions == 1000 && row.policy == sim::FleetPolicy::kPlanner &&
          row.capacity != 0) {
        bench::record_metric("planner_cache_hits_1k",
                             static_cast<double>(planner.cache_hits));
        bench::record_metric("planner_cache_misses_1k",
                             static_cast<double>(planner.cache_misses));
        bench::record_metric("planner_cache_evictions_1k",
                             static_cast<double>(planner.cache_evictions));
        bench::record_metric("planner_plans_1k",
                             static_cast<double>(planner.plans));
        bench::record_metric("planner_model_evals_1k",
                             static_cast<double>(planner.model_evals()));
        bench::record_metric("planner_requests_1k",
                             static_cast<double>(run.metrics.requests));
        bench::record_metric("planner_sessions_1k",
                             static_cast<double>(run.metrics.sessions));
      }
    }
  }
  table.print();

  const double speedup = naive_10k > 0.0 ? cached_10k / naive_10k : 0.0;
  bench::record_metric("speedup_cached_vs_naive_10k", speedup);
  std::printf("\ncached vs naive planner at 10k sessions: %.1fx sessions/s\n\n",
              speedup);
}

void quantization_sensitivity() {
  AsciiTable table(
      "Quantization sensitivity at 1k sessions (vs exact uncached planner)");
  table.set_header({"bucket scale", "hit rate", "mean QoE", "QoE delta",
                    "mean energy J", "energy delta %"});
  table.set_alignment({Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight, Align::kRight});

  // Exact reference: identity canonicalization, no storage — the true
  // planner decision on every request.
  auto exact_config = fleet_config(1000, sim::FleetPolicy::kPlanner, 0);
  exact_config.planner_cache.exact = true;
  const sim::FleetMetrics exact = sim::run_fleet(exact_config);
  const double exact_qoe = exact.qoe.mean();
  const double exact_energy = exact.energy_j.mean();
  bench::record_metric("sensitivity_exact_qoe_mean", exact_qoe);
  bench::record_metric("sensitivity_exact_energy_j_mean", exact_energy);

  const struct {
    double scale;
    const char* id;
  } scales[] = {{0.5, "0_5x"}, {1.0, "1x"}, {2.0, "2x"}, {4.0, "4x"}};
  for (const auto& [scale, id] : scales) {
    auto config = fleet_config(
        1000, sim::FleetPolicy::kPlanner,
        sim::FleetConfig{}.planner_cache.capacity);
    config.planner_cache.buffer_bucket_s *= scale;
    config.planner_cache.vibration_bucket *= scale;
    config.planner_cache.confidence_bucket *= scale;
    config.planner_cache.signal_bucket_dbm *= scale;
    // Bandwidth resolution moves inversely: wider buckets = fewer per octave.
    config.planner_cache.bandwidth_buckets_per_octave /= scale;
    const sim::FleetMetrics metrics = sim::run_fleet(config);
    const core::CostStats& planner = metrics.planner;
    const double lookups =
        static_cast<double>(planner.cache_hits + planner.cache_misses);
    const double hit_rate =
        lookups > 0.0 ? static_cast<double>(planner.cache_hits) / lookups : 0.0;
    const double qoe_delta = metrics.qoe.mean() - exact_qoe;
    const double energy_delta_pct =
        exact_energy > 0.0
            ? 100.0 * (metrics.energy_j.mean() - exact_energy) / exact_energy
            : 0.0;
    table.add_row({std::string(id), AsciiTable::num(hit_rate, 3),
                   AsciiTable::num(metrics.qoe.mean(), 4),
                   AsciiTable::num(qoe_delta, 4),
                   AsciiTable::num(metrics.energy_j.mean(), 1),
                   AsciiTable::num(energy_delta_pct, 2)});
    bench::record_metric(std::string("sensitivity_hit_rate_") + id, hit_rate);
    bench::record_metric(std::string("sensitivity_qoe_delta_") + id, qoe_delta);
    bench::record_metric(std::string("sensitivity_energy_delta_pct_") + id,
                         energy_delta_pct);
  }
  table.print();
  std::printf("\n");
}

void rich_engine_quantization_error() {
  AsciiTable table(
      "Rich engine (Table V sessions, \"Ours\"): cached vs uncached planning");
  table.set_header({"mode", "mean QoE", "mean energy J"});
  table.set_alignment({Align::kLeft, Align::kRight, Align::kRight});

  const auto mean_energy = [](const sim::EvaluationResult& result) {
    const auto rows = result.rows_for("Ours");
    double sum = 0.0;
    for (const auto& row : rows) sum += row.total_energy_j;
    return rows.empty() ? 0.0 : sum / static_cast<double>(rows.size());
  };

  const sim::Evaluation uncached{{}};
  const auto base = uncached.run();
  const double base_qoe = base.mean_qoe("Ours");
  const double base_energy = mean_energy(base);
  table.add_row({"uncached", AsciiTable::num(base_qoe, 4),
                 AsciiTable::num(base_energy, 1)});

  sim::EvaluationConfig exact_config;
  exact_config.online_cache = core::DecisionCacheConfig{};  // exact keys
  const auto exact = sim::Evaluation(exact_config).run();
  table.add_row({"cached (exact keys)", AsciiTable::num(exact.mean_qoe("Ours"), 4),
                 AsciiTable::num(mean_energy(exact), 1)});

  sim::EvaluationConfig quantized_config;
  quantized_config.online_cache = core::DecisionCacheConfig{.exact = false};
  const auto quantized = sim::Evaluation(quantized_config).run();
  const double quantized_qoe = quantized.mean_qoe("Ours");
  const double quantized_energy = mean_energy(quantized);
  table.add_row({"cached (fleet buckets)", AsciiTable::num(quantized_qoe, 4),
                 AsciiTable::num(quantized_energy, 1)});
  table.print();

  // Exact-key caching must not move the numbers at all (the differential
  // harness certifies bitwise equality; this is the coarse echo of it).
  bench::record_metric("rich_exact_cache_qoe_drift",
                       exact.mean_qoe("Ours") - base_qoe);
  bench::record_metric("rich_quantized_qoe_delta", quantized_qoe - base_qoe);
  bench::record_metric(
      "rich_quantized_energy_delta_pct",
      base_energy > 0.0
          ? 100.0 * (quantized_energy - base_energy) / base_energy
          : 0.0);
  std::printf("\n");
}

void BM_FleetPlannerCached(benchmark::State& state) {
  const auto config =
      fleet_config(static_cast<std::size_t>(state.range(0)),
                   sim::FleetPolicy::kPlanner,
                   sim::FleetConfig{}.planner_cache.capacity);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_fleet(config));
  }
}
BENCHMARK(BM_FleetPlannerCached)
    ->Arg(1000)->Arg(10000)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

void BM_FleetPlannerNaive(benchmark::State& state) {
  const auto config = fleet_config(static_cast<std::size_t>(state.range(0)),
                                   sim::FleetPolicy::kPlanner, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_fleet(config));
  }
}
BENCHMARK(BM_FleetPlannerNaive)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  bench::banner(
      "Fleet planner cache",
      "Eq. 11 planner on every fleet client via the context-quantized "
      "decision cache: policy throughput rows, pinned cache counters, "
      "quantization sensitivity, rich-engine quantization error");
  policy_comparison();
  quantization_sensitivity();
  rich_engine_quantization_error();
  return eacs::bench::run_benchmarks(argc, argv);
}
