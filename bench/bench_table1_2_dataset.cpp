// Tables I & II: the quality-assessment video dataset and the
// resolution/bitrate ladder.

#include "bench_common.h"
#include "eacs/media/bitrate_ladder.h"
#include "eacs/media/catalogue.h"
#include "eacs/media/manifest.h"

namespace {

using namespace eacs;

void print_reproduction() {
  bench::banner("Tables I & II", "Test-video dataset and encoding ladder");

  AsciiTable videos("Table I: the test videos");
  videos.set_header({"genre", "explanation", "SI target", "TI target"});
  videos.set_alignment({Align::kLeft, Align::kLeft, Align::kRight, Align::kRight});
  for (const auto& video : media::test_videos()) {
    videos.add_row({video.name, video.description,
                    AsciiTable::num(video.target_si, 0),
                    AsciiTable::num(video.target_ti, 0)});
  }
  videos.print();

  AsciiTable ladder_table("\nTable II: resolution and bitrate ladder");
  ladder_table.set_header({"resolution", "bitrate (Mbps)"});
  ladder_table.set_alignment({Align::kLeft, Align::kRight});
  const auto ladder = media::BitrateLadder::table2();
  for (std::size_t level = ladder.size(); level-- > 0;) {  // paper lists high->low
    ladder_table.add_row(
        {ladder.rung(level).resolution, AsciiTable::num(ladder.bitrate(level), 3)});
  }
  ladder_table.print();

  AsciiTable eval_ladder("\nSection V-A: the 14-rate evaluation ladder");
  eval_ladder.set_header({"level", "bitrate (Mbps)", "2 s segment (megabits)"});
  eval_ladder.set_alignment({Align::kRight, Align::kRight, Align::kRight});
  const auto eval14 = media::BitrateLadder::evaluation14();
  for (std::size_t level = 0; level < eval14.size(); ++level) {
    eval_ladder.add_row({std::to_string(level), AsciiTable::num(eval14.bitrate(level), 3),
                         AsciiTable::num(eval14.bitrate(level) * 2.0, 2)});
  }
  eval_ladder.print();
}

void BM_ManifestSegmentSize(benchmark::State& state) {
  const media::VideoManifest manifest("bench", 600.0, 2.0,
                                      media::BitrateLadder::evaluation14(),
                                      media::VbrModel{0.15});
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(manifest.segment_size_megabits(i % manifest.num_segments(),
                                                            i % 14));
    ++i;
  }
}
BENCHMARK(BM_ManifestSegmentSize);

void BM_LadderLookup(benchmark::State& state) {
  const auto ladder = media::BitrateLadder::evaluation14();
  double cap = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ladder.highest_level_not_above(cap));
    cap = cap >= 6.0 ? 0.1 : cap + 0.03;
  }
}
BENCHMARK(BM_LadderLookup);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
