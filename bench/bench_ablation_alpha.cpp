// Ablation: the weighting factor alpha in the Eq. 11 objective.
//
// The paper fixes alpha = 0.5 ("we equally consider minimizing energy and
// maximizing QoE"). This bench sweeps alpha for the online algorithm across
// the five traces, tracing out the energy/QoE trade-off curve that the
// weighted-sum formulation exposes: alpha -> 0 recovers a QoE-maximising
// player, alpha -> 1 a battery-saver.

#include "bench_common.h"
#include "eacs/core/online.h"
#include "eacs/sim/evaluation.h"

namespace {

using namespace eacs;

void print_reproduction() {
  bench::banner("Ablation: alpha sweep",
                "Energy/QoE trade-off of the online algorithm as alpha varies");

  const auto sessions = trace::build_all_sessions();

  AsciiTable table("Mean across the five traces");
  table.set_header({"alpha", "energy (J)", "mean QoE", "mean bitrate (Mbps)",
                    "saving vs Youtube"});
  table.set_alignment({Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight});

  for (const double alpha : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    sim::EvaluationConfig config;
    config.alpha = alpha;
    const sim::Evaluation evaluation(config);
    const auto result = evaluation.run(sessions);
    double energy = 0.0;
    double qoe = 0.0;
    double bitrate = 0.0;
    const auto rows = result.rows_for("Ours");
    for (const auto& row : rows) {
      energy += row.total_energy_j;
      qoe += row.mean_qoe;
      bitrate += row.mean_bitrate_mbps;
    }
    const auto n = static_cast<double>(rows.size());
    table.add_row({AsciiTable::num(alpha, 2), AsciiTable::num(energy / n, 0),
                   AsciiTable::num(qoe / n, 2), AsciiTable::num(bitrate / n, 2),
                   AsciiTable::percent(result.mean_energy_saving("Ours"), 1)});
  }
  table.print();
  std::printf("\n(The paper's operating point is alpha = 0.5.)\n");
}

void BM_ReferenceLevel(benchmark::State& state) {
  core::ObjectiveConfig config;
  config.alpha = 0.5;
  const core::Objective objective(qoe::QoeModel{}, power::PowerModel{}, config);
  core::TaskEnvironment env;
  env.duration_s = 2.0;
  env.signal_dbm = -100.0;
  env.vibration = 5.0;
  env.bandwidth_mbps = 10.0;
  for (double r : media::BitrateLadder::evaluation14().bitrates()) {
    env.size_megabits.push_back(r * 2.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(objective.reference_level(env, 30.0));
  }
}
BENCHMARK(BM_ReferenceLevel);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
