// Table III: the QoE-model coefficients recovered by least squares from the
// (simulated) subjective study, next to the ground truth they were generated
// from and the values printed in the paper.

#include "bench_common.h"
#include "eacs/qoe/subjective_study.h"

namespace {

using namespace eacs;
using namespace eacs::qoe;

void print_reproduction() {
  bench::banner("Table III", "QoE model coefficients: ground truth vs. re-fit");

  const QoeModelParams truth;
  StudyConfig config;
  SubjectiveStudy study(config, QoeModel{truth});
  const auto ratings = study.run();
  const auto fit = fit_qoe_model_from_ratings(ratings);

  AsciiTable table("Coefficients (paper Table III prints 1.036 / 0.429 / ...)");
  table.set_header({"coefficient", "ground truth", "fitted from study"});
  table.set_alignment({Align::kLeft, Align::kRight, Align::kRight});
  table.add_row({"a", AsciiTable::num(truth.a, 3), AsciiTable::num(fit.params.a, 3)});
  table.add_row({"b", AsciiTable::num(truth.b, 3), AsciiTable::num(fit.params.b, 3)});
  table.add_row({"kappa", AsciiTable::num(truth.kappa, 4),
                 AsciiTable::num(fit.params.kappa, 4)});
  table.add_row({"alpha_v", AsciiTable::num(truth.alpha_v, 3),
                 AsciiTable::num(fit.params.alpha_v, 3)});
  table.add_row({"beta_r", AsciiTable::num(truth.beta_r, 3),
                 AsciiTable::num(fit.params.beta_r, 3)});
  table.print();

  std::printf("\nq0 fit R^2 = %.4f; surface fit R^2 = %.4f\n",
              fit.curve_fit.r_squared, fit.surface_fit.r_squared);
  std::printf("Note: the surface exponents are weakly identified from one\n"
              "20-subject study (rating noise rivals the impairment signal);\n"
              "the *surface values* in the decision-relevant region are what\n"
              "the fit pins down:\n\n");

  const QoeModel truth_model{truth};
  const QoeModel fitted_model{fit.params};
  AsciiTable surface("Surface recovery at the paper's anchors");
  surface.set_header({"(v, r)", "truth", "fitted"});
  surface.set_alignment({Align::kLeft, Align::kRight, Align::kRight});
  for (const auto& [v, r] : {std::pair{2.0, 1.5}, std::pair{6.0, 1.5},
                             std::pair{2.0, 5.8}, std::pair{6.0, 5.8}}) {
    surface.add_row({"(" + AsciiTable::num(v, 0) + ", " + AsciiTable::num(r, 1) + ")",
                     AsciiTable::num(truth_model.vibration_impairment(v, r), 3),
                     AsciiTable::num(fitted_model.vibration_impairment(v, r), 3)});
  }
  surface.print();
}

void BM_FullFitPipeline(benchmark::State& state) {
  StudyConfig config;
  for (auto _ : state) {
    SubjectiveStudy study(config, QoeModel{});
    const auto ratings = study.run();
    benchmark::DoNotOptimize(fit_qoe_model_from_ratings(ratings));
  }
}
BENCHMARK(BM_FullFitPipeline);

void BM_MosAggregation(benchmark::State& state) {
  StudyConfig config;
  SubjectiveStudy study(config, QoeModel{});
  const auto ratings = study.run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(SubjectiveStudy::aggregate(ratings, 0.5));
  }
}
BENCHMARK(BM_MosAggregation);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
