// Extension: multi-client fairness over a shared bottleneck.
//
// Four co-located clients (same vehicle context) share one link and run the
// same algorithm; we report Jain's fairness index over their mean bitrates,
// the aggregate energy, mean QoE and stalls — the regime FESTIVE was
// designed for and the paper's single-client evaluation does not cover.

#include "bench_common.h"
#include "eacs/abr/bba.h"
#include "eacs/abr/festive.h"
#include "eacs/abr/fixed.h"
#include "eacs/core/online.h"
#include "eacs/player/multi_client.h"
#include "eacs/sim/metrics.h"
#include "eacs/trace/session.h"

namespace {

using namespace eacs;

constexpr std::size_t kClients = 4;

struct FleetOutcome {
  double fairness = 0.0;
  double total_energy = 0.0;
  double mean_qoe = 0.0;
  double total_rebuffer = 0.0;
  double mean_bitrate = 0.0;
};

template <typename PolicyType, typename... Args>
FleetOutcome run_fleet(const media::VideoManifest& manifest,
                       const trace::SessionTraces& session,
                       const trace::TimeSeries& capacity, Args&&... args) {
  std::vector<std::unique_ptr<player::AbrPolicy>> policies;
  std::vector<player::ClientSetup> clients;
  for (std::size_t i = 0; i < kClients; ++i) {
    policies.push_back(std::make_unique<PolicyType>(args...));
    clients.push_back({&manifest, policies.back().get(), &session,
                       static_cast<double>(i) * 1.0});
  }
  player::MultiClientSimulator simulator(capacity);
  const auto results = simulator.run(clients);

  const qoe::QoeModel qoe_model;
  const power::PowerModel power_model;
  FleetOutcome outcome;
  std::vector<double> bitrates;
  for (const auto& result : results) {
    const auto metrics =
        sim::compute_metrics("x", 0, result, manifest, qoe_model, power_model);
    outcome.total_energy += metrics.total_energy_j;
    outcome.mean_qoe += metrics.mean_qoe / kClients;
    outcome.total_rebuffer += metrics.rebuffer_s;
    bitrates.push_back(result.mean_bitrate_mbps());
    outcome.mean_bitrate += result.mean_bitrate_mbps() / kClients;
  }
  outcome.fairness = player::jain_fairness(bitrates);
  return outcome;
}

void print_reproduction() {
  bench::banner("Extension: multi-client fairness",
                "Four clients sharing a bottleneck, one algorithm per fleet");

  const auto spec = media::evaluation_sessions()[0];
  const auto session = trace::build_session(spec);
  const media::VideoManifest manifest("shared", spec.length_s, 2.0,
                                      media::BitrateLadder::evaluation14());
  // The bottleneck: the session's own throughput trace (the link all four
  // clients ride behind).
  const auto& capacity = session.throughput_mbps;

  const qoe::QoeModel qoe_model;
  const power::PowerModel power_model;
  core::ObjectiveConfig objective_config;
  const core::Objective objective(qoe_model, power_model, objective_config);

  AsciiTable table("Fleet outcomes (4 clients, vehicle context, shared link)");
  table.set_header({"algorithm", "Jain fairness", "mean bitrate (Mbps)",
                    "fleet energy (J)", "mean QoE", "fleet rebuffer (s)"});
  table.set_alignment({Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight});

  const auto add_row = [&table](const char* name, const FleetOutcome& outcome) {
    table.add_row({name, AsciiTable::num(outcome.fairness, 3),
                   AsciiTable::num(outcome.mean_bitrate, 2),
                   AsciiTable::num(outcome.total_energy, 0),
                   AsciiTable::num(outcome.mean_qoe, 2),
                   AsciiTable::num(outcome.total_rebuffer, 1)});
  };

  add_row("Youtube", run_fleet<abr::FixedBitrate>(manifest, session, capacity));
  add_row("FESTIVE", run_fleet<abr::Festive>(manifest, session, capacity));
  add_row("BBA", run_fleet<abr::Bba>(manifest, session, capacity, 5.0, 30.0));
  add_row("Ours", run_fleet<core::OnlineBitrateSelector>(
                      manifest, session, capacity, objective,
                      core::OnlineOptions{.startup_level = 3}));
  table.print();

  std::printf("\n(Four fixed-5.8 clients need 23.2 Mbps the link rarely has ->\n"
              "stalls; the context-aware fleet asks for far less than the link\n"
              "offers, so it is both fair and stall-free while spending the\n"
              "least energy.)\n");
}

void BM_MultiClientRun(benchmark::State& state) {
  const auto spec = media::evaluation_sessions()[0];
  const auto session = trace::build_session(spec);
  const media::VideoManifest manifest("shared", spec.length_s, 2.0,
                                      media::BitrateLadder::evaluation14());
  for (auto _ : state) {
    std::vector<std::unique_ptr<player::AbrPolicy>> policies;
    std::vector<player::ClientSetup> clients;
    for (std::size_t i = 0; i < static_cast<std::size_t>(state.range(0)); ++i) {
      policies.push_back(std::make_unique<abr::Festive>());
      clients.push_back({&manifest, policies.back().get(), &session, 0.0});
    }
    player::MultiClientSimulator simulator(session.throughput_mbps);
    benchmark::DoNotOptimize(simulator.run(clients));
  }
}
BENCHMARK(BM_MultiClientRun)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
