// Fleet fault-tolerance study: run_fleet_fault_study (DESIGN §14) over the
// scenario x intensity x policy grid on a 5k-session fleet, reporting the
// population QoE / energy / rebuffer deltas vs. clean plus the degradation-
// ladder counters (escape handoffs, backoff retries, abandonments, planner
// sheds, wasted energy). A second section times the checkpoint machinery:
// cut cost, sidecar size, and the resume-vs-uninterrupted overhead.
//
// `--json-append BENCH_baseline.json` upserts the "Fleet faults" record the
// committed baseline carries.

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.h"
#include "eacs/sim/fleet_checkpoint.h"
#include "eacs/sim/fleet_fault_study.h"

namespace {

using namespace eacs;

sim::FleetFaultStudyConfig study_config() {
  sim::FleetFaultStudyConfig config;  // default 16 cells, 8 regions
  config.fleet.num_sessions = 5000;
  config.intensities = {0.5, 1.0};
  // 4-cell regions with 2-cell fault domains: outages usually kill *part* of
  // a region, exercising the escape-handoff rung of the ladder, not just the
  // whole-region backoff rung.
  config.fleet.regions = 4;
  config.domain_cells = 2;
  return config;
}

std::string policy_name(sim::FleetPolicy policy) {
  return policy == sim::FleetPolicy::kPlanner ? "planner" : "throughput";
}

void print_reproduction() {
  bench::banner(
      "Fleet faults",
      "graceful degradation under correlated cell outages, brownouts, signal "
      "collapses and flash crowds: QoE/energy/rebuffer deltas vs clean, "
      "degradation-ladder counters, checkpoint/resume overhead");

  const auto config = study_config();
  const auto start = std::chrono::steady_clock::now();
  const sim::FleetFaultStudyResult result = sim::run_fleet_fault_study(config);
  const auto end = std::chrono::steady_clock::now();
  const double study_ms =
      std::chrono::duration<double, std::milli>(end - start).count();

  AsciiTable table("Fault grid, 5k sessions (deltas vs clean same-policy run)");
  table.set_header({"scenario", "intensity", "policy", "dQoE", "dE [J]",
                    "dstall [s]", "escapes", "retries", "abandoned", "sheds"});
  table.set_alignment({Align::kLeft, Align::kRight, Align::kLeft,
                       Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight});
  for (const sim::FleetFaultStudyCell& cell : result.cells) {
    table.add_row(
        {sim::to_string(cell.scenario), AsciiTable::num(cell.intensity, 2),
         policy_name(cell.policy), AsciiTable::num(cell.qoe_delta_vs_clean, 3),
         AsciiTable::num(cell.energy_delta_vs_clean_j, 1),
         AsciiTable::num(cell.rebuffer_delta_vs_clean_s, 2),
         std::to_string(cell.metrics.escape_handoffs),
         std::to_string(cell.metrics.backoff_retries),
         std::to_string(cell.metrics.abandoned_sessions),
         std::to_string(cell.metrics.policy_sheds)});
  }
  table.print();
  std::printf("full grid: %.0f ms (%zu fleet runs)\n\n", study_ms,
              result.cells.size() + result.baselines.size());

  // Headline metrics: the combined scenario at full intensity, both policies.
  for (const sim::FleetPolicy policy : config.policies) {
    const sim::FleetFaultStudyCell& cell =
        result.cell(sim::FleetFaultScenario::kCombined, 1.0, policy);
    const std::string tag = policy_name(policy);
    bench::record_metric("combined_qoe_delta_" + tag,
                         cell.qoe_delta_vs_clean);
    bench::record_metric("combined_energy_delta_j_" + tag,
                         cell.energy_delta_vs_clean_j);
    bench::record_metric(
        "combined_abandoned_" + tag,
        static_cast<double>(cell.metrics.abandoned_sessions));
    bench::record_metric(
        "combined_escapes_" + tag,
        static_cast<double>(cell.metrics.escape_handoffs));
    bench::record_metric("combined_degraded_s_" + tag,
                         cell.metrics.degraded_time_s);
    bench::record_metric("combined_wasted_j_" + tag,
                         cell.metrics.wasted_energy_j);
  }
  // Clean-baseline event counts: the no-op certification anchor (these must
  // match the un-faulted fleet bench bit for bit).
  bench::record_metric("clean_events_throughput",
                       static_cast<double>(result.baselines[0].events));
  bench::record_metric("clean_events_planner",
                       static_cast<double>(result.baselines[1].events));

  // Checkpoint/resume overhead on the combined-fault planner fleet.
  sim::FleetConfig fleet = config.fleet;
  fleet.policy = sim::FleetPolicy::kPlanner;
  {
    // Rebuild the combined spec exactly as the study does: one cell of the
    // study grid re-run standalone so the timing excludes the sweep.
    sim::FleetFaultStudyConfig one = config;
    one.scenarios = {sim::FleetFaultScenario::kCombined};
    one.intensities = {1.0};
    one.policies = {sim::FleetPolicy::kPlanner};
    const auto t0 = std::chrono::steady_clock::now();
    const sim::FleetMetrics uninterrupted =
        sim::run_fleet_fault_study(one)
            .cell(sim::FleetFaultScenario::kCombined, 1.0,
                  sim::FleetPolicy::kPlanner)
            .metrics;
    (void)uninterrupted;
    const auto t1 = std::chrono::steady_clock::now();
    fleet.faults.seeded.horizon_s = 2000.0;
    fleet.faults.seeded.outage_prob = 0.175;
    fleet.faults.seeded.brownout_prob = 0.25;
    const double cut_s = 300.0;
    const sim::FleetCheckpoint checkpoint =
        sim::run_fleet_until(fleet, cut_s);
    const auto t2 = std::chrono::steady_clock::now();
    const sim::FleetMetrics resumed = sim::resume_fleet(fleet, checkpoint);
    const auto t3 = std::chrono::steady_clock::now();
    (void)resumed;

    const std::string path =
        (std::filesystem::temp_directory_path() / "bench_fleet_faults.ckpt")
            .string();
    sim::save_fleet_checkpoint(checkpoint, path);
    const double sidecar_kb =
        static_cast<double>(std::filesystem::file_size(path)) / 1024.0;
    std::filesystem::remove(path);

    const double full_ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double cut_ms =
        std::chrono::duration<double, std::milli>(t2 - t1).count();
    const double resume_ms =
        std::chrono::duration<double, std::milli>(t3 - t2).count();
    std::printf("checkpoint @ %.0f s: cut %.0f ms + resume %.0f ms "
                "(uninterrupted %.0f ms), sidecar %.0f kB\n\n",
                cut_s, cut_ms, resume_ms, full_ms, sidecar_kb);
    bench::record_metric("checkpoint_cut_ms", cut_ms);
    bench::record_metric("checkpoint_resume_ms", resume_ms);
    bench::record_metric("checkpoint_sidecar_kb", sidecar_kb);
  }
}

void BM_FleetCombinedFaults(benchmark::State& state) {
  sim::FleetFaultStudyConfig config = study_config();
  config.scenarios = {sim::FleetFaultScenario::kCombined};
  config.intensities = {1.0};
  config.policies = {sim::FleetPolicy::kThroughput};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_fleet_fault_study(config));
  }
}
BENCHMARK(BM_FleetCombinedFaults)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

void BM_FleetCheckpointRoundTrip(benchmark::State& state) {
  sim::FleetConfig fleet = study_config().fleet;
  fleet.num_sessions = 2000;
  for (auto _ : state) {
    const sim::FleetCheckpoint checkpoint =
        sim::run_fleet_until(fleet, 200.0);
    benchmark::DoNotOptimize(sim::resume_fleet(fleet, checkpoint));
  }
}
BENCHMARK(BM_FleetCheckpointRoundTrip)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
