// Ablation: estimator windows.
//
// The paper fixes two windows: the vibration estimator's trailing window
// (0.2 * 30 s = 6 s of accelerometer data) and FESTIVE-style harmonic-mean
// depth (20 segment throughputs). This bench sweeps both on the roughest
// trace and reports the resulting energy/QoE plus estimator behaviour.

#include "bench_common.h"
#include "eacs/core/online.h"
#include "eacs/player/player.h"
#include "eacs/sim/metrics.h"
#include "eacs/trace/session.h"

namespace {

using namespace eacs;

void print_reproduction() {
  bench::banner("Ablation: estimator windows",
                "Vibration-window and bandwidth-window sweeps (trace 1)");

  const auto spec = media::evaluation_sessions()[0];
  const auto session = trace::build_session(spec);
  const media::VideoManifest manifest("trace1", spec.length_s, 2.0,
                                      media::BitrateLadder::evaluation14());
  const qoe::QoeModel qoe_model;
  const power::PowerModel power_model;
  core::ObjectiveConfig objective_config;
  const core::Objective objective(qoe_model, power_model, objective_config);

  AsciiTable vibration_table("Vibration window sweep (paper: 6 s)");
  vibration_table.set_header({"window (s)", "energy (J)", "QoE", "switches"});
  vibration_table.set_alignment({Align::kRight, Align::kRight, Align::kRight,
                                 Align::kRight});
  for (const double window_s : {1.5, 3.0, 6.0, 12.0, 24.0}) {
    player::PlayerConfig player_config;
    player_config.vibration.window_s = window_s;
    const player::PlayerSimulator simulator(manifest, player_config);
    core::OnlineBitrateSelector policy(objective, {.startup_level = 3});
    const auto playback = simulator.run(policy, session);
    const auto metrics = sim::compute_metrics("Ours", spec.id, playback, manifest,
                                              qoe_model, power_model);
    vibration_table.add_row({AsciiTable::num(window_s, 1),
                             AsciiTable::num(metrics.total_energy_j, 0),
                             AsciiTable::num(metrics.mean_qoe, 2),
                             std::to_string(metrics.switch_count)});
  }
  vibration_table.print();

  AsciiTable bandwidth_table("\nBandwidth-estimator depth sweep (paper: 20)");
  bandwidth_table.set_header({"window (segments)", "energy (J)", "QoE",
                              "rebuffer (s)", "switches"});
  bandwidth_table.set_alignment({Align::kRight, Align::kRight, Align::kRight,
                                 Align::kRight, Align::kRight});
  for (const std::size_t depth : {3UL, 5UL, 10UL, 20UL, 40UL}) {
    player::PlayerConfig player_config;
    player_config.bandwidth_window = depth;
    const player::PlayerSimulator simulator(manifest, player_config);
    core::OnlineBitrateSelector policy(objective, {.startup_level = 3});
    const auto playback = simulator.run(policy, session);
    const auto metrics = sim::compute_metrics("Ours", spec.id, playback, manifest,
                                              qoe_model, power_model);
    bandwidth_table.add_row({std::to_string(depth),
                             AsciiTable::num(metrics.total_energy_j, 0),
                             AsciiTable::num(metrics.mean_qoe, 2),
                             AsciiTable::num(metrics.rebuffer_s, 1),
                             std::to_string(metrics.switch_count)});
  }
  bandwidth_table.print();
}

void BM_VibrationEstimatorUpdate(benchmark::State& state) {
  sensors::VibrationConfig config;
  config.window_s = static_cast<double>(state.range(0));
  sensors::VibrationEstimator estimator(config);
  sensors::AccelSample sample{0.0, 0.1, 0.0, 9.9};
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.update(sample));
  }
}
BENCHMARK(BM_VibrationEstimatorUpdate)->Arg(3)->Arg(6)->Arg(24);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
