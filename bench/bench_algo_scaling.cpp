// Scaling: the optimal planner's cost as the task count and ladder size
// grow — Section IV-A puts the Fig. 4 shortest-path at O(M*N*log(M*N)) with
// Dijkstra; our DAG dynamic program is O(N*M^2). This bench times both and
// the online algorithm's per-decision latency (which must be negligible on
// a phone).

#include "bench_common.h"
#include "eacs/core/cost_stats.h"
#include "eacs/core/online.h"
#include "eacs/core/optimal.h"
#include "eacs/util/rng.h"

namespace {

using namespace eacs;

std::vector<core::TaskEnvironment> make_tasks(std::size_t n, std::size_t m,
                                              std::uint64_t seed) {
  eacs::Rng rng(seed);
  std::vector<core::TaskEnvironment> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    core::TaskEnvironment env;
    env.index = i;
    env.duration_s = 2.0;
    env.signal_dbm = rng.uniform(-115.0, -85.0);
    env.vibration = rng.uniform(0.0, 7.0);
    env.bandwidth_mbps = rng.uniform(2.0, 30.0);
    for (std::size_t level = 0; level < m; ++level) {
      env.size_megabits.push_back(0.2 * static_cast<double>(level + 1) * 2.0);
    }
    tasks.push_back(std::move(env));
  }
  return tasks;
}

core::Objective make_objective() {
  return core::Objective(qoe::QoeModel{}, power::PowerModel{},
                         core::ObjectiveConfig{});
}

void print_reproduction() {
  bench::banner("Algorithm scaling",
                "Optimal planner (DAG DP vs. Dijkstra) and online decision cost");
  std::printf("A %zu-segment video on the 14-rate ladder is planned in "
              "milliseconds;\nsee the timing benchmarks below for exact "
              "numbers on this machine.\n",
              std::size_t{300});
}

// Edges in the Fig. 4 layered graph: M first-layer edges plus M^2 between
// each adjacent pair of the remaining N-1 layers (sink edges are weightless).
double edges_per_plan(std::int64_t n, std::int64_t m) {
  return static_cast<double>(m + (n - 1) * m * m);
}

void BM_PlannerDagDp(benchmark::State& state) {
  const auto tasks = make_tasks(static_cast<std::size_t>(state.range(0)),
                                static_cast<std::size_t>(state.range(1)), 42);
  core::OptimalPlanner planner(make_objective());
  core::CostStats stats;
  std::uint64_t plans = 0;
  {
    core::CostStatsScope scope(stats);
    for (auto _ : state) {
      benchmark::DoNotOptimize(planner.plan(tasks, core::PlannerMethod::kDagDp));
      ++plans;
    }
  }
  if (plans > 0) {
    const double per_plan =
        static_cast<double>(stats.model_evals()) / static_cast<double>(plans);
    state.counters["model_evals_per_plan"] = per_plan;
    state.counters["evals_per_edge"] =
        per_plan / edges_per_plan(state.range(0), state.range(1));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_PlannerDagDp)
    ->Args({50, 6})
    ->Args({50, 14})
    ->Args({200, 14})
    ->Args({800, 14})
    ->Unit(benchmark::kMillisecond);

void BM_PlannerDijkstra(benchmark::State& state) {
  const auto tasks = make_tasks(static_cast<std::size_t>(state.range(0)),
                                static_cast<std::size_t>(state.range(1)), 42);
  core::OptimalPlanner planner(make_objective());
  core::CostStats stats;
  std::uint64_t plans = 0;
  {
    core::CostStatsScope scope(stats);
    for (auto _ : state) {
      benchmark::DoNotOptimize(planner.plan(tasks, core::PlannerMethod::kDijkstra));
      ++plans;
    }
  }
  if (plans > 0) {
    const double per_plan =
        static_cast<double>(stats.model_evals()) / static_cast<double>(plans);
    state.counters["model_evals_per_plan"] = per_plan;
    state.counters["evals_per_edge"] =
        per_plan / edges_per_plan(state.range(0), state.range(1));
  }
}
BENCHMARK(BM_PlannerDijkstra)
    ->Args({50, 14})
    ->Args({200, 14})
    ->Args({800, 14})
    ->Unit(benchmark::kMillisecond);

void BM_OnlineChooseLevel(benchmark::State& state) {
  const core::Objective objective = make_objective();
  core::OnlineBitrateSelector policy(objective, {.startup_level = 3});
  const media::VideoManifest manifest("bench", 600.0, 2.0,
                                      media::BitrateLadder::evaluation14());
  net::HarmonicMeanEstimator estimator(20);
  for (int i = 0; i < 20; ++i) estimator.observe(8.0 + (i % 7));
  player::AbrContext ctx;
  ctx.segment_index = 100;
  ctx.num_segments = manifest.num_segments();
  ctx.buffer_s = 28.0;
  ctx.prev_level = 7;
  ctx.startup_phase = false;
  ctx.manifest = &manifest;
  ctx.bandwidth = &estimator;
  ctx.vibration_level = 6.0;
  ctx.signal_dbm = -104.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.choose_level(ctx));
  }
}
BENCHMARK(BM_OnlineChooseLevel);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
