// Fig. 2(c): the QoE impairment surface I(v, r) over vibration level and
// bitrate. Paper spot checks (quoted in Section III-B): at 1.5 Mbps the
// impairment grows 0.049 -> 0.184 as vibration goes 2 -> 6; at 5.8 Mbps it
// grows 0.174 -> 0.549.

#include "bench_common.h"
#include "eacs/media/bitrate_ladder.h"
#include "eacs/qoe/model.h"

namespace {

using namespace eacs;

void print_reproduction() {
  bench::banner("Fig. 2(c)", "QoE impairment due to vibration, I(v, r)");
  const qoe::QoeModel model;
  const auto ladder = media::BitrateLadder::table2();

  AsciiTable table("I(v, r) over the (vibration, bitrate) grid");
  std::vector<std::string> header = {"v \\ r (Mbps)"};
  for (std::size_t level = 0; level < ladder.size(); ++level) {
    header.push_back(AsciiTable::num(ladder.bitrate(level), 2));
  }
  table.set_header(header);
  std::vector<Align> alignment(header.size(), Align::kRight);
  alignment[0] = Align::kLeft;
  table.set_alignment(alignment);
  for (double v = 0.0; v <= 7.0; v += 1.0) {
    std::vector<std::string> row = {AsciiTable::num(v, 0)};
    for (std::size_t level = 0; level < ladder.size(); ++level) {
      row.push_back(AsciiTable::num(
          model.vibration_impairment(v, ladder.bitrate(level)), 3));
    }
    table.add_row(row);
  }
  table.print();

  AsciiTable checks("\nPaper spot checks");
  checks.set_header({"(v, r)", "paper I", "model I"});
  checks.set_alignment({Align::kLeft, Align::kRight, Align::kRight});
  const std::pair<std::pair<double, double>, double> anchors[] = {
      {{2.0, 1.5}, 0.049}, {{6.0, 1.5}, 0.184}, {{2.0, 5.8}, 0.174},
      {{6.0, 5.8}, 0.549}};
  for (const auto& [vr, paper] : anchors) {
    checks.add_row({"(" + AsciiTable::num(vr.first, 0) + ", " +
                        AsciiTable::num(vr.second, 1) + ")",
                    AsciiTable::num(paper, 3),
                    AsciiTable::num(model.vibration_impairment(vr.first, vr.second), 3)});
  }
  checks.print();
}

void BM_ImpairmentSurface(benchmark::State& state) {
  const qoe::QoeModel model;
  double v = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.vibration_impairment(v, 3.0));
    v = v >= 7.0 ? 0.0 : v + 0.01;
  }
}
BENCHMARK(BM_ImpairmentSurface);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
