// Headline numbers for the unified SessionEngine's shared-link (stepped)
// mode: Jain fairness and single-run wall time as FESTIVE fleets of growing
// size ride one bottleneck. Complements bench_ext_fairness (which compares
// algorithms at a fixed fleet size); this bench tracks how the engine itself
// behaves and costs as the fleet grows.

#include <chrono>
#include <memory>
#include <vector>

#include "bench_common.h"
#include "eacs/abr/festive.h"
#include "eacs/media/manifest.h"
#include "eacs/player/multi_client.h"
#include "eacs/trace/session.h"

namespace {

using namespace eacs;

struct FleetRun {
  double fairness = 0.0;
  double mean_bitrate = 0.0;
  double total_rebuffer = 0.0;
  double wall_ms = 0.0;
  std::size_t events = 0;
};

FleetRun run_fleet(const media::VideoManifest& manifest,
                   const trace::SessionTraces& session, std::size_t num_clients) {
  std::vector<std::unique_ptr<player::AbrPolicy>> policies;
  std::vector<player::ClientSetup> clients;
  for (std::size_t i = 0; i < num_clients; ++i) {
    policies.push_back(std::make_unique<abr::Festive>());
    // Stagger joins by 1 s so the fleet ramps like real viewers, not in
    // lockstep.
    clients.push_back({&manifest, policies.back().get(), &session,
                       static_cast<double>(i) * 1.0});
  }
  player::MultiClientSimulator simulator(session.throughput_mbps);

  player::SessionTimeline timeline;
  const auto start = std::chrono::steady_clock::now();
  const auto results = simulator.run(clients, &timeline);
  const auto end = std::chrono::steady_clock::now();

  FleetRun run;
  run.wall_ms = std::chrono::duration<double, std::milli>(end - start).count();
  run.events = timeline.events().size();
  std::vector<double> bitrates;
  for (const auto& result : results) {
    bitrates.push_back(result.mean_bitrate_mbps());
    run.mean_bitrate += result.mean_bitrate_mbps() / static_cast<double>(num_clients);
    run.total_rebuffer += result.total_rebuffer_s;
  }
  run.fairness = player::jain_fairness(bitrates);
  return run;
}

void print_reproduction() {
  bench::banner("Multi-client session engine",
                "Jain fairness and wall time of the stepped shared-link mode");

  const auto spec = media::evaluation_sessions()[0];
  const auto session = trace::build_session(spec);
  const media::VideoManifest manifest("shared", spec.length_s, 2.0,
                                      media::BitrateLadder::evaluation14());

  AsciiTable table("FESTIVE fleets on the session-1 bottleneck (staggered joins)");
  table.set_header({"clients", "Jain fairness", "mean bitrate (Mbps)",
                    "fleet rebuffer (s)", "wall time (ms)", "timeline events"});
  table.set_alignment({Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight});

  for (const std::size_t clients : {1U, 2U, 4U, 8U}) {
    const FleetRun run = run_fleet(manifest, session, clients);
    table.add_row({std::to_string(clients), AsciiTable::num(run.fairness, 3),
                   AsciiTable::num(run.mean_bitrate, 2),
                   AsciiTable::num(run.total_rebuffer, 1),
                   AsciiTable::num(run.wall_ms, 1), std::to_string(run.events)});
    const std::string suffix = "_clients" + std::to_string(clients);
    bench::record_metric("jain_fairness" + suffix, run.fairness);
    bench::record_metric("wall_ms" + suffix, run.wall_ms);
    bench::record_metric("mean_bitrate_mbps" + suffix, run.mean_bitrate);
    bench::record_metric("fleet_rebuffer_s" + suffix, run.total_rebuffer);
  }
  table.print();

  std::printf("\n(Fairness stays high because processor sharing splits the link\n"
              "equally and every client runs the same policy; wall time grows\n"
              "roughly linearly with the fleet because the step grid is fixed\n"
              "and each step touches every client once.)\n");
}

void BM_SessionEngineStepped(benchmark::State& state) {
  const auto spec = media::evaluation_sessions()[0];
  const auto session = trace::build_session(spec);
  const media::VideoManifest manifest("shared", spec.length_s, 2.0,
                                      media::BitrateLadder::evaluation14());
  const auto num_clients = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    std::vector<std::unique_ptr<player::AbrPolicy>> policies;
    std::vector<player::ClientSetup> clients;
    for (std::size_t i = 0; i < num_clients; ++i) {
      policies.push_back(std::make_unique<abr::Festive>());
      clients.push_back({&manifest, policies.back().get(), &session,
                         static_cast<double>(i) * 1.0});
    }
    player::MultiClientSimulator simulator(session.throughput_mbps);
    benchmark::DoNotOptimize(simulator.run(clients));
  }
}
BENCHMARK(BM_SessionEngineStepped)
    ->Arg(1)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The observer contract says attaching a timeline never perturbs results; it
// should not meaningfully slow the run either. Same fleet, timeline attached.
void BM_SessionEngineSteppedWithTimeline(benchmark::State& state) {
  const auto spec = media::evaluation_sessions()[0];
  const auto session = trace::build_session(spec);
  const media::VideoManifest manifest("shared", spec.length_s, 2.0,
                                      media::BitrateLadder::evaluation14());
  for (auto _ : state) {
    std::vector<std::unique_ptr<player::AbrPolicy>> policies;
    std::vector<player::ClientSetup> clients;
    for (std::size_t i = 0; i < 4; ++i) {
      policies.push_back(std::make_unique<abr::Festive>());
      clients.push_back({&manifest, policies.back().get(), &session,
                         static_cast<double>(i) * 1.0});
    }
    player::MultiClientSimulator simulator(session.throughput_mbps);
    player::SessionTimeline timeline;
    benchmark::DoNotOptimize(simulator.run(clients, &timeline));
    benchmark::DoNotOptimize(timeline.events().size());
  }
}
BENCHMARK(BM_SessionEngineSteppedWithTimeline)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
