// SessionEngine inner-loop hot path: per-session latency of the analytic
// solo loop with the fast paths engaged (devirtualized downloader, stateful
// signal cursor) vs. SessionEngineConfig::reference_mode (original
// virtual-dispatch, binary-search-per-lookup code), over the five Table V
// sessions.
//
// Like bench_planner_hotpath, the certified claims are deterministic
// counters plus a bit-identity check, not wall-clock: the analytic loop
// consults the ABR policy exactly once per segment (policy_evals ==
// segments), and the fast-path result must bit-match reference_mode
// (tests/differential/ proves this across the whole scenario matrix; the CI
// perf-smoke leg re-pins it from the --json output here). The per-session
// latency is the local headline (see EXPERIMENTS.md).

#include <chrono>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "bench_common.h"
#include "eacs/abr/festive.h"
#include "eacs/media/manifest.h"
#include "eacs/player/session_engine.h"
#include "eacs/trace/session.h"

namespace {

using namespace eacs;

/// Delegating wrapper that counts choose_level consultations.
class CountingPolicy final : public player::AbrPolicy {
 public:
  explicit CountingPolicy(player::AbrPolicy& inner) : inner_(&inner) {}

  std::string name() const override { return inner_->name(); }
  std::size_t choose_level(const player::AbrContext& context) override {
    ++calls_;
    return inner_->choose_level(context);
  }
  void on_download_failure(const player::DownloadFailure& failure) override {
    inner_->on_download_failure(failure);
  }
  void reset() override { inner_->reset(); }

  std::uint64_t calls() const noexcept { return calls_; }

 private:
  player::AbrPolicy* inner_;
  std::uint64_t calls_ = 0;
};

const std::vector<trace::SessionTraces>& sessions() {
  static const std::vector<trace::SessionTraces> all = trace::build_all_sessions();
  return all;
}

media::VideoManifest manifest_for(const media::SessionSpec& spec) {
  return media::VideoManifest("trace" + std::to_string(spec.id), spec.length_s,
                              2.0, media::BitrateLadder::evaluation14());
}

player::PlaybackResult run_solo(const trace::SessionTraces& session,
                                const media::VideoManifest& manifest,
                                player::AbrPolicy& policy, bool reference_mode) {
  const player::SoloLinkModel link(session.throughput_mbps);
  const player::SessionClient client{&manifest, &policy, &session, 0.0};
  player::SessionEngineConfig config;
  config.reference_mode = reference_mode;
  const player::SessionEngine engine(config);
  auto results =
      engine.run(std::span<const player::SessionClient>(&client, 1), link);
  return std::move(results.front());
}

bool results_identical(const player::PlaybackResult& a,
                       const player::PlaybackResult& b) {
  if (a.tasks.size() != b.tasks.size()) return false;
  if (std::memcmp(&a.startup_delay_s, &b.startup_delay_s, sizeof(double)) != 0 ||
      std::memcmp(&a.total_rebuffer_s, &b.total_rebuffer_s, sizeof(double)) != 0 ||
      std::memcmp(&a.session_end_s, &b.session_end_s, sizeof(double)) != 0) {
    return false;
  }
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    if (a.tasks[i].level != b.tasks[i].level ||
        std::memcmp(&a.tasks[i].download_end_s, &b.tasks[i].download_end_s,
                    sizeof(double)) != 0 ||
        std::memcmp(&a.tasks[i].signal_dbm, &b.tasks[i].signal_dbm,
                    sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

template <typename F>
double best_of_ms(F&& fn, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (ms < best) best = ms;
  }
  return best;
}

void print_reproduction() {
  bench::banner("Session engine hot path",
                "Analytic solo loop: fast paths (devirtualized downloader, "
                "signal cursor) vs. reference_mode, per Table V session");

  std::printf("%8s %5s | %12s %12s %8s | %10s %12s %5s\n", "session", "segs",
              "ref ms", "fast ms", "speedup", "policy ev", "ev/segment",
              "bits");
  double best_fast_ms = 1e300;
  bool all_identical = true;
  for (const auto& session : sessions()) {
    const media::VideoManifest manifest = manifest_for(session.spec);

    // Deterministic counters + bit-identity (one instrumented run per path).
    abr::Festive inner;
    CountingPolicy counting(inner);
    const auto fast = run_solo(session, manifest, counting, false);
    const std::uint64_t policy_evals = counting.calls();
    abr::Festive reference_inner;
    const auto reference = run_solo(session, manifest, reference_inner, true);
    const bool identical = results_identical(fast, reference);
    if (!identical) all_identical = false;

    abr::Festive timed;
    const double fast_ms = best_of_ms(
        [&] { benchmark::DoNotOptimize(run_solo(session, manifest, timed, false)); },
        31);
    const double reference_ms = best_of_ms(
        [&] { benchmark::DoNotOptimize(run_solo(session, manifest, timed, true)); },
        31);
    if (fast_ms < best_fast_ms) best_fast_ms = fast_ms;

    const std::size_t segments = fast.tasks.size();
    std::printf("%8d %5zu | %12.3f %12.3f %7.2fx | %10llu %12.3f %5s\n",
                session.spec.id, segments, reference_ms, fast_ms,
                fast_ms > 0.0 ? reference_ms / fast_ms : 0.0,
                static_cast<unsigned long long>(policy_evals),
                segments > 0
                    ? static_cast<double>(policy_evals) / static_cast<double>(segments)
                    : 0.0,
                identical ? "yes" : "NO");

    const std::string suffix = "_s" + std::to_string(session.spec.id);
    bench::record_metric("solo_ms_reference" + suffix, reference_ms);
    bench::record_metric("solo_ms_fast" + suffix, fast_ms);
    if (session.spec.id == sessions().front().spec.id) {
      // The CI smoke pins the counter contract on one representative session
      // (it is structural, not data-dependent): one policy consultation per
      // segment, no hidden re-evaluations on the analytic path.
      bench::record_metric("segments_per_session",
                           static_cast<double>(segments));
      bench::record_metric("policy_evals_per_session",
                           static_cast<double>(policy_evals));
    }
  }
  bench::record_metric("solo_session_ms_best", best_fast_ms);
  bench::record_metric("fast_path_bit_identical", all_identical ? 1.0 : 0.0);
  std::printf("\nbest fast-path session: %.3f ms; fast paths bit-identical to "
              "reference_mode: %s\n(full-matrix certification: "
              "tests/differential/engine_diff_test.cpp)\n",
              best_fast_ms, all_identical ? "yes" : "NO");
}

void BM_SoloSessionFast(benchmark::State& state) {
  const auto& session = sessions().front();
  const media::VideoManifest manifest = manifest_for(session.spec);
  abr::Festive policy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_solo(session, manifest, policy, false));
  }
}
BENCHMARK(BM_SoloSessionFast)->Unit(benchmark::kMillisecond);

void BM_SoloSessionReference(benchmark::State& state) {
  const auto& session = sessions().front();
  const media::VideoManifest manifest = manifest_for(session.spec);
  abr::Festive policy;
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_solo(session, manifest, policy, true));
  }
}
BENCHMARK(BM_SoloSessionReference)->Unit(benchmark::kMillisecond);

void BM_CursorLinearAt(benchmark::State& state) {
  const auto& signal = sessions().front().signal_dbm;
  const double end = signal.end_time();
  trace::TimeSeriesCursor cursor(signal);
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cursor.linear_at(t));
    t += 0.37;
    if (t > end) t = 0.0;
  }
}
BENCHMARK(BM_CursorLinearAt);

void BM_BinarySearchLinearAt(benchmark::State& state) {
  const auto& signal = sessions().front().signal_dbm;
  const double end = signal.end_time();
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(signal.linear_at(t));
    t += 0.37;
    if (t > end) t = 0.0;
  }
}
BENCHMARK(BM_BinarySearchLinearAt);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
