// Extension: seed robustness of the headline results.
//
// Re-runs the whole Section V evaluation over 10 independently seeded trace
// ensembles (same Table V targets, fresh random realisations) and prints
// each headline metric's mean +/- stddev and min..max range — evidence that
// the reproduction's conclusions are properties of the system, not of one
// lucky trace draw.

#include "bench_common.h"
#include "eacs/sim/robustness.h"

namespace {

using namespace eacs;

void print_reproduction() {
  bench::banner("Extension: seed robustness",
                "Headline metrics across 10 independent trace ensembles");

  const auto result = sim::run_robustness_study({}, 10);

  const auto fmt = [](const eacs::RunningStats& stats) {
    return AsciiTable::percent(stats.mean(), 1) + " +/- " +
           AsciiTable::percent(stats.stddev(), 1) + "  [" +
           AsciiTable::percent(stats.min(), 1) + ", " +
           AsciiTable::percent(stats.max(), 1) + "]";
  };

  AsciiTable table("Distribution over " + std::to_string(result.runs) + " runs");
  table.set_header({"algorithm", "energy saving", "extra-energy saving",
                    "QoE degradation"});
  table.set_alignment({Align::kLeft, Align::kRight, Align::kRight, Align::kRight});
  for (const auto& algo : {"FESTIVE", "BBA", "Ours", "Optimal"}) {
    const auto& dist = result.per_algorithm.at(algo);
    table.add_row({algo, fmt(dist.energy_saving), fmt(dist.extra_energy_saving),
                   fmt(dist.qoe_degradation)});
  }
  table.print();

  const auto& ours = result.per_algorithm.at("Ours");
  const auto& festive = result.per_algorithm.at("FESTIVE");
  std::printf("\nWorst-case check: min(Ours saving) = %.1f%% still exceeds "
              "max(FESTIVE saving) = %.1f%% -> the ordering never flips.\n",
              ours.energy_saving.min() * 100.0, festive.energy_saving.max() * 100.0);
}

void BM_RobustnessRun(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_robustness_study({}, 1, 7));
  }
}
BENCHMARK(BM_RobustnessRun)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
