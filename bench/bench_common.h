#pragma once
// Shared scaffolding for the reproduction benches.
//
// Every bench binary reproduces one table or figure from the paper: main()
// prints the reproduced rows/series as ASCII tables (with the paper's
// reported values alongside where the paper quotes numbers), then hands over
// to google-benchmark for the timing cases the binary registers.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "eacs/util/table.h"

namespace eacs::bench {

/// Prints the experiment banner.
inline void banner(const char* experiment_id, const char* description) {
  std::printf("==============================================================\n");
  std::printf("Reproduction: %s\n", experiment_id);
  std::printf("%s\n", description);
  std::printf("==============================================================\n\n");
}

/// Standard main() tail: run the registered timing benchmarks.
inline int run_benchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  std::printf("\n-- timing benchmarks --\n");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace eacs::bench
