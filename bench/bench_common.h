#pragma once
// Shared scaffolding for the reproduction benches.
//
// Every bench binary reproduces one table or figure from the paper: main()
// prints the reproduced rows/series as ASCII tables (with the paper's
// reported values alongside where the paper quotes numbers), then hands over
// to google-benchmark for the timing cases the binary registers.
//
// Machine-readable output: pass `--json <path>` to any bench and it writes a
// JSON document with the experiment id, the headline metrics the bench
// recorded via record_metric(), and every google-benchmark timing run
// (captured by wrapping the console reporter). This is the format the
// committed BENCH_*.json baselines use; see README "Benchmark JSON output".
//
// `--json-append <path>` instead upserts the same record into a top-level
// JSON array file keyed by experiment id (the BENCH_baseline.json shape),
// via util::json_io — validated read, unique temp file, atomic rename — so
// repeated or concurrent bench runs can never truncate or interleave the
// snapshot.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "eacs/util/json_io.h"
#include "eacs/util/table.h"

namespace eacs::bench {
namespace detail {

/// Mutable bench-wide state behind the JSON output (single-threaded main).
struct JsonState {
  std::string experiment;  ///< stable snake_case id — the upsert key
  std::string title;       ///< human-readable banner title
  std::string description;
  std::vector<std::pair<std::string, double>> metrics;

  struct Timing {
    std::string name;
    std::int64_t iterations = 0;
    double real_time_ms = 0.0;
    double cpu_time_ms = 0.0;
    std::vector<std::pair<std::string, double>> counters;
  };
  std::vector<Timing> timings;

  static JsonState& instance() {
    static JsonState state;
    return state;
  }
};

inline std::string json_escaped(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

inline std::string json_number(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  // JSON has no inf/nan literals; null is the conventional stand-in.
  const std::string text = buf;
  if (text.find("inf") != std::string::npos ||
      text.find("nan") != std::string::npos) {
    return "null";
  }
  return text;
}

/// Console reporter that additionally captures each run for the JSON file.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration) continue;
      JsonState::Timing timing;
      timing.name = run.benchmark_name();
      timing.iterations = static_cast<std::int64_t>(run.iterations);
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      timing.real_time_ms = 1e3 * run.real_accumulated_time / iters;
      timing.cpu_time_ms = 1e3 * run.cpu_accumulated_time / iters;
      for (const auto& [name, counter] : run.counters) {
        timing.counters.emplace_back(name, counter.value);
      }
      JsonState::instance().timings.push_back(std::move(timing));
    }
    ConsoleReporter::ReportRuns(reports);
  }
};

/// Renders the current bench state as one JSON record. `indent` is prefixed
/// to every line so the record nests cleanly inside an array file.
inline std::string render_json_record(const std::string& indent = "") {
  const JsonState& state = JsonState::instance();
  std::string out;
  out += indent + "{\n";
  out += indent + "  \"experiment\": \"" + json_escaped(state.experiment) + "\",\n";
  out += indent + "  \"title\": \"" + json_escaped(state.title) + "\",\n";
  out += indent + "  \"description\": \"" + json_escaped(state.description) + "\",\n";
  out += indent + "  \"metrics\": {";
  for (std::size_t i = 0; i < state.metrics.size(); ++i) {
    out += (i == 0 ? "\n" : ",\n") + indent + "    \"" +
           json_escaped(state.metrics[i].first) +
           "\": " + json_number(state.metrics[i].second);
  }
  out += (state.metrics.empty() ? std::string{} : "\n" + indent + "  ") + "},\n";
  out += indent + "  \"benchmarks\": [";
  for (std::size_t i = 0; i < state.timings.size(); ++i) {
    const auto& t = state.timings[i];
    out += (i == 0 ? "\n" : ",\n");
    out += indent + "    {\"name\": \"" + json_escaped(t.name) + "\", " +
           "\"iterations\": " + std::to_string(t.iterations) + ", " +
           "\"real_time_ms\": " + json_number(t.real_time_ms) + ", " +
           "\"cpu_time_ms\": " + json_number(t.cpu_time_ms);
    for (const auto& [name, value] : t.counters) {
      out += ", \"" + json_escaped(name) + "\": " + json_number(value);
    }
    out += "}";
  }
  out += (state.timings.empty() ? std::string{} : "\n" + indent + "  ") + "]\n";
  out += indent + "}";
  return out;
}

inline void write_json(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open JSON output: " + path);
  out << render_json_record() << "\n";
  if (!out.good()) throw std::runtime_error("failed writing JSON: " + path);
}

}  // namespace detail

/// Prints the experiment banner and names the experiment in JSON output:
/// the prose title is kept as "title", and its util::snake_case_id becomes
/// the stable machine-readable "experiment" id that --json-append upserts
/// on ("Extension: CDN failover" -> "extension_cdn_failover").
inline void banner(const char* title, const char* description) {
  detail::JsonState::instance().experiment = util::snake_case_id(title);
  detail::JsonState::instance().title = title;
  detail::JsonState::instance().description = description;
  std::printf("==============================================================\n");
  std::printf("Reproduction: %s\n", title);
  std::printf("%s\n", description);
  std::printf("==============================================================\n\n");
}

/// Records one headline metric (e.g. an energy-saving percentage) for the
/// `--json` output. Later records with the same name overwrite the value.
inline void record_metric(const std::string& name, double value) {
  auto& metrics = detail::JsonState::instance().metrics;
  for (auto& [existing, existing_value] : metrics) {
    if (existing == name) {
      existing_value = value;
      return;
    }
  }
  metrics.emplace_back(name, value);
}

/// Standard main() tail: strip `--json <path>` / `--json-append <path>`, run
/// the registered timing benchmarks, and write (or upsert into an array
/// file) the JSON document when requested.
inline int run_benchmarks(int argc, char** argv) {
  std::string json_path;
  std::string append_path;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json" || arg == "--json-append") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s requires a path\n", arg.c_str());
        return 1;
      }
      (arg == "--json" ? json_path : append_path) = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) return 1;
  std::printf("\n-- timing benchmarks --\n");
  detail::CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) {
    detail::write_json(json_path);
    std::printf("JSON results written to %s\n", json_path.c_str());
  }
  if (!append_path.empty()) {
    util::upsert_json_array_record(append_path,
                                   detail::render_json_record("  "));
    std::printf("JSON record upserted into %s\n", append_path.c_str());
  }
  return 0;
}

}  // namespace eacs::bench
