// Extension: graceful degradation under sensor faults.
//
// The context-aware algorithm plans on two sensed inputs — accelerometer
// vibration and LTE signal strength. This bench corrupts what the policy
// *perceives* (dropout, stuck-at, noise, saturation, NaN, rate collapse on
// the accel stream; dropout on telephony readings) while the physical
// session stays clean, and reports how far degraded-context Ours drifts from
// clean-context Ours and whether it stays ahead of a context-blind baseline
// (BBA). The whole table is deterministic in the study seed.

#include "bench_common.h"
#include "eacs/sim/sensor_fault_study.h"

namespace {

using namespace eacs;

void print_reproduction() {
  bench::banner("Extension: sensor faults",
                "Fault scenario x intensity sweep of degraded-context Ours");

  sim::SensorFaultStudyConfig config;
  const auto result = sim::run_sensor_fault_study(config);

  std::printf("Clean-context Ours: QoE %.3f, energy %.1f J | context-blind "
              "BBA: QoE %.3f, energy %.1f J\n\n",
              result.clean_ours.mean_qoe, result.clean_ours.total_energy_j,
              result.context_blind.mean_qoe, result.context_blind.total_energy_j);

  AsciiTable table("Degraded-context Ours vs. clean context and context-blind");
  table.set_header({"fault", "intensity", "QoE", "QoE d clean", "QoE d blind",
                    "energy d J", "rebuffer d s", "ctx err"});
  table.set_alignment({Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight, Align::kRight, Align::kRight});
  for (const auto& cell : result.cells) {
    table.add_row({to_string(cell.scenario), AsciiTable::num(cell.intensity, 2),
                   AsciiTable::num(cell.mean_qoe, 3),
                   AsciiTable::num(cell.qoe_delta_vs_clean, 3),
                   AsciiTable::num(cell.qoe_delta_vs_blind, 3),
                   AsciiTable::num(cell.energy_delta_vs_clean_j, 1),
                   AsciiTable::num(cell.rebuffer_delta_vs_clean_s, 1),
                   AsciiTable::num(cell.mean_context_error, 2)});
  }
  table.print();

  const auto& total_dropout =
      result.cell(sim::SensorFaultScenario::kDropout, 1.0);
  std::printf(
      "\nTotal accelerometer loss: QoE drifts %.3f from clean context while "
      "the conservative-prior fallback keeps the policy planning (context "
      "error %.2f m/s^2, rebuffer delta %.1f s).\n",
      total_dropout.qoe_delta_vs_clean, total_dropout.mean_context_error,
      total_dropout.rebuffer_delta_vs_clean_s);

  bench::record_metric("clean_ours_qoe", result.clean_ours.mean_qoe);
  bench::record_metric("clean_ours_energy_j", result.clean_ours.total_energy_j);
  bench::record_metric("blind_qoe", result.context_blind.mean_qoe);
  bench::record_metric("dropout100_qoe_delta_vs_clean",
                       total_dropout.qoe_delta_vs_clean);
  bench::record_metric("dropout100_energy_delta_vs_clean_j",
                       total_dropout.energy_delta_vs_clean_j);
  bench::record_metric("dropout100_context_error",
                       total_dropout.mean_context_error);
  const auto& combined = result.cell(sim::SensorFaultScenario::kCombined, 1.0);
  bench::record_metric("combined_qoe_delta_vs_clean",
                       combined.qoe_delta_vs_clean);
  bench::record_metric("combined_qoe_delta_vs_blind",
                       combined.qoe_delta_vs_blind);
}

void BM_SensorFaultStudyCell(benchmark::State& state) {
  sim::SensorFaultStudyConfig config;
  config.scenarios = {sim::SensorFaultScenario::kCombined};
  config.intensities = {1.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_sensor_fault_study(config));
  }
}
BENCHMARK(BM_SensorFaultStudyCell)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
