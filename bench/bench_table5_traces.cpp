// Table V: the five evaluation sessions — the paper's recorded values next
// to the measured statistics of our calibrated synthetic traces.

#include "bench_common.h"
#include "eacs/sensors/vibration.h"
#include "eacs/trace/session.h"
#include "eacs/util/stats.h"

namespace {

using namespace eacs;

void print_reproduction() {
  bench::banner("Table V", "Evaluation video traces (synthetic, calibrated)");

  const auto sessions = trace::build_all_sessions();

  AsciiTable table("Sessions: paper columns + measured synthetic statistics");
  table.set_header({"id", "length (s)", "paper size (MB)", "paper avg vib.",
                    "measured avg vib.", "mean signal (dBm)", "mean bw (Mbps)"});
  table.set_alignment({Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight, Align::kRight});
  for (const auto& session : sessions) {
    table.add_row({std::to_string(session.spec.id),
                   AsciiTable::num(session.spec.length_s, 0),
                   AsciiTable::num(session.spec.data_size_mb, 1),
                   AsciiTable::num(session.spec.avg_vibration, 2),
                   AsciiTable::num(sensors::mean_vibration_level(session.accel), 2),
                   AsciiTable::num(mean(session.signal_dbm.values()), 1),
                   AsciiTable::num(mean(session.throughput_mbps.values()), 1)});
  }
  table.print();
  std::printf("\n(The paper's data-size column describes its recorded YouTube "
              "sessions; in the\nsimulation each algorithm chooses its own "
              "download volume, so size is an output,\nnot an input.)\n");
}

void BM_BuildSession(benchmark::State& state) {
  const auto& spec = media::evaluation_sessions()[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(trace::build_session(spec));
  }
}
BENCHMARK(BM_BuildSession)->Unit(benchmark::kMillisecond);

void BM_VibrationEstimation(benchmark::State& state) {
  const auto session = trace::build_session(media::evaluation_sessions()[0]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sensors::mean_vibration_level(session.accel));
  }
}
BENCHMARK(BM_VibrationEstimation)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
