// Ablation: does the paper's algorithm ranking survive a stricter
// session-level QoE model?
//
// The paper scores QoE as the mean per-task quality. This bench re-scores
// the whole five-trace evaluation under the session aggregator
// (recency weighting, startup and stall-event penalties, oscillation term)
// and prints both scores side by side, plus the PID baseline (ref [4]) for
// extra coverage of the control-theoretic design space.

#include "bench_common.h"
#include "eacs/abr/bba.h"
#include "eacs/abr/festive.h"
#include "eacs/abr/fixed.h"
#include "eacs/abr/pid.h"
#include "eacs/core/online.h"
#include "eacs/qoe/session_qoe.h"
#include "eacs/sim/metrics.h"
#include "eacs/trace/session.h"

namespace {

using namespace eacs;

void print_reproduction() {
  bench::banner("Ablation: session-level QoE",
                "Per-task mean vs. session aggregator (recency/startup/stalls)");

  const auto sessions = trace::build_all_sessions();
  const qoe::QoeModel qoe_model;
  const power::PowerModel power_model;
  core::Objective objective(qoe_model, power_model, core::ObjectiveConfig{});

  abr::FixedBitrate youtube;
  abr::Festive festive;
  abr::Bba bba(5.0, 30.0);
  abr::PidController pid;
  core::OnlineBitrateSelector ours(objective, {.startup_level = 3});
  std::vector<player::AbrPolicy*> policies = {&youtube, &festive, &bba, &pid, &ours};

  AsciiTable table("Five-trace means under both QoE aggregations");
  table.set_header({"algorithm", "per-task mean QoE", "session MOS",
                    "startup pen.", "oscillation pen.", "energy (J)"});
  table.set_alignment({Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight});

  struct Score {
    std::string name;
    double task_qoe = 0.0;
    double session_mos = 0.0;
  };
  std::vector<Score> scores;
  for (player::AbrPolicy* policy : policies) {
    double task_qoe = 0.0;
    double session_mos = 0.0;
    double startup_pen = 0.0;
    double oscillation_pen = 0.0;
    double energy = 0.0;
    for (const auto& session : sessions) {
      const media::VideoManifest manifest(
          "trace" + std::to_string(session.spec.id), session.spec.length_s, 2.0,
          media::BitrateLadder::evaluation14());
      const player::PlayerSimulator simulator(manifest);
      const auto playback = simulator.run(*policy, session);
      task_qoe += sim::session_mean_qoe(playback, qoe_model) / 5.0;
      const auto breakdown = qoe::session_qoe(playback, qoe_model);
      session_mos += breakdown.mos / 5.0;
      startup_pen += breakdown.startup_penalty / 5.0;
      oscillation_pen += breakdown.oscillation_penalty / 5.0;
      energy += sim::session_energy_j(playback, power_model);
    }
    table.add_row({policy->name(), AsciiTable::num(task_qoe, 2),
                   AsciiTable::num(session_mos, 2), AsciiTable::num(startup_pen, 3),
                   AsciiTable::num(oscillation_pen, 3), AsciiTable::num(energy, 0)});
    scores.push_back({policy->name(), task_qoe, session_mos});
  }
  table.print();

  // Does the ordering change?
  const auto rank_of = [&](auto key) {
    std::vector<std::string> names;
    auto sorted = scores;
    std::sort(sorted.begin(), sorted.end(),
              [&](const Score& a, const Score& b) { return key(a) > key(b); });
    for (const auto& score : sorted) names.push_back(score.name);
    return names;
  };
  const auto by_task = rank_of([](const Score& s) { return s.task_qoe; });
  const auto by_session = rank_of([](const Score& s) { return s.session_mos; });
  std::printf("\nRanking by per-task QoE:  ");
  for (const auto& name : by_task) std::printf("%s ", name.c_str());
  std::printf("\nRanking by session MOS:   ");
  for (const auto& name : by_session) std::printf("%s ", name.c_str());
  std::printf("\n");
}

void BM_SessionQoe(benchmark::State& state) {
  const auto session = trace::build_session(media::evaluation_sessions()[0]);
  const media::VideoManifest manifest("trace1", session.spec.length_s, 2.0,
                                      media::BitrateLadder::evaluation14());
  const player::PlayerSimulator simulator(manifest);
  abr::Festive festive;
  const auto playback = simulator.run(festive, session);
  const qoe::QoeModel model;
  for (auto _ : state) {
    benchmark::DoNotOptimize(qoe::session_qoe(playback, model));
  }
}
BENCHMARK(BM_SessionQoe);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
