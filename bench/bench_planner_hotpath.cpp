// Planner hot path: plan latency and deterministic model-eval counters for
// the TaskCostTable cache vs. the uncached task_cost formulation, over
// N-segment x M-rung grids (the paper's evaluation uses 300 x 14).
//
// The certified claim is counter-based, not wall-clock: a cached plan
// performs exactly N*(2M+1) QoE/power model evaluations (one table per
// task), the reference formulation 4*(M + (N-1)*M^2) (four per edge). The
// CI perf-smoke leg pins those counters from the --json output; the >= 5x
// latency speedup is the local headline (see EXPERIMENTS.md).

#include <chrono>
#include <cinttypes>

#include "bench_common.h"
#include "eacs/core/cost_stats.h"
#include "eacs/core/horizon.h"
#include "eacs/core/optimal.h"
#include "eacs/core/pareto.h"
#include "eacs/util/rng.h"

namespace {

using namespace eacs;

std::vector<core::TaskEnvironment> make_tasks(std::size_t n, std::size_t m,
                                              std::uint64_t seed) {
  eacs::Rng rng(seed);
  std::vector<core::TaskEnvironment> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    core::TaskEnvironment env;
    env.index = i;
    env.duration_s = 2.0;
    env.signal_dbm = rng.uniform(-115.0, -85.0);
    env.vibration = rng.uniform(0.0, 7.0);
    env.bandwidth_mbps = rng.uniform(2.0, 30.0);
    for (std::size_t level = 0; level < m; ++level) {
      env.size_megabits.push_back(0.2 * static_cast<double>(level + 1) * 2.0);
    }
    tasks.push_back(std::move(env));
  }
  return tasks;
}

core::Objective make_objective() {
  return core::Objective(qoe::QoeModel{}, power::PowerModel{},
                         core::ObjectiveConfig{});
}

template <typename F>
double best_of_ms(F&& fn, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    const auto stop = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(stop - start).count();
    if (ms < best) best = ms;
  }
  return best;
}

void print_reproduction() {
  bench::banner("Planner hot path",
                "TaskCostTable cache vs. uncached task_cost: plan latency and "
                "deterministic model-eval counters");

  std::printf("%6s %4s | %12s %12s %8s | %14s %14s %10s\n", "N", "M",
              "ref ms", "cached ms", "speedup", "ref evals", "cached evals",
              "evals/edge");
  const struct { std::size_t n, m; } grids[] = {{50, 6}, {50, 14}, {300, 14},
                                                {800, 14}};
  for (const auto& grid : grids) {
    const auto tasks = make_tasks(grid.n, grid.m, 42);
    core::OptimalPlanner planner(make_objective());

    // Deterministic counters (single instrumented run per path).
    core::CostStats cached_stats;
    core::OptimalPlan cached_plan;
    {
      core::CostStatsScope scope(cached_stats);
      cached_plan = planner.plan(tasks, core::PlannerMethod::kDagDp);
    }
    core::CostStats reference_stats;
    core::OptimalPlan reference_plan;
    {
      core::CostStatsScope scope(reference_stats);
      reference_plan = planner.plan_reference(tasks);
    }
    if (cached_plan.levels != reference_plan.levels ||
        cached_plan.total_cost != reference_plan.total_cost) {
      std::printf("BIT-IDENTITY VIOLATION at N=%zu M=%zu\n", grid.n, grid.m);
    }

    const double cached_ms = best_of_ms(
        [&] { benchmark::DoNotOptimize(planner.plan(tasks)); }, 5);
    const double reference_ms = best_of_ms(
        [&] { benchmark::DoNotOptimize(planner.plan_reference(tasks)); }, 5);
    const double speedup = cached_ms > 0.0 ? reference_ms / cached_ms : 0.0;
    const double edges = static_cast<double>(
        grid.m + (grid.n - 1) * grid.m * grid.m);

    std::printf("%6zu %4zu | %12.3f %12.3f %7.1fx | %14" PRIu64
                " %14" PRIu64 " %10.4f\n",
                grid.n, grid.m, reference_ms, cached_ms, speedup,
                reference_stats.model_evals(), cached_stats.model_evals(),
                static_cast<double>(cached_stats.model_evals()) / edges);

    const std::string suffix =
        "_n" + std::to_string(grid.n) + "_m" + std::to_string(grid.m);
    bench::record_metric("plan_ms_reference" + suffix, reference_ms);
    bench::record_metric("plan_ms_cached" + suffix, cached_ms);
    bench::record_metric("plan_speedup" + suffix, speedup);
    bench::record_metric("model_evals_reference" + suffix,
                         static_cast<double>(reference_stats.model_evals()));
    bench::record_metric("model_evals_cached" + suffix,
                         static_cast<double>(cached_stats.model_evals()));
    bench::record_metric("edge_evals" + suffix,
                         static_cast<double>(cached_stats.edge_evals));
  }

  // Pareto alpha sweep: tables are built once and re-weighted per alpha
  // sample, so a 21-step sweep builds N tables instead of 21*N.
  {
    const std::size_t n = 120;
    const auto tasks = make_tasks(n, 14, 7);
    core::CostStats stats;
    {
      core::CostStatsScope scope(stats);
      benchmark::DoNotOptimize(
          core::compute_pareto_front(tasks, qoe::QoeModel{}, power::PowerModel{}, 21));
    }
    std::printf("\nPareto sweep (21 alphas, N=%zu): %" PRIu64
                " tables built (uncached formulation: %zu)\n",
                n, stats.tables_built, 21 * n);
    bench::record_metric("pareto_sweep21_tables_built",
                         static_cast<double>(stats.tables_built));
    bench::record_metric("pareto_sweep21_model_evals",
                         static_cast<double>(stats.model_evals()));
  }
  std::printf("\nCached plans are bit-identical to the reference formulation "
              "(certified by\ntests/property/cost_table_properties_test.cpp); "
              "counters above are exact and\nmachine-independent.\n");
}

void BM_PlanCached(benchmark::State& state) {
  const auto tasks = make_tasks(static_cast<std::size_t>(state.range(0)),
                                static_cast<std::size_t>(state.range(1)), 42);
  core::OptimalPlanner planner(make_objective());
  core::CostStats stats;
  std::uint64_t iterations = 0;
  {
    core::CostStatsScope scope(stats);
    for (auto _ : state) {
      benchmark::DoNotOptimize(planner.plan(tasks, core::PlannerMethod::kDagDp));
      ++iterations;
    }
  }
  if (iterations > 0) {
    state.counters["model_evals_per_plan"] =
        static_cast<double>(stats.model_evals()) / static_cast<double>(iterations);
  }
}
BENCHMARK(BM_PlanCached)
    ->Args({50, 14})
    ->Args({300, 14})
    ->Args({800, 14})
    ->Unit(benchmark::kMillisecond);

void BM_PlanReference(benchmark::State& state) {
  const auto tasks = make_tasks(static_cast<std::size_t>(state.range(0)),
                                static_cast<std::size_t>(state.range(1)), 42);
  core::OptimalPlanner planner(make_objective());
  core::CostStats stats;
  std::uint64_t iterations = 0;
  {
    core::CostStatsScope scope(stats);
    for (auto _ : state) {
      benchmark::DoNotOptimize(planner.plan_reference(tasks));
      ++iterations;
    }
  }
  if (iterations > 0) {
    state.counters["model_evals_per_plan"] =
        static_cast<double>(stats.model_evals()) / static_cast<double>(iterations);
  }
}
BENCHMARK(BM_PlanReference)
    ->Args({50, 14})
    ->Args({300, 14})
    ->Args({800, 14})
    ->Unit(benchmark::kMillisecond);

void BM_TableBuild(benchmark::State& state) {
  const auto tasks = make_tasks(static_cast<std::size_t>(state.range(0)),
                                static_cast<std::size_t>(state.range(1)), 42);
  const core::Objective objective = make_objective();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_cost_tables(objective, tasks, 30.0));
  }
}
BENCHMARK(BM_TableBuild)->Args({300, 14})->Unit(benchmark::kMillisecond);

void BM_HorizonDecisionCached(benchmark::State& state) {
  const core::Objective objective = make_objective();
  core::RollingHorizonSelector selector(objective, {.horizon = 5});
  const media::VideoManifest manifest("bench", 600.0, 2.0,
                                      media::BitrateLadder::evaluation14());
  net::HarmonicMeanEstimator estimator(20);
  for (int i = 0; i < 20; ++i) estimator.observe(8.0 + (i % 7));
  player::AbrContext ctx;
  ctx.segment_index = 100;
  ctx.num_segments = manifest.num_segments();
  ctx.buffer_s = 28.0;
  ctx.prev_level = 7;
  ctx.startup_phase = false;
  ctx.manifest = &manifest;
  ctx.bandwidth = &estimator;
  ctx.vibration_level = 6.0;
  ctx.signal_dbm = -104.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(selector.choose_level(ctx));
  }
}
BENCHMARK(BM_HorizonDecisionCached);

void BM_ParetoSweepCached(benchmark::State& state) {
  const auto tasks = make_tasks(120, 14, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_pareto_front(
        tasks, qoe::QoeModel{}, power::PowerModel{}, 21));
  }
}
BENCHMARK(BM_ParetoSweepCached)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
