// Extension: learned ABR (Pensieve-style at laptop scale).
//
// Trains a linear-sigmoid policy with the cross-entropy method on a fresh
// trace ensemble (train/test split: training traces use different seeds
// than the Table V evaluation set), then drops the trained policy into the
// standard five-trace evaluation next to the analytic algorithms.

#include "bench_common.h"
#include "eacs/abr/fixed.h"
#include "eacs/abr/learned.h"
#include "eacs/core/online.h"
#include "eacs/sim/evaluation.h"
#include "eacs/sim/training.h"

namespace {

using namespace eacs;

std::vector<trace::SessionTraces> training_sessions() {
  // Same Table V targets, disjoint seeds (train/test split).
  std::vector<trace::SessionTraces> sessions;
  for (media::SessionSpec spec : media::evaluation_sessions()) {
    spec.seed ^= 0x7EA1'11D5ULL;
    sessions.push_back(trace::build_session(spec));
  }
  return sessions;
}

void print_reproduction() {
  bench::banner("Extension: learned ABR",
                "CEM-trained linear policy vs. the analytic algorithms");

  std::printf("Training on a disjoint-seed trace ensemble (CEM, 32x12)...\n");
  sim::CemTrainer trainer(sim::CemTrainer::make_episodes(training_sessions()));
  const auto trained = trainer.train();
  std::printf("reward: %.4f (iteration bests: ", trained.final_reward);
  for (double reward : trained.reward_history) std::printf("%.3f ", reward);
  std::printf(")\nweights: [");
  for (double weight : trained.weights) std::printf("%.2f ", weight);
  std::printf("]\n  (order: bias, bandwidth, buffer, prev-level, vibration, signal)\n\n");

  // Evaluate on the default Table V sessions alongside the core algorithms.
  const auto sessions = trace::build_all_sessions();
  const qoe::QoeModel qoe_model;
  const power::PowerModel power_model;
  core::Objective objective(qoe_model, power_model, core::ObjectiveConfig{});

  abr::FixedBitrate youtube;
  core::OnlineBitrateSelector ours(objective, {.startup_level = 3});
  abr::LinearPolicy learned(trained.weights);

  AsciiTable table("Test-set comparison (five Table V traces)");
  table.set_header({"algorithm", "energy (J)", "saving", "mean QoE", "rebuffer (s)"});
  table.set_alignment({Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight});
  double youtube_energy = 0.0;
  for (player::AbrPolicy* policy :
       std::initializer_list<player::AbrPolicy*>{&youtube, &ours, &learned}) {
    double energy = 0.0;
    double qoe = 0.0;
    double rebuffer = 0.0;
    for (const auto& session : sessions) {
      const media::VideoManifest manifest(
          "trace" + std::to_string(session.spec.id), session.spec.length_s, 2.0,
          media::BitrateLadder::evaluation14());
      const player::PlayerSimulator simulator(manifest);
      const auto playback = simulator.run(*policy, session);
      const auto metrics = sim::compute_metrics(policy->name(), session.spec.id,
                                                playback, manifest, qoe_model,
                                                power_model);
      energy += metrics.total_energy_j;
      qoe += metrics.mean_qoe;
      rebuffer += metrics.rebuffer_s;
    }
    if (policy == &youtube) youtube_energy = energy;
    table.add_row({policy->name(), AsciiTable::num(energy, 0),
                   AsciiTable::percent(1.0 - energy / youtube_energy, 1),
                   AsciiTable::num(qoe / 5.0, 2), AsciiTable::num(rebuffer, 1)});
  }
  table.print();
  std::printf("\n(The learned policy discovers the same playbook as the analytic\n"
              "objective — back off under vibration and weak signal — from reward\n"
              "alone; the analytic algorithm needs no training data and\n"
              "generalises by construction.)\n");
}

void BM_CemIteration(benchmark::State& state) {
  auto sessions = training_sessions();
  sessions.resize(2);
  sim::CemTrainer trainer(sim::CemTrainer::make_episodes(std::move(sessions)));
  sim::CemConfig config;
  config.population = 8;
  config.elites = 2;
  config.iterations = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.train(config));
  }
}
BENCHMARK(BM_CemIteration)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_LearnedDecision(benchmark::State& state) {
  abr::LinearPolicy policy({0.0, 3.0, 1.0, 0.5, -4.0, 2.0});
  const media::VideoManifest manifest("bench", 600.0, 2.0,
                                      media::BitrateLadder::evaluation14());
  net::HarmonicMeanEstimator estimator(20);
  for (int i = 0; i < 20; ++i) estimator.observe(9.0);
  player::AbrContext ctx;
  ctx.segment_index = 42;
  ctx.num_segments = manifest.num_segments();
  ctx.buffer_s = 22.0;
  ctx.prev_level = 6;
  ctx.manifest = &manifest;
  ctx.bandwidth = &estimator;
  ctx.vibration_level = 5.0;
  ctx.signal_dbm = -103.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.choose_level(ctx));
  }
}
BENCHMARK(BM_LearnedDecision);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
