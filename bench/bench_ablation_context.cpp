// Ablation: context awareness.
//
// Runs the online algorithm with the vibration term enabled (the paper's
// context-aware objective) and disabled (an energy-aware-only variant, i.e.
// the objective still prices signal-dependent radio energy but treats every
// environment as a quiet room). Isolates how much of the system's behaviour
// comes from sensing the context rather than from the energy model alone.

#include "bench_common.h"
#include "eacs/sim/evaluation.h"

namespace {

using namespace eacs;

void print_reproduction() {
  bench::banner("Ablation: context awareness",
                "Online algorithm with and without the vibration term");

  const auto sessions = trace::build_all_sessions();

  sim::EvaluationConfig aware_config;
  sim::EvaluationConfig blind_config;
  blind_config.context_aware = false;
  const auto aware = sim::Evaluation(aware_config).run(sessions);
  const auto blind = sim::Evaluation(blind_config).run(sessions);

  AsciiTable table("Per-trace comparison of 'Ours'");
  table.set_header({"trace", "vibration", "energy aware+ctx (J)",
                    "energy aware-only (J)", "QoE aware+ctx", "QoE aware-only"});
  table.set_alignment({Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight});
  for (const auto& spec : media::evaluation_sessions()) {
    const auto& with_ctx = aware.row("Ours", spec.id);
    const auto& without_ctx = blind.row("Ours", spec.id);
    table.add_row({"trace" + std::to_string(spec.id),
                   AsciiTable::num(spec.avg_vibration, 2),
                   AsciiTable::num(with_ctx.total_energy_j, 0),
                   AsciiTable::num(without_ctx.total_energy_j, 0),
                   AsciiTable::num(with_ctx.mean_qoe, 2),
                   AsciiTable::num(without_ctx.mean_qoe, 2)});
  }
  table.print();

  std::printf("\nMean energy saving vs Youtube: context-aware %.1f%%, "
              "energy-aware-only %.1f%%\n",
              aware.mean_energy_saving("Ours") * 100.0,
              blind.mean_energy_saving("Ours") * 100.0);
  std::printf("Mean QoE degradation vs Youtube: context-aware %.1f%%, "
              "energy-aware-only %.1f%%\n",
              aware.mean_qoe_degradation("Ours") * 100.0,
              blind.mean_qoe_degradation("Ours") * 100.0);
  std::printf("\n(On weak-signal rides the two variants converge — the energy\n"
              "term alone already pushes the bitrate down; the vibration term\n"
              "is what keeps the bitrate low when the signal happens to be\n"
              "strong while the ride is rough.)\n");
}

void BM_AwareVsBlindDecision(benchmark::State& state) {
  core::ObjectiveConfig config;
  config.context_aware = state.range(0) != 0;
  const core::Objective objective(qoe::QoeModel{}, power::PowerModel{}, config);
  core::TaskEnvironment env;
  env.duration_s = 2.0;
  env.signal_dbm = -88.0;
  env.vibration = 6.5;
  env.bandwidth_mbps = 25.0;
  for (double r : media::BitrateLadder::evaluation14().bitrates()) {
    env.size_megabits.push_back(r * 2.0);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(objective.reference_level(env, 30.0));
  }
}
BENCHMARK(BM_AwareVsBlindDecision)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
