// Extension: signal-aware download scheduling.
//
// Given the bitrate plan the context-aware algorithm would pick, compare
// the radio energy of downloading each segment as early as possible (the
// standard player) against the DP schedule that defers through weak-signal
// valleys and batches into strong-signal windows, for several buffer caps.

#include "bench_common.h"
#include "eacs/core/optimal.h"
#include "eacs/core/prefetch.h"
#include "eacs/trace/session.h"

namespace {

using namespace eacs;

void print_reproduction() {
  bench::banner("Extension: prefetch scheduling",
                "ASAP vs. signal-aware DP download timing (radio energy only)");

  const auto spec = media::evaluation_sessions()[0];
  const auto session = trace::build_session(spec);
  const media::VideoManifest manifest("trace1", spec.length_s, 2.0,
                                      media::BitrateLadder::evaluation14());
  const qoe::QoeModel qoe_model;
  const power::PowerModel power_model;

  // The bitrate plan: what the paper's objective would choose with oracle
  // knowledge (scheduling is orthogonal to selection; we fix the selection).
  core::ObjectiveConfig objective_config;
  const core::Objective objective(qoe_model, power_model, objective_config);
  core::OptimalPlanner planner(objective);
  const auto tasks = core::build_task_environments(manifest, session);
  const auto bitrate_plan = planner.plan(tasks);

  AsciiTable table("Radio energy for the context-aware bitrate plan, trace 1");
  table.set_header({"buffer cap (s)", "ASAP (J)", "scheduled (J)", "saving",
                    "stalls (s)"});
  table.set_alignment({Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight});
  for (const double cap : {10.0, 30.0, 60.0, 120.0}) {
    core::PrefetchConfig config;
    config.buffer_cap_s = cap;
    core::PrefetchScheduler scheduler(manifest, bitrate_plan.levels,
                                      session.signal_dbm, session.throughput_mbps,
                                      power_model, config);
    const auto asap = scheduler.asap();
    const auto optimized = scheduler.optimize();
    table.add_row({AsciiTable::num(cap, 0), AsciiTable::num(asap.radio_energy_j, 1),
                   AsciiTable::num(optimized.radio_energy_j, 1),
                   AsciiTable::percent(
                       1.0 - optimized.radio_energy_j /
                                 std::max(1e-9, asap.radio_energy_j), 1),
                   AsciiTable::num(optimized.stall_s, 1)});
  }
  table.print();

  // Fixed 1080p plan: bigger transfers, bigger scheduling dividend.
  const std::vector<std::size_t> top_plan(manifest.num_segments(), 13);
  core::PrefetchScheduler top_scheduler(manifest, top_plan, session.signal_dbm,
                                        session.throughput_mbps, power_model);
  const auto top_asap = top_scheduler.asap();
  const auto top_optimized = top_scheduler.optimize();
  std::printf("\nFixed-1080p plan, 30 s cap: ASAP %.1f J -> scheduled %.1f J "
              "(%.1f%% radio saving)\n",
              top_asap.radio_energy_j, top_optimized.radio_energy_j,
              (1.0 - top_optimized.radio_energy_j / top_asap.radio_energy_j) * 100.0);
  std::printf("(Scheduling composes with bitrate adaptation: the paper picks\n"
              "*what* to fetch; this module picks *when*.)\n");
}

void BM_PrefetchOptimize(benchmark::State& state) {
  const auto spec = media::evaluation_sessions()[0];
  const auto session = trace::build_session(spec);
  const media::VideoManifest manifest("trace1", spec.length_s, 2.0,
                                      media::BitrateLadder::evaluation14());
  const power::PowerModel power_model;
  const std::vector<std::size_t> plan(manifest.num_segments(), 7);
  core::PrefetchScheduler scheduler(manifest, plan, session.signal_dbm,
                                    session.throughput_mbps, power_model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.optimize());
  }
}
BENCHMARK(BM_PrefetchOptimize)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
