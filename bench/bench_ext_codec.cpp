// Extension: objective quality vs. the subjective q0 curve.
//
// Simulates encoding synthetic source frames at every Table II rung
// (downsample to the rung's resolution + bitrate-driven quantisation,
// decode back to the display), measures PSNR/SSIM, and compares the
// resulting objective quality-vs-bitrate curve against the paper's fitted
// subjective q0(r): both should rise steeply through the low rungs and
// saturate at the top.

#include "bench_common.h"
#include "eacs/media/catalogue.h"
#include "eacs/media/codec.h"
#include "eacs/qoe/model.h"
#include "eacs/util/stats.h"

namespace {

using namespace eacs;

constexpr std::size_t kSourceW = 480;
constexpr std::size_t kSourceH = 270;

void print_reproduction() {
  bench::banner("Extension: codec quality",
                "Objective PSNR/SSIM per ladder rung vs. the subjective q0(r)");

  media::CodecConfig config;
  config.resolution_scale = 0.25;  // 480x270 source stands in for a display
  const auto ladder = media::BitrateLadder::table2();
  const qoe::QoeModel qoe_model;

  // Average over three content complexities.
  const char* source_names[] = {"Show", "Sintel", "Basketball"};
  std::vector<double> mean_ssim(ladder.size(), 0.0);
  std::vector<double> mean_psnr(ladder.size(), 0.0);
  for (const char* name : source_names) {
    media::FrameGenerator generator(kSourceW, kSourceH,
                                    media::test_video(name).profile);
    const media::Frame source = generator.next();
    for (std::size_t level = 0; level < ladder.size(); ++level) {
      const media::Frame decoded =
          media::simulate_encode(source, ladder.rung(level), config);
      mean_psnr[level] += media::psnr(source, decoded) / 3.0;
      mean_ssim[level] += media::ssim(source, decoded) / 3.0;
    }
  }

  AsciiTable table("Quality per rung (mean of 3 synthetic sources)");
  table.set_header({"bitrate (Mbps)", "resolution", "PSNR (dB)", "SSIM",
                    "subjective q0(r)"});
  table.set_alignment({Align::kRight, Align::kLeft, Align::kRight, Align::kRight,
                       Align::kRight});
  std::vector<double> q0_values;
  for (std::size_t level = 0; level < ladder.size(); ++level) {
    const double q0 = qoe_model.original_quality(ladder.bitrate(level));
    q0_values.push_back(q0);
    table.add_row({AsciiTable::num(ladder.bitrate(level), 3),
                   ladder.rung(level).resolution,
                   AsciiTable::num(mean_psnr[level], 1),
                   AsciiTable::num(mean_ssim[level], 3), AsciiTable::num(q0, 2)});
  }
  table.print();

  std::printf("\nRank correlation: SSIM and q0 rise together; Pearson(SSIM, q0) "
              "= %.3f\n",
              eacs::pearson(mean_ssim, q0_values));
  std::printf("(Objective evidence for the paper's subjective curve shape:\n"
              "steep below 480p, flat above 720p.)\n");
}

void BM_SimulateEncode(benchmark::State& state) {
  media::FrameGenerator generator(kSourceW, kSourceH,
                                  media::test_video("Sintel").profile);
  const media::Frame source = generator.next();
  media::CodecConfig config;
  config.resolution_scale = 0.25;
  const auto ladder = media::BitrateLadder::table2();
  const auto& rung = ladder.rung(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(media::simulate_encode(source, rung, config));
  }
}
BENCHMARK(BM_SimulateEncode)->Arg(0)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_Ssim(benchmark::State& state) {
  media::FrameGenerator generator(kSourceW, kSourceH,
                                  media::test_video("Sintel").profile);
  const media::Frame a = generator.next();
  const media::Frame b = generator.next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(media::ssim(a, b));
  }
}
BENCHMARK(BM_Ssim);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
