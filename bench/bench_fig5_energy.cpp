// Fig. 5: energy comparison of the five algorithms over the five traces.
//   (a) per-trace total energy;
//   (b) mean energy saving vs. YouTube, on the whole-phone and extra-energy
//       bases (paper: Ours 33% / Optimal 36% / FESTIVE 7% / BBA 4% whole;
//       Ours 77% / Optimal 80% / FESTIVE 15% / BBA 8% extra);
//   (c) base vs. extra energy decomposition for trace 1.

#include "bench_common.h"
#include "eacs/power/battery.h"
#include "eacs/sim/evaluation.h"

namespace {

using namespace eacs;

const sim::EvaluationResult& evaluation_result() {
  static const sim::EvaluationResult result = [] {
    const sim::Evaluation evaluation;
    return evaluation.run();
  }();
  return result;
}

void print_reproduction() {
  bench::banner("Fig. 5", "Energy comparison across algorithms and traces");
  const auto& result = evaluation_result();
  const auto algorithms = result.algorithms();

  AsciiTable per_trace("Fig. 5(a): total energy per trace (J)");
  std::vector<std::string> header = {"trace"};
  for (const auto& algo : algorithms) header.push_back(algo);
  per_trace.set_header(header);
  std::vector<Align> alignment(header.size(), Align::kRight);
  alignment[0] = Align::kLeft;
  per_trace.set_alignment(alignment);
  for (const auto& spec : media::evaluation_sessions()) {
    std::vector<std::string> row = {"trace" + std::to_string(spec.id)};
    for (const auto& algo : algorithms) {
      row.push_back(AsciiTable::num(result.row(algo, spec.id).total_energy_j, 0));
    }
    per_trace.add_row(row);
  }
  per_trace.print();

  AsciiTable savings("\nFig. 5(b): mean energy saving vs. Youtube");
  savings.set_header({"algorithm", "whole-phone", "paper", "extra-energy", "paper "});
  savings.set_alignment({Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                         Align::kRight});
  const std::pair<const char*, std::pair<const char*, const char*>> expectations[] = {
      {"FESTIVE", {"7%", "15%"}},
      {"BBA", {"4%", "8%"}},
      {"Ours", {"33%", "77%"}},
      {"Optimal", {"36%", "80%"}},
  };
  for (const auto& [algo, paper] : expectations) {
    savings.add_row({algo, AsciiTable::percent(result.mean_energy_saving(algo), 1),
                     paper.first,
                     AsciiTable::percent(result.mean_extra_energy_saving(algo), 1),
                     paper.second});
    bench::record_metric(std::string("energy_saving_") + algo,
                         result.mean_energy_saving(algo));
    bench::record_metric(std::string("extra_energy_saving_") + algo,
                         result.mean_extra_energy_saving(algo));
  }
  savings.print();
  for (const auto& algo : algorithms) {
    double energy = 0.0;
    for (const auto& row : result.rows_for(algo)) energy += row.total_energy_j;
    bench::record_metric("total_energy_j_" + algo, energy);
  }

  // What the joules mean for a user: continuous streaming hours on the
  // paper's handset (Nexus 5X, 2700 mAh).
  const power::Battery battery;
  double session_seconds = 0.0;
  for (const auto& spec : media::evaluation_sessions()) session_seconds += spec.length_s;
  AsciiTable hours("\nBattery perspective (Nexus 5X 2700 mAh): continuous streaming");
  hours.set_header({"algorithm", "mean power (W)", "hours per charge"});
  hours.set_alignment({Align::kLeft, Align::kRight, Align::kRight});
  for (const auto& algo : algorithms) {
    double energy = 0.0;
    for (const auto& row : result.rows_for(algo)) energy += row.total_energy_j;
    const double watts = energy / session_seconds;
    hours.add_row({algo, AsciiTable::num(watts, 2),
                   AsciiTable::num(battery.hours_at(watts), 1)});
  }
  hours.print();

  AsciiTable decomposition("\nFig. 5(c): base vs. extra energy, trace 1 (J)");
  decomposition.set_header({"algorithm", "base energy", "extra energy", "total"});
  decomposition.set_alignment({Align::kLeft, Align::kRight, Align::kRight,
                               Align::kRight});
  for (const auto& algo : algorithms) {
    const auto& row = result.row(algo, 1);
    decomposition.add_row({algo, AsciiTable::num(row.base_energy_j, 0),
                           AsciiTable::num(row.extra_energy_j, 0),
                           AsciiTable::num(row.total_energy_j, 0)});
  }
  decomposition.print();
}

void BM_FullEvaluation(benchmark::State& state) {
  for (auto _ : state) {
    const sim::Evaluation evaluation;
    benchmark::DoNotOptimize(evaluation.run());
  }
}
BENCHMARK(BM_FullEvaluation)->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_SingleSessionAllPolicies(benchmark::State& state) {
  const sim::Evaluation evaluation;
  const auto session = trace::build_session(media::evaluation_sessions()[0]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(evaluation.run({session}));
  }
}
BENCHMARK(BM_SingleSessionAllPolicies)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
