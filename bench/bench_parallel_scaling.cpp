// Parallel-scaling study: wall-clock speedup of every sim sweep as a
// function of ExecutionPolicy::jobs, plus a bit-identity check that the
// parallel results match the serial ones (the engine's core guarantee —
// see DESIGN.md, "Parallel execution model").
//
//   sweeps: Section V evaluation (run_evaluation, full Table V),
//           fault study (outage x failure grid), robustness ensemble,
//           CEM training rollouts.
//
// `--json <path>` additionally emits per-sweep wall times and speedups as
// headline metrics (this is how BENCH_baseline.json is produced).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "eacs/sim/evaluation.h"
#include "eacs/sim/fault_study.h"
#include "eacs/sim/robustness.h"
#include "eacs/sim/training.h"

namespace {

using namespace eacs;

const std::vector<std::size_t> kJobCounts = {1, 2, 4, 8};

sim::EvaluationConfig evaluation_config(std::size_t jobs) {
  sim::EvaluationConfig config;
  config.exec.jobs = jobs;
  return config;
}

sim::FaultStudyConfig fault_config(std::size_t jobs) {
  sim::FaultStudyConfig config;
  // A 2x2 grid keeps the sweep representative but bench-sized.
  config.outage_rates_per_min = {0.0, 1.0};
  config.failure_probs = {0.0, 0.1};
  config.evaluation.exec.jobs = jobs;
  return config;
}

const std::vector<sim::TrainingEpisode>& training_episodes() {
  static const std::vector<sim::TrainingEpisode> episodes = [] {
    auto sessions = trace::build_all_sessions();
    sessions.resize(2);  // two sessions keep a rollout bench-sized
    return sim::CemTrainer::make_episodes(std::move(sessions));
  }();
  return episodes;
}

sim::CemConfig cem_config(std::size_t jobs) {
  sim::CemConfig config;
  config.population = 16;
  config.elites = 4;
  config.iterations = 2;
  config.exec.jobs = jobs;
  return config;
}

bool rows_identical(const sim::EvaluationResult& a, const sim::EvaluationResult& b) {
  if (a.rows.size() != b.rows.size()) return false;
  for (std::size_t i = 0; i < a.rows.size(); ++i) {
    if (a.rows[i].algorithm != b.rows[i].algorithm ||
        a.rows[i].session_id != b.rows[i].session_id ||
        std::memcmp(&a.rows[i].total_energy_j, &b.rows[i].total_energy_j,
                    sizeof(double)) != 0 ||
        std::memcmp(&a.rows[i].mean_qoe, &b.rows[i].mean_qoe, sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

/// Times `fn(jobs)` for every entry of kJobCounts and returns the best-of-N
/// wall clock (ms) per job count. Repeats are interleaved round-robin across
/// job counts rather than nested per job count: single-shot timings on a
/// busy or single-core box are noise-dominated (the committed pre-arena
/// baseline recorded a spurious 0.71x "slowdown" that was mostly scheduler
/// jitter on top of real oversubscription), and back-to-back repeats of one
/// job count let slow machine drift masquerade as a jobs effect — the
/// round-robin spreads any drift evenly over all job counts.
std::vector<double> time_jobs_best_ms(const std::function<void(std::size_t)>& fn,
                                      int repeats = 5) {
  std::vector<double> best(kJobCounts.size(),
                           std::numeric_limits<double>::infinity());
  for (int r = 0; r < repeats; ++r) {
    for (std::size_t j = 0; j < kJobCounts.size(); ++j) {
      const auto start = std::chrono::steady_clock::now();
      fn(kJobCounts[j]);
      const auto end = std::chrono::steady_clock::now();
      best[j] = std::min(
          best[j],
          std::chrono::duration<double, std::milli>(end - start).count());
    }
  }
  return best;
}

struct SweepTimings {
  std::string name;
  std::vector<double> wall_ms;  // one entry per kJobCounts
  bool identical = true;        // parallel results bit-match serial
};

void print_reproduction() {
  // "v2" is deliberate: the pre-arena record in BENCH_baseline.json keeps the
  // "Parallel scaling" id, so appending this run (keyed by experiment id)
  // yields a before/after pair instead of overwriting the baseline.
  bench::banner("Parallel scaling v2",
                "Wall-clock speedup of the sim sweeps vs. ExecutionPolicy jobs "
                "(arena parallel_map, hw-clamped workers, engine fast path; "
                "best-of-5 timings)");
  std::printf("hardware threads: %u\n\n", std::thread::hardware_concurrency());

  std::vector<SweepTimings> sweeps;

  {
    SweepTimings t{"evaluation", {}, true};
    sim::EvaluationResult serial;
    for (const std::size_t jobs : kJobCounts) {
      const auto result = sim::Evaluation(evaluation_config(jobs)).run();
      if (jobs == 1) serial = result;
      else if (!rows_identical(serial, result)) t.identical = false;
    }
    t.wall_ms = time_jobs_best_ms(
        [&](std::size_t jobs) { sim::Evaluation(evaluation_config(jobs)).run(); });
    sweeps.push_back(std::move(t));
  }

  {
    SweepTimings t{"fault_study", {}, true};
    sim::FaultStudyResult serial;
    for (const std::size_t jobs : kJobCounts) {
      const auto result = sim::run_fault_study(fault_config(jobs));
      if (jobs == 1) {
        serial = result;
      } else {
        for (std::size_t i = 0; i < serial.cells.size(); ++i) {
          if (std::memcmp(&serial.cells[i].mean_qoe, &result.cells[i].mean_qoe,
                          sizeof(double)) != 0) {
            t.identical = false;
          }
        }
      }
    }
    t.wall_ms = time_jobs_best_ms(
        [&](std::size_t jobs) { sim::run_fault_study(fault_config(jobs)); });
    sweeps.push_back(std::move(t));
  }

  {
    SweepTimings t{"robustness", {}, true};
    sim::RobustnessResult serial;
    for (const std::size_t jobs : kJobCounts) {
      const auto result = sim::run_robustness_study({}, 4, 0xB0B5'7D1EULL,
                                                    sim::ExecutionPolicy{jobs});
      if (jobs == 1) {
        serial = result;
      } else {
        for (const auto& [algo, dist] : serial.per_algorithm) {
          const auto& other = result.per_algorithm.at(algo);
          if (dist.energy_saving.mean() != other.energy_saving.mean() ||
              dist.mean_qoe.mean() != other.mean_qoe.mean()) {
            t.identical = false;
          }
        }
      }
    }
    t.wall_ms = time_jobs_best_ms([&](std::size_t jobs) {
      sim::run_robustness_study({}, 4, 0xB0B5'7D1EULL, sim::ExecutionPolicy{jobs});
    });
    sweeps.push_back(std::move(t));
  }

  {
    SweepTimings t{"cem_training", {}, true};
    const sim::CemTrainer trainer(training_episodes());
    sim::TrainingResult serial;
    for (const std::size_t jobs : kJobCounts) {
      const auto result = trainer.train(cem_config(jobs));
      if (jobs == 1) {
        serial = result;
      } else if (std::memcmp(serial.weights.data(), result.weights.data(),
                             serial.weights.size() * sizeof(double)) != 0) {
        t.identical = false;
      }
    }
    t.wall_ms = time_jobs_best_ms(
        [&](std::size_t jobs) { trainer.train(cem_config(jobs)); });
    sweeps.push_back(std::move(t));
  }

  AsciiTable table("Wall clock per sweep (ms) and speedup vs. jobs=1");
  table.set_header({"sweep", "jobs=1", "jobs=2", "jobs=4", "jobs=8",
                    "speedup@8", "bit-identical"});
  table.set_alignment({Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight, Align::kRight});
  for (const auto& sweep : sweeps) {
    const double speedup = sweep.wall_ms.back() > 0.0
                               ? sweep.wall_ms.front() / sweep.wall_ms.back()
                               : 0.0;
    table.add_row({sweep.name, AsciiTable::num(sweep.wall_ms[0], 1),
                   AsciiTable::num(sweep.wall_ms[1], 1),
                   AsciiTable::num(sweep.wall_ms[2], 1),
                   AsciiTable::num(sweep.wall_ms[3], 1),
                   AsciiTable::num(speedup, 2), sweep.identical ? "yes" : "NO"});
    for (std::size_t j = 0; j < kJobCounts.size(); ++j) {
      bench::record_metric(
          sweep.name + "_ms_jobs" + std::to_string(kJobCounts[j]), sweep.wall_ms[j]);
    }
    bench::record_metric(sweep.name + "_speedup_jobs8", speedup);
    bench::record_metric(sweep.name + "_bit_identical", sweep.identical ? 1.0 : 0.0);
  }
  table.print();
}

void BM_EvaluationSweep(benchmark::State& state) {
  const auto config = evaluation_config(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::Evaluation(config).run());
  }
}
BENCHMARK(BM_EvaluationSweep)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

void BM_FaultStudySweep(benchmark::State& state) {
  const auto config = fault_config(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_fault_study(config));
  }
}
BENCHMARK(BM_FaultStudySweep)
    ->Arg(1)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

void BM_CemTrainSweep(benchmark::State& state) {
  const sim::CemTrainer trainer(training_episodes());
  const auto config = cem_config(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.train(config));
  }
}
BENCHMARK(BM_CemTrainSweep)
    ->Arg(1)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
