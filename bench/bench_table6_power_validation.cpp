// Table VI: power-model validation — analytic model vs. the (simulated)
// Monsoon power monitor, per Table II bitrate at -90 dBm. Paper: error ratio
// consistently < 3%, average 1.43%.

#include "bench_common.h"
#include "eacs/power/validation.h"

namespace {

using namespace eacs;
using namespace eacs::power;

void print_reproduction() {
  bench::banner("Table VI", "Power model validation vs. simulated Monsoon monitor");
  const PowerModel model;
  ValidationConfig config;  // 5 kHz Monsoon sampling, 300 s clip, -90 dBm

  const auto rows = validate_power_model(model, media::BitrateLadder::table2(), config);

  AsciiTable table("Measured vs. calculated energy (paper rows: 708/649/637/616/608/597 J)");
  table.set_header({"bitrate (Mbps)", "measured (J)", "calculated (J)", "error ratio"});
  table.set_alignment({Align::kRight, Align::kRight, Align::kRight, Align::kRight});
  for (auto it = rows.rbegin(); it != rows.rend(); ++it) {
    table.add_row({AsciiTable::num(it->bitrate_mbps, 3),
                   AsciiTable::num(it->measured_j, 2),
                   AsciiTable::num(it->calculated_j, 2),
                   AsciiTable::percent(it->error_ratio, 2)});
  }
  table.print();
  std::printf("\nMean error ratio: %.2f%% (paper: 1.43%%, always < 3%%)\n",
              mean_error_ratio(rows) * 100.0);
}

void BM_MonsoonMeasurement(benchmark::State& state) {
  MonsoonConfig channel;
  channel.sample_rate_hz = static_cast<double>(state.range(0));
  MonsoonSimulator monsoon(channel, PowerModel{});
  std::vector<ActivityInterval> timeline = {
      {0.0, 10.0, true, 3.0, true, -90.0, 20.0}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(monsoon.measure_energy(timeline));
  }
}
BENCHMARK(BM_MonsoonMeasurement)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_ValidationSweep(benchmark::State& state) {
  ValidationConfig config;
  config.monsoon.sample_rate_hz = 500.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        validate_power_model(PowerModel{}, media::BitrateLadder::table2(), config));
  }
}
BENCHMARK(BM_ValidationSweep)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
