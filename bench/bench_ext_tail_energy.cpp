// Extension: LTE tail energy vs. player pacing.
//
// The paper's per-byte model is pacing-blind. The RRC-aware accounting
// (power/rrc.h) exposes the effect the tail-energy literature reports: a
// larger buffer threshold clusters downloads into longer bursts separated by
// longer idle gaps, trading tail count against idle time. This bench sweeps
// the buffer threshold for the online algorithm on trace 1 and prints both
// accountings side by side.

#include "bench_common.h"
#include "eacs/core/online.h"
#include "eacs/player/player.h"
#include "eacs/sim/metrics.h"
#include "eacs/trace/session.h"

namespace {

using namespace eacs;

void print_reproduction() {
  bench::banner("Extension: tail energy",
                "Per-byte vs. RRC-aware radio accounting across buffer thresholds");

  const auto spec = media::evaluation_sessions()[0];
  const auto session = trace::build_session(spec);
  const qoe::QoeModel qoe_model;
  const power::PowerModel power_model;
  const power::RrcSimulator rrc{power::RrcConfig{}};

  AsciiTable table("Online algorithm on trace 1");
  table.set_header({"buffer B (s)", "per-byte total (J)", "RRC total (J)",
                    "tail (J)", "promotions", "tail time (s)"});
  table.set_alignment({Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight});

  for (const double threshold : {6.0, 15.0, 30.0, 60.0}) {
    player::PlayerConfig player_config;
    player_config.buffer_threshold_s = threshold;
    const media::VideoManifest manifest("trace1", spec.length_s, 2.0,
                                        media::BitrateLadder::evaluation14());
    const player::PlayerSimulator simulator(manifest, player_config);

    core::ObjectiveConfig objective_config;
    objective_config.buffer_threshold_s = threshold;
    core::Objective objective(qoe_model, power_model, objective_config);
    core::OnlineBitrateSelector policy(objective, {.startup_level = 3});

    const auto playback = simulator.run(policy, session);
    const auto metrics = sim::compute_metrics("Ours", spec.id, playback, manifest,
                                              qoe_model, power_model);
    const auto rrc_energy = sim::session_energy_rrc(playback, power_model, rrc);

    table.add_row({AsciiTable::num(threshold, 0),
                   AsciiTable::num(metrics.total_energy_j, 1),
                   AsciiTable::num(rrc_energy.total_j(), 1),
                   AsciiTable::num(rrc_energy.tail_j, 1),
                   std::to_string(rrc_energy.promotions),
                   AsciiTable::num(rrc_energy.tail_time_s, 1)});
  }
  table.print();
  std::printf("\n(RRC totals exceed the per-byte totals by the tail/idle/"
              "promotion overhead\nthe paper's model omits; the overhead "
              "shrinks as the buffer threshold grows\nand downloads batch "
              "into fewer bursts.)\n");
}

void BM_RrcAnalyze(benchmark::State& state) {
  const power::RrcSimulator rrc{power::RrcConfig{}};
  std::vector<power::TransferBurst> bursts;
  for (int i = 0; i < 300; ++i) {
    bursts.push_back({i * 2.0, i * 2.0 + 0.4});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rrc.analyze(bursts, 700.0));
  }
}
BENCHMARK(BM_RrcAnalyze);

void BM_RrcSessionEnergy(benchmark::State& state) {
  const auto spec = media::evaluation_sessions()[0];
  const auto session = trace::build_session(spec);
  const media::VideoManifest manifest("trace1", spec.length_s, 2.0,
                                      media::BitrateLadder::evaluation14());
  const player::PlayerSimulator simulator(manifest);
  core::Objective objective(qoe::QoeModel{}, power::PowerModel{},
                            core::ObjectiveConfig{});
  core::OnlineBitrateSelector policy(objective, {.startup_level = 3});
  const auto playback = simulator.run(policy, session);
  const power::PowerModel power_model;
  const power::RrcSimulator rrc{power::RrcConfig{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::session_energy_rrc(playback, power_model, rrc));
  }
}
BENCHMARK(BM_RrcSessionEnergy);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
