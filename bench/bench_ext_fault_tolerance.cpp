// Extension: fault tolerance of the Section V algorithms.
//
// Sweeps link-outage density x per-request failure probability over the
// Table V sessions, replaying every algorithm through the seeded fault
// injector and the player's retry machinery, and reports how QoE, energy,
// rebuffering and wasted download energy respond. The (0, 0) grid corner is
// the fault-free baseline every delta is measured against; the whole table
// is deterministic in the study seed.

#include "bench_common.h"
#include "eacs/sim/fault_study.h"

namespace {

using namespace eacs;

void print_reproduction() {
  bench::banner("Extension: fault tolerance",
                "Outage density x failure rate sweep over the Table V sessions");

  sim::FaultStudyConfig config;
  const auto result = sim::run_fault_study(config);

  AsciiTable table("QoE / energy / resilience vs. fault intensity");
  table.set_header({"algorithm", "outages/min", "fail prob", "QoE", "QoE d",
                    "rebuffer s", "wasted J", "retries", "abandoned"});
  table.set_alignment({Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight});
  for (const auto& cell : result.cells) {
    table.add_row({cell.algorithm, AsciiTable::num(cell.outage_rate_per_min, 1),
                   AsciiTable::num(cell.failure_prob, 2),
                   AsciiTable::num(cell.mean_qoe, 3),
                   AsciiTable::num(cell.qoe_delta, 3),
                   AsciiTable::num(cell.rebuffer_s, 1),
                   AsciiTable::num(cell.wasted_energy_j, 1),
                   std::to_string(cell.retries),
                   std::to_string(cell.abandoned_segments)});
  }
  table.print();

  const double worst_rate = config.outage_rates_per_min.back();
  const double worst_prob = config.failure_probs.back();
  const auto& ours = result.cell("Ours", worst_rate, worst_prob);
  const auto& youtube = result.cell("Youtube", worst_rate, worst_prob);
  std::printf(
      "\nHarshest cell (%.1f outages/min, p_fail=%.2f): Ours loses %.3f QoE and "
      "wastes %.1f J on aborted transfers; fixed-rate YouTube wastes %.1f J.\n",
      worst_rate, worst_prob, -ours.qoe_delta, ours.wasted_energy_j,
      youtube.wasted_energy_j);
}

void BM_FaultStudyCell(benchmark::State& state) {
  sim::FaultStudyConfig config;
  config.outage_rates_per_min = {1.5};
  config.failure_probs = {0.2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_fault_study(config));
  }
}
BENCHMARK(BM_FaultStudyCell)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
