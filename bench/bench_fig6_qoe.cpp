// Fig. 6: QoE comparison.
//   (a) per-trace QoE for each algorithm (YouTube best everywhere, but by a
//       small margin; trace 2 — the low-vibration session — scores highest);
//   (b) average QoE per algorithm;
//   (c) QoE degradation vs. YouTube (paper: Ours 3.5%, FESTIVE 3.3%,
//       BBA 2.1%).

#include "bench_common.h"
#include "eacs/abr/fixed.h"
#include "eacs/sim/evaluation.h"

namespace {

using namespace eacs;

void print_reproduction() {
  bench::banner("Fig. 6", "QoE comparison across algorithms and traces");
  const sim::Evaluation evaluation;
  const auto result = evaluation.run();
  const auto algorithms = result.algorithms();

  AsciiTable per_trace("Fig. 6(a): mean QoE per trace");
  std::vector<std::string> header = {"trace"};
  for (const auto& algo : algorithms) header.push_back(algo);
  per_trace.set_header(header);
  std::vector<Align> alignment(header.size(), Align::kRight);
  alignment[0] = Align::kLeft;
  per_trace.set_alignment(alignment);
  for (const auto& spec : media::evaluation_sessions()) {
    std::vector<std::string> row = {"trace" + std::to_string(spec.id)};
    for (const auto& algo : algorithms) {
      row.push_back(AsciiTable::num(result.row(algo, spec.id).mean_qoe, 2));
    }
    per_trace.add_row(row);
  }
  per_trace.print();

  AsciiTable averages("\nFig. 6(b): average QoE");
  averages.set_header({"algorithm", "mean QoE"});
  averages.set_alignment({Align::kLeft, Align::kRight});
  for (const auto& algo : algorithms) {
    averages.add_row({algo, AsciiTable::num(result.mean_qoe(algo), 2)});
    bench::record_metric("mean_qoe_" + algo, result.mean_qoe(algo));
  }
  averages.print();

  AsciiTable degradation("\nFig. 6(c): QoE degradation vs. Youtube");
  degradation.set_header({"algorithm", "degradation", "paper"});
  degradation.set_alignment({Align::kLeft, Align::kRight, Align::kRight});
  const std::pair<const char*, const char*> expectations[] = {
      {"FESTIVE", "3.3%"}, {"BBA", "2.1%"}, {"Ours", "3.5%"}, {"Optimal", "-"}};
  for (const auto& [algo, paper] : expectations) {
    degradation.add_row({algo, AsciiTable::percent(result.mean_qoe_degradation(algo), 1),
                         paper});
    bench::record_metric(std::string("qoe_degradation_") + algo,
                         result.mean_qoe_degradation(algo));
  }
  degradation.print();

  // Trace 2 (the smooth ride) should have the best QoE for every algorithm.
  bool trace2_best = true;
  for (const auto& algo : algorithms) {
    const double qoe2 = result.row(algo, 2).mean_qoe;
    for (int other : {1, 3, 4, 5}) {
      if (result.row(algo, other).mean_qoe > qoe2 + 1e-9) trace2_best = false;
    }
  }
  std::printf("\nTrace 2 (lowest vibration) scores best for every algorithm: %s\n",
              trace2_best ? "yes" : "no");
}

void BM_MetricsComputation(benchmark::State& state) {
  const sim::Evaluation evaluation;
  const auto session = trace::build_session(media::evaluation_sessions()[1]);
  const auto manifest = evaluation.manifest_for(session.spec);
  player::PlayerSimulator simulator(manifest);
  abr::FixedBitrate youtube;
  const auto playback = simulator.run(youtube, session);
  const qoe::QoeModel qoe_model;
  const power::PowerModel power_model;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::compute_metrics("Youtube", 2, playback, manifest,
                                                  qoe_model, power_model));
  }
}
BENCHMARK(BM_MetricsComputation);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
