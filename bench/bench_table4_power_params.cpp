// Table IV: the power-model parameters. (The table body did not survive the
// paper's OCR; we print our calibrated parameter set — the reconstruction
// documented in DESIGN.md — plus the derived quantities that anchor it to
// the paper's reported numbers.)

#include "bench_common.h"
#include "eacs/power/model.h"

namespace {

using namespace eacs;

void print_reproduction() {
  bench::banner("Table IV", "Power-model parameters (calibrated reconstruction)");
  const power::PowerModel model;
  const auto& p = model.params();

  AsciiTable table("Parameters");
  table.set_header({"parameter", "value", "meaning"});
  table.set_alignment({Align::kLeft, Align::kRight, Align::kLeft});
  table.add_row({"e_ref", AsciiTable::num(p.e_ref_j_per_mb, 3) + " J/MB",
                 "radio energy per MB at s_ref"});
  table.add_row({"s_ref", AsciiTable::num(p.s_ref_dbm, 0) + " dBm",
                 "reference signal strength"});
  table.add_row({"k", AsciiTable::num(p.k_per_db, 5) + " /dB",
                 "exponential growth of e(s) as signal weakens"});
  table.add_row({"P_base", AsciiTable::num(p.p_base_w, 2) + " W",
                 "screen + SoC floor during playback"});
  table.add_row({"c0", AsciiTable::num(p.c0_w, 3) + " W", "decode fixed cost"});
  table.add_row({"c1", AsciiTable::num(p.c1_w_per_mbps, 3) + " W/Mbps",
                 "decode cost growth with bitrate"});
  table.add_row({"P_pause", AsciiTable::num(p.p_pause_w, 2) + " W",
                 "screen-on power while stalled"});
  table.print();

  std::printf("\nAnchors this calibration reproduces:\n");
  std::printf("  100 MB at -90 dBm:  %6.1f J  (Fig. 1(a): 49 J)\n",
              model.download_energy(100.0, -90.0));
  std::printf("  100 MB at -115 dBm: %6.1f J  (Fig. 1(a): 193 J)\n",
              model.download_energy(100.0, -115.0));
  power::TaskEnergyInput clip;
  clip.play_s = 300.0;
  clip.signal_dbm = -90.0;
  clip.bitrate_mbps = 5.8;
  clip.size_mb = 5.8 * 300.0 / 8.0;
  std::printf("  300 s clip at 5.8 Mbps, -90 dBm: %6.1f J  (Table VI: 708 J)\n",
              model.task_energy(clip));
  clip.bitrate_mbps = 0.1;
  clip.size_mb = 0.1 * 300.0 / 8.0;
  std::printf("  300 s clip at 0.1 Mbps, -90 dBm: %6.1f J  (Table VI: 597 J)\n",
              model.task_energy(clip));
}

void BM_PlaybackPower(benchmark::State& state) {
  const power::PowerModel model;
  double r = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.playback_power(r));
    r = r >= 5.8 ? 0.1 : r + 0.01;
  }
}
BENCHMARK(BM_PlaybackPower);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
