// Extension: bandwidth-prediction accuracy.
//
// Scores the estimator design space (the paper's harmonic mean plus EMA,
// last-sample, Holt linear-trend and the LinkForecast-style signal-fused
// estimator) on next-segment throughput prediction over the five evaluation
// traces.

#include "bench_common.h"
#include "eacs/net/prediction.h"
#include "eacs/trace/session.h"

namespace {

using namespace eacs;

void print_reproduction() {
  bench::banner("Extension: bandwidth prediction",
                "Next-segment prediction error per estimator, five traces");

  const auto sessions = trace::build_all_sessions();
  const net::PredictionEvaluator evaluator(2.0);

  struct Entry {
    std::string name;
    double mae_sum = 0.0;
    double mape_sum = 0.0;
  };
  std::vector<Entry> totals = {{"last-sample"}, {"EMA(0.25)"}, {"harmonic-20"},
                               {"Holt linear"}, {"signal-fused"}};

  AsciiTable per_trace("Per-trace MAE (Mbps)");
  per_trace.set_header({"trace", "last-sample", "EMA(0.25)", "harmonic-20",
                        "Holt linear", "signal-fused"});
  per_trace.set_alignment({Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                           Align::kRight, Align::kRight});

  for (const auto& session : sessions) {
    net::LastSampleEstimator last;
    net::EmaEstimator ema(0.25);
    net::HarmonicMeanEstimator harmonic(20);
    net::HoltLinearEstimator holt;
    net::SignalAwareEstimator fused(trace::ThroughputModel{}, 20, 0.5);

    std::vector<net::PredictionScore> scores;
    scores.push_back(evaluator.score("last-sample", last, session.throughput_mbps));
    scores.push_back(evaluator.score("EMA(0.25)", ema, session.throughput_mbps));
    scores.push_back(evaluator.score("harmonic-20", harmonic, session.throughput_mbps));
    scores.push_back(evaluator.score("Holt linear", holt, session.throughput_mbps));
    scores.push_back(evaluator.score("signal-fused", fused, session.throughput_mbps,
                                     &session.signal_dbm));

    std::vector<std::string> row = {"trace" + std::to_string(session.spec.id)};
    for (std::size_t i = 0; i < scores.size(); ++i) {
      row.push_back(AsciiTable::num(scores[i].mae_mbps, 2));
      totals[i].mae_sum += scores[i].mae_mbps;
      totals[i].mape_sum += scores[i].mape;
    }
    per_trace.add_row(row);
  }
  per_trace.print();

  AsciiTable summary("\nFive-trace means");
  summary.set_header({"estimator", "MAE (Mbps)", "MAPE"});
  summary.set_alignment({Align::kLeft, Align::kRight, Align::kRight});
  for (const auto& entry : totals) {
    summary.add_row({entry.name, AsciiTable::num(entry.mae_sum / 5.0, 2),
                     AsciiTable::percent(entry.mape_sum / 5.0, 1)});
  }
  summary.print();
  std::printf("\n(The paper's harmonic mean trades a little accuracy for spike\n"
              "robustness; the signal-fused estimator shows what the cited\n"
              "LinkForecast line of work buys on these traces.)\n");
}

void BM_HarmonicObserveEstimate(benchmark::State& state) {
  net::HarmonicMeanEstimator estimator(20);
  double v = 5.0;
  for (auto _ : state) {
    estimator.observe(v);
    benchmark::DoNotOptimize(estimator.estimate());
    v = v > 20.0 ? 5.0 : v + 0.1;
  }
}
BENCHMARK(BM_HarmonicObserveEstimate);

void BM_SignalFusedEstimate(benchmark::State& state) {
  net::SignalAwareEstimator estimator(trace::ThroughputModel{}, 20, 0.5);
  double v = 5.0;
  for (auto _ : state) {
    estimator.observe_signal(-100.0 + (v - 5.0));
    estimator.observe(v);
    benchmark::DoNotOptimize(estimator.estimate());
    v = v > 20.0 ? 5.0 : v + 0.1;
  }
}
BENCHMARK(BM_SignalFusedEstimate);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
