// Fig. 2(b): the "original" (quiet-room) quality as a function of bitrate —
// simulated 20-subject study data points plus the least-squares fitted curve
// q0(r) = 5 - a * r^(-b).

#include "bench_common.h"
#include "eacs/qoe/subjective_study.h"

namespace {

using namespace eacs;
using namespace eacs::qoe;

void print_reproduction() {
  bench::banner("Fig. 2(b)", "Original quality vs. bitrate: study MOS + fitted curve");

  const QoeModelParams truth;
  StudyConfig config;
  SubjectiveStudy study(config, QoeModel{truth});
  const auto ratings = study.run();
  const auto mos = SubjectiveStudy::aggregate(ratings, config.vibration_bin);
  const auto fit = fit_qoe_model_from_ratings(ratings);
  const QoeModel fitted{fit.params};

  AsciiTable table("Quiet-room MOS vs fitted q0(r)");
  table.set_header({"bitrate (Mbps)", "study MOS", "fitted q0(r)", "model q0(r)"});
  table.set_alignment({Align::kRight, Align::kRight, Align::kRight, Align::kRight});
  for (const auto& point : mos) {
    if (point.vibration >= 1.0) continue;
    table.add_row({AsciiTable::num(point.bitrate_mbps, 3),
                   AsciiTable::num(point.mos, 2),
                   AsciiTable::num(fitted.original_quality(point.bitrate_mbps), 2),
                   AsciiTable::num(QoeModel{truth}.original_quality(point.bitrate_mbps), 2)});
  }
  table.print();

  std::printf("\nFitted curve: q0(r) = 5 - %.3f * r^(-%.3f)   (R^2 = %.4f)\n",
              fit.params.a, fit.params.b, fit.curve_fit.r_squared);
  std::printf("Paper Table III: a = 1.036, b = 0.429\n");
  std::printf("Saturation check: q0(5.8) - q0(3.0) = %.3f MOS "
              "(the paper: QoE barely improves beyond 720p)\n",
              fitted.original_quality(5.8) - fitted.original_quality(3.0));

  // Per-genre spread: why the paper averages over ten SI/TI-diverse videos.
  const auto per_video = fit_q0_per_video(ratings);
  AsciiTable genre_table("\nPer-genre fitted curves (content sensitivity)");
  genre_table.set_header({"video", "a", "b", "q0(0.375)", "q0(5.8)"});
  genre_table.set_alignment({Align::kLeft, Align::kRight, Align::kRight,
                             Align::kRight, Align::kRight});
  for (const auto& video_fit : per_video) {
    genre_table.add_row({video_fit.video, AsciiTable::num(video_fit.a, 3),
                         AsciiTable::num(video_fit.b, 3),
                         AsciiTable::num(video_fit.q_at_low, 2),
                         AsciiTable::num(video_fit.q_at_high, 2)});
  }
  genre_table.print();
  std::printf("(Complex genres sit lower at starved bitrates; the gap closes "
              "near the top —\nthe aggregate Table III curve averages this "
              "spread.)\n");
}

void BM_StudyRun(benchmark::State& state) {
  StudyConfig config;
  config.num_subjects = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    SubjectiveStudy study(config, QoeModel{});
    benchmark::DoNotOptimize(study.run());
  }
}
BENCHMARK(BM_StudyRun)->Arg(5)->Arg(20);

void BM_CurveFit(benchmark::State& state) {
  StudyConfig config;
  SubjectiveStudy study(config, QoeModel{});
  const auto ratings = study.run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit_qoe_model_from_ratings(ratings));
  }
}
BENCHMARK(BM_CurveFit);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
