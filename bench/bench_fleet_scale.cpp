// Fleet-scale throughput study: run_fleet (DESIGN §12) at 1k / 10k / 100k
// sessions, reporting sessions/sec, incremental bytes per session, and peak
// process RSS. The load-bearing claim is the O(live sessions) memory model:
// the RSS increment across a run is set by the peak live set (Little's law:
// arrival rate x session length), so bytes/session must FALL as the fleet
// grows while sessions/sec stays roughly flat.
//
// `--json-append BENCH_baseline.json` upserts the "Fleet scale" record the
// committed baseline carries.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "eacs/sim/fleet.h"

namespace {

using namespace eacs;

const std::vector<std::size_t> kFleetSizes = {1000, 10000, 100000};

sim::FleetConfig fleet_config(std::size_t sessions) {
  sim::FleetConfig config;  // 16 cells, 8 regions, 4 arrivals/s, 30 segments
  config.num_sessions = sessions;
  return config;
}

/// Reads one VmHWM/VmRSS-style field from /proc/self/status, in kB.
/// Returns 0 when the field is unavailable (non-Linux), keeping the bench
/// runnable everywhere.
double proc_status_kb(const char* field) {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind(field, 0) != 0) continue;
    std::istringstream parse(line.substr(std::string(field).size() + 1));
    double kb = 0.0;
    parse >> kb;
    return kb;
  }
  return 0.0;
}

struct FleetPoint {
  std::size_t sessions = 0;
  double wall_ms = 0.0;
  double sessions_per_sec = 0.0;
  double rss_delta_kb = 0.0;
  double bytes_per_session = 0.0;
  sim::FleetMetrics metrics;
};

void print_reproduction() {
  bench::banner(
      "Fleet scale",
      "run_fleet throughput and memory at 1k/10k/100k sessions: sessions/sec, "
      "incremental bytes/session (O(live) claim), peak RSS");

  std::vector<FleetPoint> points;
  for (const std::size_t sessions : kFleetSizes) {
    const auto config = fleet_config(sessions);
    // Warm-up allocates the arena + pools so the measured RSS delta is the
    // run's own working set, not one-time allocator growth.
    sim::run_fleet(fleet_config(1000));

    FleetPoint point;
    point.sessions = sessions;
    const double rss_before_kb = proc_status_kb("VmRSS");
    const auto start = std::chrono::steady_clock::now();
    point.metrics = sim::run_fleet(config);
    const auto end = std::chrono::steady_clock::now();
    point.wall_ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    point.rss_delta_kb = proc_status_kb("VmRSS") - rss_before_kb;
    if (point.rss_delta_kb < 0.0) point.rss_delta_kb = 0.0;
    point.sessions_per_sec = point.wall_ms > 0.0
                                 ? 1e3 * static_cast<double>(sessions) / point.wall_ms
                                 : 0.0;
    point.bytes_per_session =
        1024.0 * point.rss_delta_kb / static_cast<double>(sessions);
    points.push_back(std::move(point));
  }

  AsciiTable table("Fleet throughput and memory vs. fleet size");
  table.set_header({"sessions", "wall ms", "sessions/s", "events", "peak live",
                    "rss delta kB", "bytes/session"});
  table.set_alignment({Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight, Align::kRight});
  for (const auto& point : points) {
    table.add_row({std::to_string(point.sessions),
                   AsciiTable::num(point.wall_ms, 1),
                   AsciiTable::num(point.sessions_per_sec, 0),
                   std::to_string(point.metrics.events),
                   std::to_string(point.metrics.peak_live_sessions),
                   AsciiTable::num(point.rss_delta_kb, 0),
                   AsciiTable::num(point.bytes_per_session, 0)});
    const std::string tag = std::to_string(point.sessions / 1000) + "k";
    bench::record_metric("sessions_per_sec_" + tag, point.sessions_per_sec);
    bench::record_metric("bytes_per_session_" + tag, point.bytes_per_session);
    bench::record_metric("peak_live_sessions_" + tag,
                         static_cast<double>(point.metrics.peak_live_sessions));
    bench::record_metric("events_" + tag,
                         static_cast<double>(point.metrics.events));
    bench::record_metric("requests_" + tag,
                         static_cast<double>(point.metrics.requests));
  }
  table.print();

  const auto& big = points.back().metrics;
  AsciiTable dist("100k-session fleet distributions (streaming aggregates)");
  dist.set_header({"metric", "mean", "p50", "p90"});
  dist.set_alignment({Align::kLeft, Align::kRight, Align::kRight, Align::kRight});
  dist.add_row({"QoE", AsciiTable::num(big.qoe.mean(), 3),
                AsciiTable::num(big.qoe_quantile(0.5), 3),
                AsciiTable::num(big.qoe_quantile(0.9), 3)});
  dist.add_row({"energy [J]", AsciiTable::num(big.energy_j.mean(), 1),
                AsciiTable::num(big.energy_quantile(0.5), 1),
                AsciiTable::num(big.energy_quantile(0.9), 1)});
  dist.add_row({"rebuffer [s]", AsciiTable::num(big.rebuffer_s.mean(), 2),
                AsciiTable::num(big.rebuffer_quantile(0.5), 2),
                AsciiTable::num(big.rebuffer_quantile(0.9), 2)});
  dist.print();

  bench::record_metric("qoe_mean_100k", big.qoe.mean());
  bench::record_metric("energy_j_mean_100k", big.energy_j.mean());
  bench::record_metric("handoffs_100k", static_cast<double>(big.handoffs));
  bench::record_metric("peak_rss_mb", proc_status_kb("VmHWM") / 1024.0);
  std::printf("\npeak RSS (VmHWM): %.1f MB\n\n",
              proc_status_kb("VmHWM") / 1024.0);
}

void BM_RunFleet(benchmark::State& state) {
  const auto config = fleet_config(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_fleet(config));
  }
}
BENCHMARK(BM_RunFleet)
    ->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

void BM_RunFleetSerial(benchmark::State& state) {
  auto config = fleet_config(static_cast<std::size_t>(state.range(0)));
  config.exec = sim::ExecutionPolicy{1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_fleet(config));
  }
}
BENCHMARK(BM_RunFleetSerial)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
