// Ablation: Algorithm 1's smoothing rules (lines 5-10).
//
// The paper motivates the gradual one-level ramp-up and the buffer-checked
// step-down as protection against rebuffering and switch-impairment under
// network variation. This bench compares the full algorithm against a
// variant that jumps straight to the reference bitrate every segment.

#include "bench_common.h"
#include "eacs/core/online.h"
#include "eacs/player/player.h"
#include "eacs/sim/metrics.h"
#include "eacs/trace/session.h"

namespace {

using namespace eacs;

void print_reproduction() {
  bench::banner("Ablation: Algorithm 1 smoothing",
                "Gradual ramp / safe step-down vs. jump-to-reference");

  const qoe::QoeModel qoe_model;
  const power::PowerModel power_model;
  core::ObjectiveConfig objective_config;
  const core::Objective objective(qoe_model, power_model, objective_config);

  AsciiTable table("Per-trace comparison");
  table.set_header({"trace", "variant", "energy (J)", "QoE", "switches",
                    "rebuffer (s)"});
  table.set_alignment({Align::kLeft, Align::kLeft, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight});

  double smooth_switches = 0.0;
  double jump_switches = 0.0;
  double smooth_qoe = 0.0;
  double jump_qoe = 0.0;
  for (const auto& spec : media::evaluation_sessions()) {
    const auto session = trace::build_session(spec);
    const media::VideoManifest manifest("trace" + std::to_string(spec.id),
                                        spec.length_s, 2.0,
                                        media::BitrateLadder::evaluation14());
    const player::PlayerSimulator simulator(manifest);

    core::OnlineBitrateSelector smooth(
        objective, {.startup_level = 3, .display_name = "smooth"});
    core::OnlineBitrateSelector jump(
        objective,
        {.startup_level = 3, .display_name = "jump", .smoothing = false});

    for (auto* policy : {static_cast<player::AbrPolicy*>(&smooth),
                         static_cast<player::AbrPolicy*>(&jump)}) {
      const auto playback = simulator.run(*policy, session);
      const auto metrics = sim::compute_metrics(policy->name(), spec.id, playback,
                                                manifest, qoe_model, power_model);
      table.add_row({"trace" + std::to_string(spec.id), metrics.algorithm,
                     AsciiTable::num(metrics.total_energy_j, 0),
                     AsciiTable::num(metrics.mean_qoe, 2),
                     std::to_string(metrics.switch_count),
                     AsciiTable::num(metrics.rebuffer_s, 1)});
      if (metrics.algorithm == "smooth") {
        smooth_switches += double(metrics.switch_count);
        smooth_qoe += metrics.mean_qoe;
      } else {
        jump_switches += double(metrics.switch_count);
        jump_qoe += metrics.mean_qoe;
      }
    }
  }
  table.print();
  std::printf("\nTotals: smoothing %.0f switches (mean QoE %.2f) vs "
              "jump-to-reference %.0f switches (mean QoE %.2f)\n",
              smooth_switches, smooth_qoe / 5.0, jump_switches, jump_qoe / 5.0);
}

void BM_OnlineDecision(benchmark::State& state) {
  core::ObjectiveConfig config;
  const core::Objective objective(qoe::QoeModel{}, power::PowerModel{}, config);
  core::OnlineBitrateSelector policy(objective, {.startup_level = 3});
  const media::VideoManifest manifest("bench", 600.0, 2.0,
                                      media::BitrateLadder::evaluation14());
  net::HarmonicMeanEstimator estimator(20);
  for (int i = 0; i < 20; ++i) estimator.observe(10.0 + (i % 5));
  player::AbrContext ctx;
  ctx.segment_index = 50;
  ctx.num_segments = manifest.num_segments();
  ctx.buffer_s = 25.0;
  ctx.startup_phase = false;
  ctx.prev_level = 7;
  ctx.manifest = &manifest;
  ctx.bandwidth = &estimator;
  ctx.vibration_level = 5.0;
  ctx.signal_dbm = -102.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.choose_level(ctx));
  }
}
BENCHMARK(BM_OnlineDecision);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
