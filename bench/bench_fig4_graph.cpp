// Fig. 4: mapping the bitrate-selection problem to the shortest-path
// problem. Builds the explicit layered graph for a small instance, prints
// its structure and the Graphviz DOT form, cross-checks three independent
// solvers (explicit Bellman-Ford, implicit DAG-DP, per-layer-offset
// Dijkstra), and reports the paper's complexity claim against measured
// sizes.

#include "bench_common.h"
#include "eacs/core/graph.h"
#include "eacs/core/optimal.h"
#include "eacs/trace/session.h"

namespace {

using namespace eacs;

core::Objective make_objective() {
  return core::Objective(qoe::QoeModel{}, power::PowerModel{},
                         core::ObjectiveConfig{});
}

void print_reproduction() {
  bench::banner("Fig. 4", "The bitrate-selection graph, built explicitly");

  // Small illustrative instance: 3 tasks on the Table II 6-rate ladder.
  const auto session = trace::build_session(media::evaluation_sessions()[0]);
  const media::VideoManifest manifest("fig4", 6.0, 2.0,
                                      media::BitrateLadder::table2());
  const auto tasks = core::build_task_environments(manifest, session);
  const auto objective = make_objective();
  const auto graph = core::build_selection_graph(objective, tasks);

  std::printf("Instance: N = %zu tasks x M = %zu bitrates\n", graph.num_tasks,
              graph.num_levels);
  std::printf("Graph: %zu nodes (paper: N*M + 2 = %zu), %zu edges "
              "(M + (N-1)*M^2 + M = %zu)\n\n",
              graph.nodes.size(), graph.num_tasks * graph.num_levels + 2,
              graph.edges.size(),
              graph.num_levels +
                  (graph.num_tasks - 1) * graph.num_levels * graph.num_levels +
                  graph.num_levels);

  const auto path = core::bellman_ford_shortest_path(graph);
  core::OptimalPlanner planner(objective);
  const auto dp = planner.plan(tasks, core::PlannerMethod::kDagDp);
  const auto dijkstra = planner.plan(tasks, core::PlannerMethod::kDijkstra);

  AsciiTable table("Three independent shortest-path solvers");
  table.set_header({"solver", "total cost", "levels"});
  table.set_alignment({Align::kLeft, Align::kRight, Align::kLeft});
  const auto levels_text = [](const std::vector<std::size_t>& levels) {
    std::string out;
    for (std::size_t level : levels) out += std::to_string(level) + " ";
    return out;
  };
  table.add_row({"Bellman-Ford (explicit graph)", AsciiTable::num(path.total_cost, 6),
                 levels_text(path.levels)});
  table.add_row({"DAG dynamic program", AsciiTable::num(dp.total_cost, 6),
                 levels_text(dp.levels)});
  table.add_row({"offset Dijkstra (paper's choice)",
                 AsciiTable::num(dijkstra.total_cost, 6),
                 levels_text(dijkstra.levels)});
  table.print();

  std::printf("\nGraphviz DOT of the instance (render with `dot -Tpng`):\n\n%s\n",
              graph.to_dot().c_str());
}

void BM_BuildGraph(benchmark::State& state) {
  const auto session = trace::build_session(media::evaluation_sessions()[0]);
  const media::VideoManifest manifest(
      "fig4", static_cast<double>(state.range(0)) * 2.0, 2.0,
      media::BitrateLadder::evaluation14());
  const auto tasks = core::build_task_environments(manifest, session);
  const auto objective = make_objective();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_selection_graph(objective, tasks));
  }
}
BENCHMARK(BM_BuildGraph)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_BellmanFord(benchmark::State& state) {
  const auto session = trace::build_session(media::evaluation_sessions()[0]);
  const media::VideoManifest manifest(
      "fig4", static_cast<double>(state.range(0)) * 2.0, 2.0,
      media::BitrateLadder::evaluation14());
  const auto tasks = core::build_task_environments(manifest, session);
  const auto objective = make_objective();
  const auto graph = core::build_selection_graph(objective, tasks);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::bellman_ford_shortest_path(graph));
  }
}
BENCHMARK(BM_BellmanFord)->Arg(50)->Arg(200)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
