// Extension: the energy/QoE Pareto front.
//
// Materialises the trade-off curve behind the paper's Eq. 11 weighted sum:
// for trace 1 (rough ride) and trace 2 (smooth ride), sweep alpha, solve
// each weighting optimally, and print the non-dominated (energy, QoE)
// points with the knee highlighted. The paper's alpha = 0.5 operating point
// can be judged against the front's shape.

#include "bench_common.h"
#include "eacs/core/pareto.h"
#include "eacs/sim/evaluation.h"

namespace {

using namespace eacs;

void print_front_for(const media::SessionSpec& spec) {
  const auto session = trace::build_session(spec);
  const media::VideoManifest manifest("trace" + std::to_string(spec.id),
                                      spec.length_s, 2.0,
                                      media::BitrateLadder::evaluation14());
  const auto tasks = core::build_task_environments(manifest, session);
  const qoe::QoeModel qoe_model;
  const power::PowerModel power_model;
  const auto front = core::compute_pareto_front(tasks, qoe_model, power_model, 21);

  AsciiTable table("Trace " + std::to_string(spec.id) + " (avg vibration " +
                   AsciiTable::num(spec.avg_vibration, 2) + " m/s^2)");
  table.set_header({"alpha", "energy (J)", "mean QoE", ""});
  table.set_alignment({Align::kRight, Align::kRight, Align::kRight, Align::kLeft});
  for (std::size_t i = 0; i < front.points.size(); ++i) {
    const auto& point = front.points[i];
    table.add_row({AsciiTable::num(point.alpha, 2),
                   AsciiTable::num(point.energy_j, 0),
                   AsciiTable::num(point.mean_qoe, 3),
                   i == front.knee_index ? "<- knee" : ""});
  }
  table.print();
  std::printf("\n");
}

void print_reproduction() {
  bench::banner("Extension: Pareto front",
                "Optimal energy/QoE trade-off curve per trace (alpha sweep)");
  print_front_for(media::evaluation_sessions()[0]);
  print_front_for(media::evaluation_sessions()[1]);
  std::printf("(Each row is the *optimal* plan for its weighting; no plan can\n"
              "improve one column without worsening the other.)\n");
}

void BM_ParetoFront(benchmark::State& state) {
  const auto spec = media::evaluation_sessions()[0];
  const auto session = trace::build_session(spec);
  const media::VideoManifest manifest("trace1", spec.length_s, 2.0,
                                      media::BitrateLadder::evaluation14());
  const auto tasks = core::build_task_environments(manifest, session);
  const qoe::QoeModel qoe_model;
  const power::PowerModel power_model;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::compute_pareto_front(
        tasks, qoe_model, power_model, static_cast<std::size_t>(state.range(0))));
  }
}
BENCHMARK(BM_ParetoFront)->Arg(5)->Arg(21)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
