// Fig. 2(a): ITU-T P.910 spatial/temporal information of the test videos.
// The paper plots its ten YouTube videos spanning SI ~30-60, TI ~0-30; our
// synthetic stand-ins are measured with the same P.910 pipeline and must
// preserve the layout (speech bottom-left, sports/racing top-right).

#include "bench_common.h"
#include "eacs/media/catalogue.h"
#include "eacs/media/si_ti.h"

namespace {

using namespace eacs;

constexpr std::size_t kWidth = 128;
constexpr std::size_t kHeight = 96;
constexpr std::size_t kFrames = 8;

void print_reproduction() {
  bench::banner("Fig. 2(a)", "Spatial/temporal information of the test videos "
                             "(P.910 Sobel-stddev / frame-diff-stddev)");

  AsciiTable table("Measured SI/TI per synthetic stand-in");
  table.set_header({"video", "SI (measured)", "TI (measured)", "SI (target)",
                    "TI (target)"});
  table.set_alignment({Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight});
  double prev_si = 0.0;
  bool si_ordered = true;
  for (const auto& video : media::test_videos()) {
    media::FrameGenerator generator(kWidth, kHeight, video.profile);
    const auto frames = generator.generate(kFrames);
    const auto result = media::analyze_si_ti(frames);
    table.add_row({video.name, AsciiTable::num(result.si_mean, 1),
                   AsciiTable::num(result.ti_mean, 1),
                   AsciiTable::num(video.target_si, 0),
                   AsciiTable::num(video.target_ti, 0)});
    if (result.si_mean < prev_si) si_ordered = false;
    prev_si = result.si_mean;
  }
  table.print();
  std::printf("\nLayout check: SI strictly increases along the catalogue's "
              "complexity ordering: %s\n", si_ordered ? "yes" : "NO");
}

void BM_SobelSi(benchmark::State& state) {
  media::FrameGenerator generator(kWidth, kHeight, media::test_videos()[5].profile);
  const auto frame = generator.next();
  for (auto _ : state) {
    benchmark::DoNotOptimize(media::spatial_information(frame));
  }
}
BENCHMARK(BM_SobelSi);

void BM_AnalyzeSiTi(benchmark::State& state) {
  media::FrameGenerator generator(64, 64, media::test_videos()[5].profile);
  const auto frames = generator.generate(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(media::analyze_si_ti(frames));
  }
}
BENCHMARK(BM_AnalyzeSiTi);

void BM_FrameGeneration(benchmark::State& state) {
  media::FrameGenerator generator(64, 64, media::test_videos()[9].profile);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generator.next());
  }
}
BENCHMARK(BM_FrameGeneration);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
