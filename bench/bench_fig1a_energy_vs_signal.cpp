// Fig. 1(a): total energy to download 100 MB as a function of signal
// strength. Paper anchors: ~49 J at -90 dBm rising to ~193 J at -115 dBm.

#include "bench_common.h"
#include "eacs/power/model.h"

namespace {

using namespace eacs;

void print_reproduction() {
  bench::banner("Fig. 1(a)",
                "Energy to download 100 MB vs. signal strength (LTE radio)");
  const power::PowerModel model;

  AsciiTable table("Energy for a 100 MB download");
  table.set_header({"signal (dBm)", "energy (J)", "paper"});
  table.set_alignment({Align::kRight, Align::kRight, Align::kRight});
  for (double s = -90.0; s >= -115.0; s -= 5.0) {
    std::string paper;
    if (s == -90.0) paper = "49";
    if (s == -115.0) paper = "193";
    table.add_row({AsciiTable::num(s, 0),
                   AsciiTable::num(model.download_energy(100.0, s), 1), paper});
  }
  table.print();
  std::printf("\nShape check: energy roughly quadruples from -90 to -115 dBm "
              "(paper: 49 J -> 193 J, ~3.9x; ours: %.1fx)\n",
              model.download_energy(100.0, -115.0) /
                  model.download_energy(100.0, -90.0));
}

void BM_EnergyPerMb(benchmark::State& state) {
  const power::PowerModel model;
  double s = -90.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.energy_per_mb(s));
    s = s <= -115.0 ? -90.0 : s - 0.01;
  }
}
BENCHMARK(BM_EnergyPerMb);

void BM_TaskEnergy(benchmark::State& state) {
  const power::PowerModel model;
  power::TaskEnergyInput input;
  input.size_mb = 1.45;
  input.bitrate_mbps = 5.8;
  input.signal_dbm = -105.0;
  input.play_s = 2.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.task_energy(input));
  }
}
BENCHMARK(BM_TaskEnergy);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
