// Fig. 7: the ratio of energy saving over QoE degradation — the paper's
// headline "considering both energy and QoE" metric. Paper: Ours achieves
// ~4.8x FESTIVE's ratio and ~5.1x BBA's.

#include "bench_common.h"
#include "eacs/sim/evaluation.h"

namespace {

using namespace eacs;

void print_reproduction() {
  bench::banner("Fig. 7", "Energy saving / QoE degradation ratio");
  const sim::Evaluation evaluation;
  const auto result = evaluation.run();

  AsciiTable table("Ratio per algorithm (higher is better)");
  table.set_header({"algorithm", "energy saving", "QoE degradation", "ratio"});
  table.set_alignment({Align::kLeft, Align::kRight, Align::kRight, Align::kRight});
  for (const auto& algo : {"FESTIVE", "BBA", "Ours", "Optimal"}) {
    table.add_row({algo, AsciiTable::percent(result.mean_energy_saving(algo), 1),
                   AsciiTable::percent(result.mean_qoe_degradation(algo), 1),
                   AsciiTable::num(result.saving_degradation_ratio(algo), 1)});
    bench::record_metric(std::string("saving_degradation_ratio_") + algo,
                         result.saving_degradation_ratio(algo));
  }
  table.print();

  const double ours = result.saving_degradation_ratio("Ours");
  const double festive = result.saving_degradation_ratio("FESTIVE");
  const double bba = result.saving_degradation_ratio("BBA");
  if (festive > 0.0) {
    std::printf("\nOurs / FESTIVE ratio: %.1fx (paper: ~4.8x)\n", ours / festive);
  } else {
    std::printf("\nFESTIVE shows no QoE degradation on these traces; its ratio "
                "is undefined (paper measured ~1/4.8 of Ours).\n");
  }
  if (bba > 0.0) {
    std::printf("Ours / BBA ratio:     %.1fx (paper: ~5.1x)\n", ours / bba);
  } else {
    std::printf("BBA shows no QoE degradation on these traces; its ratio is "
                "undefined (paper measured ~1/5.1 of Ours).\n");
  }
}

void BM_SummaryAggregation(benchmark::State& state) {
  const sim::Evaluation evaluation;
  const auto result = evaluation.run();
  for (auto _ : state) {
    benchmark::DoNotOptimize(result.saving_degradation_ratio("Ours"));
    benchmark::DoNotOptimize(result.mean_energy_saving("Optimal"));
  }
}
BENCHMARK(BM_SummaryAggregation);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
