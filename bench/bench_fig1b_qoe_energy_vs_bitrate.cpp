// Fig. 1(b): perceived QoE and relative energy as functions of bitrate under
// the two contexts (quiet room vs. moving vehicle). Paper anchors: dropping
// 1080p -> 480p loses ~12% QoE in a quiet room but only ~4% on a vehicle,
// while saving ~65% of the (relative download) energy on the vehicle.

#include "bench_common.h"
#include "eacs/media/bitrate_ladder.h"
#include "eacs/power/model.h"
#include "eacs/qoe/model.h"

namespace {

using namespace eacs;

constexpr double kVehicleVibration = 6.0;
constexpr double kRoomSignal = -88.0;
constexpr double kVehicleSignal = -108.0;
constexpr double kVideoSeconds = 198.0;  // Table V trace 1 length

double stream_energy(const power::PowerModel& model, double bitrate, double signal) {
  // Radio energy of streaming the whole video at this bitrate (the screen
  // and decode baseline is common to every bar, Fig. 1(b) plots the
  // *relative* energy).
  return model.download_energy(bitrate * kVideoSeconds / 8.0, signal);
}

void print_reproduction() {
  bench::banner("Fig. 1(b)",
                "QoE and relative energy vs. bitrate, quiet room vs. vehicle");
  const qoe::QoeModel qoe_model;
  const power::PowerModel power_model;
  const auto ladder = media::BitrateLadder::table2();

  AsciiTable table("Per-bitrate QoE and relative energy");
  table.set_header({"bitrate (Mbps)", "resolution", "QoE room", "QoE vehicle",
                    "energy room (J)", "energy vehicle (J)"});
  table.set_alignment({Align::kRight, Align::kLeft, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight});
  for (std::size_t level = 0; level < ladder.size(); ++level) {
    const double r = ladder.bitrate(level);
    table.add_row({AsciiTable::num(r, 3), ladder.rung(level).resolution,
                   AsciiTable::num(qoe_model.perceived_quality(r, 0.0), 2),
                   AsciiTable::num(qoe_model.perceived_quality(r, kVehicleVibration), 2),
                   AsciiTable::num(stream_energy(power_model, r, kRoomSignal), 1),
                   AsciiTable::num(stream_energy(power_model, r, kVehicleSignal), 1)});
  }
  table.print();

  const double room_drop =
      1.0 - qoe_model.perceived_quality(1.5, 0.0) / qoe_model.perceived_quality(5.8, 0.0);
  const double vehicle_drop =
      1.0 - qoe_model.perceived_quality(1.5, kVehicleVibration) /
                qoe_model.perceived_quality(5.8, kVehicleVibration);
  const double energy_saving =
      1.0 - stream_energy(power_model, 1.5, kVehicleSignal) /
                stream_energy(power_model, 5.8, kVehicleSignal);
  std::printf("\n1080p -> 480p QoE drop, quiet room:  %5.1f%%   (paper: 12%%)\n",
              room_drop * 100.0);
  std::printf("1080p -> 480p QoE drop, vehicle:     %5.1f%%   (paper:  4%%)\n",
              vehicle_drop * 100.0);
  std::printf("1080p -> 480p energy saved, vehicle: %5.1f%%   (paper: 65%%)\n",
              energy_saving * 100.0);
}

void BM_PerceivedQuality(benchmark::State& state) {
  const qoe::QoeModel model;
  double r = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.perceived_quality(r, 6.0));
    r = r >= 5.8 ? 0.1 : r + 0.01;
  }
}
BENCHMARK(BM_PerceivedQuality);

void BM_SegmentQoe(benchmark::State& state) {
  const qoe::QoeModel model;
  qoe::SegmentContext ctx{3.0, 6.0, 1.5, 0.2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.segment_qoe(ctx));
  }
}
BENCHMARK(BM_SegmentQoe);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
