// Extension: multi-source CDN failover under server faults.
//
// The link-fault bench (bench_ext_fault_tolerance) stresses the radio; this
// one stresses the *servers*. The origin misbehaves — long outages, HTTP
// error bursts, truncated/corrupted payloads, slow-start collapse — while
// one or two clean edge caches sit behind it. The study sweeps fault family
// x intensity x source count; the source-count-1 column is the retry-only
// baseline, so every other column quantifies what circuit breakers,
// health-scored failover and hedged requests buy. Deterministic in the study
// seed at any job count.

#include "bench_common.h"
#include "eacs/sim/cdn_fault_study.h"

namespace {

using namespace eacs;

void print_reproduction() {
  bench::banner("Extension: CDN failover",
                "Server-fault family x intensity x source-count sweep");

  sim::CdnFaultStudyConfig config;
  const auto result = sim::run_cdn_fault_study(config);

  std::printf("Fault-free single source (%s): QoE %.3f, energy %.1f J, "
              "rebuffer %.1f s\n\n",
              result.clean.algorithm.c_str(), result.clean.mean_qoe,
              result.clean.total_energy_j, result.clean.rebuffer_s);

  AsciiTable table("Delivery robustness vs. the single-source retry-only baseline");
  table.set_header({"fault", "intensity", "srcs", "QoE", "rebuffer s",
                    "QoE d single", "rebuf d single", "waste J", "failovers",
                    "hedges", "breaker"});
  table.set_alignment({Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight, Align::kRight});
  for (const auto& cell : result.cells) {
    table.add_row({to_string(cell.family), AsciiTable::num(cell.intensity, 2),
                   std::to_string(cell.sources),
                   AsciiTable::num(cell.mean_qoe, 3),
                   AsciiTable::num(cell.rebuffer_s, 1),
                   AsciiTable::num(cell.qoe_delta_vs_single, 3),
                   AsciiTable::num(cell.rebuffer_delta_vs_single_s, 1),
                   AsciiTable::num(cell.wasted_energy_j, 1),
                   std::to_string(cell.failovers), std::to_string(cell.hedges),
                   std::to_string(cell.breaker_transitions)});
  }
  table.print();

  const auto& solo = result.cell(sim::CdnFaultFamily::kOriginOutage, 1.0, 1);
  const auto& duo = result.cell(sim::CdnFaultFamily::kOriginOutage, 1.0, 2);
  std::printf(
      "\nOrigin outages at full intensity: retry-only rebuffers %.1f s; a "
      "second source cuts that to %.1f s (%zu failovers, %zu hedges) for "
      "%.1f J of hedge/abort waste.\n",
      solo.rebuffer_s, duo.rebuffer_s, duo.failovers, duo.hedges,
      duo.wasted_energy_j);

  bench::record_metric("clean_qoe", result.clean.mean_qoe);
  bench::record_metric("clean_rebuffer_s", result.clean.rebuffer_s);
  bench::record_metric("outage100_solo_rebuffer_s", solo.rebuffer_s);
  bench::record_metric("outage100_duo_rebuffer_s", duo.rebuffer_s);
  bench::record_metric("outage100_duo_qoe_delta_vs_single",
                       duo.qoe_delta_vs_single);
  bench::record_metric("outage100_duo_failovers",
                       static_cast<double>(duo.failovers));
  bench::record_metric("outage100_duo_hedges", static_cast<double>(duo.hedges));
  bench::record_metric("outage100_duo_wasted_energy_j", duo.wasted_energy_j);
  const auto& err_solo = result.cell(sim::CdnFaultFamily::kErrorBursts, 1.0, 1);
  const auto& err_duo = result.cell(sim::CdnFaultFamily::kErrorBursts, 1.0, 2);
  bench::record_metric("errors100_solo_retries",
                       static_cast<double>(err_solo.retries));
  bench::record_metric("errors100_duo_retries",
                       static_cast<double>(err_duo.retries));
}

void BM_CdnFaultStudyCell(benchmark::State& state) {
  sim::CdnFaultStudyConfig config;
  config.families = {sim::CdnFaultFamily::kOriginOutage};
  config.intensities = {1.0};
  config.source_counts = {2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim::run_cdn_fault_study(config));
  }
}
BENCHMARK(BM_CdnFaultStudyCell)->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
