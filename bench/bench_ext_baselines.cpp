// Extension: additional baselines beyond the paper's comparison.
//
// Adds BOLA (INFOCOM'16), MPC (SIGCOMM'15, the paper's ref [17]) and our
// rolling-horizon variant of the paper's objective to the five-trace
// evaluation. Neither BOLA nor MPC is energy- or context-aware, so they
// cluster with FESTIVE/BBA on energy; the rolling-horizon selector tracks
// the paper's online algorithm, showing Algorithm 1's hand-tuned smoothing
// is close to the exact receding-horizon optimum of the same objective.

#include "bench_common.h"
#include "eacs/abr/bola.h"
#include "eacs/abr/fixed.h"
#include "eacs/abr/mpc.h"
#include "eacs/core/horizon.h"
#include "eacs/core/online.h"
#include "eacs/sim/evaluation.h"

namespace {

using namespace eacs;

void print_reproduction() {
  bench::banner("Extension: baseline zoo",
                "BOLA / MPC / rolling-horizon vs. the paper's algorithms");

  const qoe::QoeModel qoe_model;
  const power::PowerModel power_model;
  core::ObjectiveConfig objective_config;
  const core::Objective objective(qoe_model, power_model, objective_config);

  struct Totals {
    double energy = 0.0;
    double qoe = 0.0;
    double rebuffer = 0.0;
    std::size_t switches = 0;
  };
  std::vector<std::pair<std::string, Totals>> rows;

  const auto sessions = trace::build_all_sessions();
  abr::FixedBitrate youtube;
  abr::Bola bola(5.0, 30.0);
  abr::Mpc mpc;
  core::OnlineBitrateSelector ours(objective, {.startup_level = 3});
  core::RollingHorizonSelector horizon(objective, {.horizon = 5, .startup_level = 3});
  std::vector<player::AbrPolicy*> policies = {&youtube, &bola, &mpc, &ours, &horizon};

  for (player::AbrPolicy* policy : policies) {
    Totals totals;
    for (const auto& session : sessions) {
      const media::VideoManifest manifest(
          "trace" + std::to_string(session.spec.id), session.spec.length_s, 2.0,
          media::BitrateLadder::evaluation14());
      const player::PlayerSimulator simulator(manifest);
      const auto playback = simulator.run(*policy, session);
      const auto metrics = sim::compute_metrics(policy->name(), session.spec.id,
                                                playback, manifest, qoe_model,
                                                power_model);
      totals.energy += metrics.total_energy_j;
      totals.qoe += metrics.mean_qoe;
      totals.rebuffer += metrics.rebuffer_s;
      totals.switches += metrics.switch_count;
    }
    rows.emplace_back(policy->name(), totals);
  }

  const double youtube_energy = rows.front().second.energy;
  AsciiTable table("Five-trace totals");
  table.set_header({"algorithm", "energy (J)", "saving", "mean QoE",
                    "rebuffer (s)", "switches"});
  table.set_alignment({Align::kLeft, Align::kRight, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight});
  for (const auto& [name, totals] : rows) {
    table.add_row({name, AsciiTable::num(totals.energy, 0),
                   AsciiTable::percent(1.0 - totals.energy / youtube_energy, 1),
                   AsciiTable::num(totals.qoe / 5.0, 2),
                   AsciiTable::num(totals.rebuffer, 1),
                   std::to_string(totals.switches)});
  }
  table.print();
}

void BM_MpcDecision(benchmark::State& state) {
  abr::MpcConfig config;
  config.horizon = static_cast<std::size_t>(state.range(0));
  abr::Mpc policy(config);
  const media::VideoManifest manifest("bench", 600.0, 2.0,
                                      media::BitrateLadder::evaluation14());
  net::HarmonicMeanEstimator estimator(20);
  for (int i = 0; i < 20; ++i) estimator.observe(8.0);
  player::AbrContext ctx;
  ctx.segment_index = 50;
  ctx.num_segments = manifest.num_segments();
  ctx.buffer_s = 20.0;
  ctx.prev_level = 7;
  ctx.manifest = &manifest;
  ctx.bandwidth = &estimator;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.choose_level(ctx));
  }
}
BENCHMARK(BM_MpcDecision)->Arg(2)->Arg(3)->Unit(benchmark::kMicrosecond);

void BM_HorizonDecision(benchmark::State& state) {
  core::Objective objective(qoe::QoeModel{}, power::PowerModel{},
                            core::ObjectiveConfig{});
  core::RollingHorizonSelector policy(
      objective, {.horizon = static_cast<std::size_t>(state.range(0))});
  const media::VideoManifest manifest("bench", 600.0, 2.0,
                                      media::BitrateLadder::evaluation14());
  net::HarmonicMeanEstimator estimator(20);
  for (int i = 0; i < 20; ++i) estimator.observe(8.0);
  player::AbrContext ctx;
  ctx.segment_index = 50;
  ctx.num_segments = manifest.num_segments();
  ctx.buffer_s = 20.0;
  ctx.prev_level = 7;
  ctx.manifest = &manifest;
  ctx.bandwidth = &estimator;
  ctx.vibration_level = 5.0;
  ctx.signal_dbm = -104.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.choose_level(ctx));
  }
}
BENCHMARK(BM_HorizonDecision)->Arg(1)->Arg(5)->Arg(15)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  print_reproduction();
  return eacs::bench::run_benchmarks(argc, argv);
}
